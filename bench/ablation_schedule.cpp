// Ablation A3: Brent-scheduling policy for irregular PRAM steps.
//
// Mapping P_PRAM virtual processors onto P_phys threads (§6) leaves one
// free choice: the OpenMP schedule. For uniform work (the Maximum kernel)
// static is optimal; for skewed per-processor work (a BFS level on an
// R-MAT graph, where one virtual processor may own a 1000x-degree hub)
// dynamic work stealing can win. This bench quantifies the trade on both
// shapes using pram::Machine's schedule knob.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "pram/machine.hpp"
#include "util/timer.hpp"

namespace {

using crcw::graph::Csr;
using crcw::pram::Machine;
using crcw::pram::MachineConfig;
using crcw::pram::Schedule;

const Csr& skewed_graph() {
  static const Csr g = crcw::graph::build_csr(
      1 << 14, crcw::graph::rmat(1 << 14, 1 << 18, 7), {.remove_self_loops = true});
  return g;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "unknown";
}

/// Irregular step: every virtual processor scans its vertex's adjacency
/// (R-MAT degrees are power-law distributed).
void irregular_step(benchmark::State& state, Schedule schedule) {
  const int threads = static_cast<int>(state.range(0));
  const auto& g = skewed_graph();
  Machine machine(MachineConfig{.threads = threads, .schedule = schedule, .chunk = 64});
  crcw::bench::RowRecorder rec(
      state, {.series = std::string("ablation_schedule/irregular_") + schedule_name(schedule),
              .policy = schedule_name(schedule),
              .baseline = "static",
              .threads = threads,
              .n = g.num_vertices(),
              .m = g.num_edges()});

  std::uint64_t total = 0;
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    crcw::util::Timer timer;
    machine.step(g.num_vertices(), [&](Machine::vproc_t v) {
      std::uint64_t local = 0;
      for (const auto u : g.neighbors(static_cast<crcw::graph::vertex_t>(v))) local += u;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    rec.record(timer.seconds());
    total = sum.load();
  }
  benchmark::DoNotOptimize(total);
  state.counters["max_degree"] = static_cast<double>(g.max_degree());
}

/// Dynamic chunk-size row: the figure benches hand skewed frontier loops
/// to schedule(dynamic, util::frontier_chunk()) — util/chunking.hpp holds
/// the chosen constants and their rationale. This sweep is the evidence:
/// too-small chunks pay a work-stealing RMW per handful of vertices,
/// too-large chunks strand a hub's neighbours on one thread.
void irregular_chunk(benchmark::State& state, int chunk) {
  const int threads = static_cast<int>(state.range(0));
  const auto& g = skewed_graph();
  Machine machine(
      MachineConfig{.threads = threads, .schedule = Schedule::kDynamic, .chunk = chunk});
  const std::string policy = "dynamic-c" + std::to_string(chunk);
  crcw::bench::RowRecorder rec(
      state, {.series = "ablation_schedule/irregular_" + policy,
              .policy = policy,
              .baseline = "dynamic",
              .threads = threads,
              .n = g.num_vertices(),
              .m = g.num_edges()});

  std::uint64_t total = 0;
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    crcw::util::Timer timer;
    machine.step(g.num_vertices(), [&](Machine::vproc_t v) {
      std::uint64_t local = 0;
      for (const auto u : g.neighbors(static_cast<crcw::graph::vertex_t>(v))) local += u;
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    rec.record(timer.seconds());
    total = sum.load();
  }
  benchmark::DoNotOptimize(total);
  state.counters["chunk"] = chunk;
}

/// Uniform step: constant work per virtual processor.
void uniform_step(benchmark::State& state, Schedule schedule) {
  const int threads = static_cast<int>(state.range(0));
  Machine machine(MachineConfig{.threads = threads, .schedule = schedule, .chunk = 64});
  constexpr std::uint64_t kProcs = 1 << 18;
  crcw::bench::RowRecorder rec(
      state, {.series = std::string("ablation_schedule/uniform_") + schedule_name(schedule),
              .policy = schedule_name(schedule),
              .baseline = "static",
              .threads = threads,
              .n = kProcs,
              .m = 0});

  std::uint64_t total = 0;
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    crcw::util::Timer timer;
    machine.step(kProcs, [&](Machine::vproc_t v) {
      sum.fetch_add(v * 2654435761u, std::memory_order_relaxed);
    });
    rec.record(timer.seconds());
    total = sum.load();
  }
  benchmark::DoNotOptimize(total);
}

void args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points<int>({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void irregular_chunk16(benchmark::State& s) { irregular_chunk(s, 16); }
void irregular_chunk64(benchmark::State& s) { irregular_chunk(s, 64); }
void irregular_chunk256(benchmark::State& s) { irregular_chunk(s, 256); }

void irregular_static(benchmark::State& s) { irregular_step(s, Schedule::kStatic); }
void irregular_dynamic(benchmark::State& s) { irregular_step(s, Schedule::kDynamic); }
void irregular_guided(benchmark::State& s) { irregular_step(s, Schedule::kGuided); }
void uniform_static(benchmark::State& s) { uniform_step(s, Schedule::kStatic); }
void uniform_dynamic(benchmark::State& s) { uniform_step(s, Schedule::kDynamic); }
void uniform_guided(benchmark::State& s) { uniform_step(s, Schedule::kGuided); }

BENCHMARK(irregular_static)->Apply(args);
BENCHMARK(irregular_dynamic)->Apply(args);
BENCHMARK(irregular_guided)->Apply(args);
BENCHMARK(irregular_chunk16)->Apply(args);
BENCHMARK(irregular_chunk64)->Apply(args);
BENCHMARK(irregular_chunk256)->Apply(args);
BENCHMARK(uniform_static)->Apply(args);
BENCHMARK(uniform_dynamic)->Apply(args);
BENCHMARK(uniform_guided)->Apply(args);

}  // namespace
