// Extension experiment: priority-CW SSSP formulations under density sweep.
//
// The two-phase PriorityCell protocol pays an extra phase per round but
// touches each vertex's (dist, parent) pair exactly once; the fetch-min
// formulation single-phases the rounds but re-derives parents afterwards
// and re-CASes on every improvement. The crossover tracks collision
// density, the same axis as Figures 10/11.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "algorithms/sssp.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

namespace {

using crcw::algo::random_weighted_edges;
using crcw::algo::WeightedEdge;
using crcw::bench::default_threads;

constexpr std::uint64_t kVertices = 20'000;

const std::vector<WeightedEdge>& cached_edges(std::uint64_t m) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<WeightedEdge>>> cache;
  auto& slot = cache[m];
  if (!slot) {
    slot = std::make_unique<std::vector<WeightedEdge>>(
        random_weighted_edges(kVertices, m, 1000, 42));
  }
  return *slot;
}

template <typename Fn>
void run(benchmark::State& state, const std::string& variant, Fn&& fn) {
  const auto m = static_cast<std::uint64_t>(state.range(0));
  const auto& edges = cached_edges(m);
  const crcw::algo::SsspOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "ext_sssp/" + variant,
                                       .policy = variant,
                                       .baseline = "two-phase",
                                       .threads = default_threads(),
                                       .n = kVertices,
                                       .m = m});
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = fn(kVertices, edges, 0, opts);
    rec.record(timer.seconds());
    rounds = r.rounds;
  }
  state.counters["edges"] = static_cast<double>(m);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["threads"] = default_threads();
}

void sssp_two_phase_bench(benchmark::State& s) {
  run(s, "two-phase", [](auto... a) { return crcw::algo::sssp_two_phase(a...); });
}
void sssp_fetch_min_bench(benchmark::State& s) {
  run(s, "fetch-min", [](auto... a) { return crcw::algo::sssp_fetch_min(a...); });
}

void args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t m :
       crcw::bench::sweep_points<std::int64_t>({50'000, 100'000, 200'000, 400'000})) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(sssp_two_phase_bench)->Apply(args);
BENCHMARK(sssp_fetch_min_bench)->Apply(args);

}  // namespace
