// Microbenchmark M1: the concurrent-write primitive in isolation.
//
// Not a paper figure — this validates the §6 asymptotic argument directly:
// under full contention (T threads, one cell, R rounds) the gatekeeper
// executes Θ(T·R) atomic RMWs while CAS-LT executes O(R) successful CAS
// plus cheap relaxed loads, and the naive method performs Θ(T·R) stores.
// Series: time per round vs thread count, one benchmark per method.
#include <omp.h>

#include <atomic>
#include <cstdint>

#include "bench_common.hpp"
#include "core/concurrent_write.hpp"
#include "util/timer.hpp"

namespace {

using crcw::Gatekeeper;
using crcw::RoundTag;

constexpr int kRoundsPerIter = 64;
// Per-thread attempts per round — models P_PRAM >> P_Phys virtual
// processors all targeting one cell.
constexpr int kAttemptsPerRound = 256;

crcw::bench::RowSpec spec(const char* variant, int threads) {
  return {.series = std::string("micro_conwrite/") + variant,
          .policy = variant,
          .baseline = "naive",
          .threads = threads,
          .n = kRoundsPerIter,
          .m = kAttemptsPerRound};
}

void bench_caslt_contended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("caslt", threads));
  RoundTag tag;
  std::uint64_t wins = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (tag.try_acquire(static_cast<crcw::round_t>(r))) ++wins;
        }
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
    tag.reset();
  }
  state.counters["wins_per_iter"] =
      benchmark::Counter(static_cast<double>(wins) / static_cast<double>(state.iterations()));
  state.counters["rounds"] = kRoundsPerIter;
}

/// Figure 1 verbatim: the published 32-bit `canConWriteCASLT` shape driven
/// from the library's 64-bit round counter via the checked to_round32
/// narrowing — the call pattern the figure benches standardise on (and a
/// guard that the narrowing helper costs nothing measurable).
void bench_caslt_figure1_literal(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("caslt-figure1", threads));
  std::atomic<crcw::round32_t> last_round_updated{0};
  std::uint64_t wins = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (crcw::canConWriteCASLT(last_round_updated,
                                     crcw::to_round32(static_cast<crcw::round_t>(r)))) {
            ++wins;
          }
        }
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
    last_round_updated.store(0, std::memory_order_relaxed);
  }
  state.counters["wins_per_iter"] =
      benchmark::Counter(static_cast<double>(wins) / static_cast<double>(state.iterations()));
  state.counters["rounds"] = kRoundsPerIter;
}

void bench_gatekeeper_contended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("gatekeeper", threads));
  Gatekeeper gate;
  std::uint64_t wins = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (gate.try_acquire()) ++wins;
        }
#pragma omp barrier
#pragma omp single
        gate.reset();  // the per-round re-initialisation the scheme requires
      }
    }
    rec.record(timer.seconds());
  }
  state.counters["wins_per_iter"] =
      benchmark::Counter(static_cast<double>(wins) / static_cast<double>(state.iterations()));
  state.counters["rounds"] = kRoundsPerIter;
}

void bench_gatekeeper_skip_contended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("gatekeeper-skip", threads));
  Gatekeeper gate;
  std::uint64_t wins = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (gate.try_acquire_skip()) ++wins;
        }
#pragma omp barrier
#pragma omp single
        gate.reset();
      }
    }
    rec.record(timer.seconds());
  }
  state.counters["wins_per_iter"] =
      benchmark::Counter(static_cast<double>(wins) / static_cast<double>(state.iterations()));
  state.counters["rounds"] = kRoundsPerIter;
}

void bench_naive_contended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("naive", threads));
  std::uint64_t cell = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          // Common CW: every contender stores the (same) round id.
          std::atomic_ref<std::uint64_t>(cell).store(static_cast<std::uint64_t>(r),
                                                     std::memory_order_relaxed);
        }
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
  }
  benchmark::DoNotOptimize(cell);
  state.counters["rounds"] = kRoundsPerIter;
}

void bench_critical_contended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("critical", threads));
  crcw::CriticalPolicy::tag_type tag;
  std::uint64_t wins = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRoundsPerIter; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (crcw::CriticalPolicy::try_acquire(tag, static_cast<crcw::round_t>(r))) ++wins;
        }
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
    crcw::CriticalPolicy::reset(tag);
  }
  state.counters["wins_per_iter"] =
      benchmark::Counter(static_cast<double>(wins) / static_cast<double>(state.iterations()));
  state.counters["rounds"] = kRoundsPerIter;
}

void thread_args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points<int>({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

BENCHMARK(bench_caslt_contended)->Apply(thread_args);
BENCHMARK(bench_caslt_figure1_literal)->Apply(thread_args);
BENCHMARK(bench_gatekeeper_contended)->Apply(thread_args);
BENCHMARK(bench_gatekeeper_skip_contended)->Apply(thread_args);
BENCHMARK(bench_naive_contended)->Apply(thread_args);
BENCHMARK(bench_critical_contended)->Apply(thread_args);

}  // namespace
