// Figure 6: effect of the number of threads on the execution time of the
// constant-time Maximum algorithm (paper: list of 60K elements; here a
// laptop-scale list — see DESIGN.md).
//
// Paper result: CAS-LT's advantage grows with concurrency, reaching 1.8x at
// 32 threads, because collisions are skipped instead of serialised.
// NOTE: on this 1-core container thread counts > 1 measure oversubscription
// (times rise for every method); the method ORDERING is the reproducible
// part.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_list;

constexpr std::uint64_t kListSize = 4096;

void fig6(benchmark::State& state, const std::string& method) {
  const int threads = static_cast<int>(state.range(0));
  const auto& list = cached_list(kListSize);
  const crcw::algo::MaxOptions opts{.threads = threads};
  crcw::bench::RowRecorder rec(state, {.series = "fig6/" + method,
                                       .policy = method,
                                       .baseline = "naive",
                                       .threads = threads,
                                       .n = kListSize});

  std::uint64_t result = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    result = crcw::algo::run_max(method, list, opts);
    rec.record(timer.seconds());
  }
  rec.profile([&] { return crcw::algo::profile_max(method, list, opts); });
  benchmark::DoNotOptimize(result);
  state.counters["n"] = static_cast<double>(kListSize);
  state.counters["threads"] = threads;
}

BENCHMARK_CAPTURE(fig6, naive, "naive")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig6, gatekeeper, "gatekeeper")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig6, gatekeeper_skip, "gatekeeper-skip")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig6, caslt, "caslt")->Apply(crcw::bench::thread_sweep);

}  // namespace
