// Microbenchmark M3: the gatekeeper per-round re-initialisation in
// isolation — the §6 cost-table row this repo's sparse reset attacks.
//
// The paper charges the gatekeeper scheme Θ(N) work per round for the tag
// sweep regardless of how many cells were actually written. On
// frontier-shaped rounds (W writes, W << N) the touched-list sparse reset
// does O(W) work instead. Each iteration runs kRoundsPerIter rounds of an
// UNTIMED touch phase (W distinct strided winners — the exact dirty-tag
// set) followed by a TIMED reset, so the row measures the reset alone:
//
//   micro_reset/full    reset_tags_parallel — paper-faithful Θ(N) sweep
//   micro_reset/sparse  reset_tags_sparse   — touched lists, O(W)
//
// The profile pass pins the asymptotics to a counter: reset_tags is
// rounds·N for full vs rounds·W for sparse (see docs/reproducing.md).
#include <omp.h>

#include <cstddef>
#include <cstdint>

#include "bench_common.hpp"
#include "core/arbiter.hpp"
#include "core/instrumented.hpp"
#include "util/timer.hpp"

namespace {

using crcw::ArbiterConfig;
using crcw::GatekeeperPolicy;
using crcw::ResetMode;
using crcw::TouchTracking;
using crcw::WriteArbiter;

using IGate = crcw::InstrumentedPolicy<GatekeeperPolicy>;

constexpr std::uint64_t kTags = 1u << 20;  ///< N: tag-array length
constexpr int kRoundsPerIter = 4;

/// Untimed dirtying phase: W distinct winners evenly strided across the
/// tag array. Every acquire wins (targets are distinct), so exactly W tags
/// are dirty — and, when tracking is on, exactly W touched-list entries.
template <typename Arbiter>
void touch(Arbiter& arbiter, std::uint64_t writes, int threads) {
  auto scope = arbiter.next_round(ResetMode::kNone);
  const std::uint64_t stride = kTags / writes;
  const auto w_count = static_cast<std::int64_t>(writes);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t w = 0; w < w_count; ++w) {
    (void)scope.acquire(static_cast<std::size_t>(w) * stride);
  }
}

ArbiterConfig sparse_config(int threads) {
  ArbiterConfig cfg;
  cfg.tracking = TouchTracking::kEnabled;
  cfg.lanes = threads;
  cfg.first_touch = crcw::util::FirstTouch::kParallel;
  cfg.first_touch_threads = threads;
  return cfg;
}

crcw::bench::RowSpec spec(const char* variant, int threads, std::uint64_t writes) {
  return {.series = std::string("micro_reset/") + variant,
          .policy = variant,
          .baseline = "full",
          .threads = threads,
          .n = kTags,
          .m = writes};
}

/// Instrumented replay under a private registry (same pattern the dispatch
/// profile_* helpers use): counters, never timings.
template <typename Fn>
crcw::obs::ContentionTotals profiled(Fn&& fn) {
  crcw::obs::MetricsRegistry local;
  const crcw::obs::ScopedRegistry scoped(local);
  fn();
  return local.totals();
}

void bench_reset_full(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto writes = static_cast<std::uint64_t>(state.range(1));
  crcw::bench::RowRecorder rec(state, spec("full", threads, writes));
  WriteArbiter<GatekeeperPolicy> arbiter(kTags);  // paper baseline: no tracking
  for (auto _ : state) {
    double secs = 0.0;
    for (int r = 0; r < kRoundsPerIter; ++r) {
      touch(arbiter, writes, threads);
      crcw::util::Timer timer;
      arbiter.reset_tags_parallel(threads);
      secs += timer.seconds();
    }
    rec.record(secs);
  }
  state.counters["rounds"] = kRoundsPerIter;
  rec.profile([&] {
    return profiled([&] {
      WriteArbiter<IGate> instrumented(kTags);
      for (int r = 0; r < kRoundsPerIter; ++r) {
        touch(instrumented, writes, threads);
        instrumented.flush_round_metrics();
        instrumented.reset_tags_parallel(threads);  // reset_tags += kTags
      }
    });
  });
}

void bench_reset_sparse(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto writes = static_cast<std::uint64_t>(state.range(1));
  crcw::bench::RowRecorder rec(state, spec("sparse", threads, writes));
  WriteArbiter<GatekeeperPolicy> arbiter(kTags, sparse_config(threads));
  for (auto _ : state) {
    double secs = 0.0;
    for (int r = 0; r < kRoundsPerIter; ++r) {
      touch(arbiter, writes, threads);
      crcw::util::Timer timer;
      arbiter.reset_tags_sparse(threads);
      secs += timer.seconds();
    }
    rec.record(secs);
  }
  state.counters["rounds"] = kRoundsPerIter;
  rec.profile([&] {
    return profiled([&] {
      WriteArbiter<IGate> instrumented(kTags, sparse_config(threads));
      for (int r = 0; r < kRoundsPerIter; ++r) {
        touch(instrumented, writes, threads);
        instrumented.flush_round_metrics();
        instrumented.reset_tags_sparse(threads);  // reset_tags += writes
      }
    });
  });
}

void reset_args(benchmark::internal::Benchmark* b) {
  // W << N throughout: the frontier-shaped regime where the sparse reset
  // pays off. Smoke keeps (threads {1,2}) x (W = 1024).
  const auto threads = crcw::bench::sweep_points<std::int64_t>({1, 2, 4, 8}, 2);
  const auto writes = crcw::bench::sweep_points<std::int64_t>({1 << 10, 1 << 14}, 1);
  for (const auto w : writes) {
    for (const auto t : threads) b->Args({t, w});
  }
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

BENCHMARK(bench_reset_full)->Apply(reset_args);
BENCHMARK(bench_reset_sparse)->Apply(reset_args);

}  // namespace
