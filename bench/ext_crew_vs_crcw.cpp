// Extension experiment (paper §8 future work): "study the performance
// comparisons of EREW or CREW PRAM algorithm-based implementations ...
// against relevant implementations of CRCW PRAM algorithms with better
// Work-Depth asymptotic complexities."
//
// Two concrete instances:
//   OR   — CRCW O(1)-depth common-CW OR (naive / caslt) vs the CREW
//          Θ(log N)-depth reduction tree. Same Θ(N) work; the CRCW version
//          saves the log-factor of barrier rounds.
//   MAX  — three work-depth points on one curve:
//            fig4      depth O(1),        work Θ(N²)   (paper Figure 4)
//            dlog      depth O(log log N), work Θ(N·loglogN)
//            reduce    depth O(log N),     work Θ(N)    (CREW-style)
//          On a real machine the Θ(N²) version loses at scale however good
//          its depth — exactly the trade-off §8 proposes studying.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "algorithms/max.hpp"
#include "algorithms/or_any.hpp"
#include "bench_common.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_list;
using crcw::bench::default_threads;

const std::vector<std::uint8_t>& cached_bits(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint8_t>>> cache;
  auto& slot = cache[n];
  if (!slot) {
    slot = std::make_unique<std::vector<std::uint8_t>>(n, 0);
    (*slot)[n / 2] = 1;  // one hit somewhere in the middle
  }
  return *slot;
}

template <typename Fn>
void run_or(benchmark::State& state, const std::string& variant, Fn&& fn) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& bits = cached_bits(n);
  const crcw::algo::OrOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "ext_or/" + variant,
                                       .policy = variant,
                                       .baseline = "crew-tree",
                                       .threads = default_threads(),
                                       .n = n});
  bool result = false;
  for (auto _ : state) {
    crcw::util::Timer timer;
    result = fn(bits, opts);
    rec.record(timer.seconds());
  }
  benchmark::DoNotOptimize(result);
  state.counters["n"] = static_cast<double>(n);
}

void or_crcw_naive(benchmark::State& s) {
  run_or(s, "crcw-naive", crcw::algo::parallel_or_naive);
}
void or_crcw_caslt(benchmark::State& s) {
  run_or(s, "crcw-caslt", crcw::algo::parallel_or_caslt);
}
void or_crew_tree(benchmark::State& s) { run_or(s, "crew-tree", crcw::algo::parallel_or_crew); }

void or_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n :
       crcw::bench::sweep_points<std::int64_t>({1 << 14, 1 << 17, 1 << 20, 1 << 23})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

BENCHMARK(or_crcw_naive)->Apply(or_args);
BENCHMARK(or_crcw_caslt)->Apply(or_args);
BENCHMARK(or_crew_tree)->Apply(or_args);

template <typename Fn>
void run_max(benchmark::State& state, const std::string& variant, Fn&& fn) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& list = cached_list(n);
  const crcw::algo::MaxOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "ext_max/" + variant,
                                       .policy = variant,
                                       .baseline = "crew-reduce",
                                       .threads = default_threads(),
                                       .n = n});
  std::uint64_t result = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    result = fn(list, opts);
    rec.record(timer.seconds());
  }
  benchmark::DoNotOptimize(result);
  state.counters["n"] = static_cast<double>(n);
}

void max_fig4_caslt(benchmark::State& s) {
  run_max(s, "fig4-caslt",
          [](auto list, auto opts) { return crcw::algo::max_index_caslt(list, opts); });
}
void max_doubly_log(benchmark::State& s) {
  run_max(s, "doubly-log", [](auto list, auto opts) {
    return crcw::algo::max_index_doubly_log(list, opts);
  });
}
void max_crew_reduce(benchmark::State& s) {
  run_max(s, "crew-reduce",
          [](auto list, auto opts) { return crcw::algo::max_index_reduce(list, opts); });
}

void max_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n :
       crcw::bench::sweep_points<std::int64_t>({1 << 10, 1 << 12, 1 << 14})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

BENCHMARK(max_fig4_caslt)->Apply(max_args);
BENCHMARK(max_doubly_log)->Apply(max_args);
BENCHMARK(max_crew_reduce)->Apply(max_args);

}  // namespace
