// Extension benchmark: the src/snap snapshot subsystem — four sweeps:
//
//   scan         consistent-scan throughput: scan_digest at a held cut
//                across shard counts WHILE raw writer threads keep
//                committing through the pump — the held-cut discipline is
//                what's measured (a scan that stalled writers, or writers
//                that tore the scan, would show up in time or in the
//                digest entry count);
//   writer       the HEADLINE: writer p99 enqueue→commit with a background
//                checkpoint loop publishing files the whole time, against
//                the same run idle. The acceptance bound rides the sweep:
//                median p99 under checkpoints must stay ≤2x idle. The obs
//                histograms are power-of-two bucketed, so 2x means "at
//                most one bucket worse" — an over-bound row fails via
//                SkipWithError, it does not get reported as if honest;
//   file         checkpoint_sync + restore round-trip across key counts:
//                publish to disk, rebuild a fresh backend, and the scan
//                digests must match bit-for-bit (mismatch fails the row).
//                Counters carry file bytes and entries/sec;
//   killrestore  the deployment story end to end: a sharded wire server
//                publishes a snapshot on request, the process state dies,
//                and the timed region is recovery — restore + server
//                restart + the wire-scan digest audit over loopback TCP.
#include <benchmark/benchmark.h>

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "serve/wire_client.hpp"
#include "snap/checkpointer.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::default_threads;
using crcw::bench::report;
using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;
using crcw::serve::Op;
using crcw::serve::ServeConfig;
using crcw::serve::ServeSession;
using crcw::serve::ShardedServeSession;

constexpr std::uint64_t kWriterOps = 1 << 16;
constexpr std::uint64_t kScanKeys = 1 << 14;
constexpr std::uint64_t kWireKeys = 1 << 12;

[[nodiscard]] std::uint64_t writer_ops() {
  return crcw::bench::smoke_mode() ? kWriterOps / 8 : kWriterOps;
}

/// Scratch directory for published snapshot files; contents are
/// overwritten per round-named path, never cleaned mid-run.
const std::string& snap_dir() {
  static const std::string dir = [] {
    std::string d = "/tmp/crcw_ext_snapshot";
    mkdir(d.c_str(), 0755);
    return d;
  }();
  return dir;
}

/// Writer-traffic keys with ~50% duplication, cached (generation untimed).
const std::vector<std::uint64_t>& cached_keys(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint64_t>>> cache;
  auto& slot = cache[n];
  if (!slot) {
    crcw::util::Xoshiro256 rng(42);
    slot = std::make_unique<std::vector<std::uint64_t>>(n);
    for (auto& k : *slot) k = rng.bounded(n / 2 + 1) + 1;
  }
  return *slot;
}

[[nodiscard]] double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

[[nodiscard]] std::uint64_t file_bytes(const std::string& path) {
  struct stat st = {};
  return stat(path.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
}

RowSpec spec(const char* sweep, const char* policy, const char* baseline,
             int threads, std::uint64_t n, std::uint64_t m) {
  return {.series = std::string("ext_snapshot/") + sweep + "/" + policy,
          .policy = policy,
          .baseline = baseline,
          .threads = threads,
          .n = n,
          .m = m};
}

// -- scan: consistent scans racing live writers (shard-count sweep) ----------

void scan_snapshot(benchmark::State& s) {
  const int shards = static_cast<int>(s.range(0));
  ServeConfig cfg;
  cfg.shards.count = shards;
  cfg.table.expected_keys = kScanKeys + 2;
  cfg.batch.max_wait_us = 100;
  ShardedServeSession session(cfg);
  session.start_pump();
  for (std::uint64_t k = 1; k <= kScanKeys; ++k) {
    (void)session.call(Op::upsert(k, k));
  }
  // Two raw writer threads overwrite live keys through the pump for the
  // whole timing loop: the scans below run against moving state, and the
  // cut predicate is what keeps each one internally consistent.
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&session, &done, w] {
      crcw::util::Xoshiro256 rng(7 + static_cast<std::uint64_t>(w));
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t k = rng.bounded(kScanKeys) + 1;
        (void)session.call(Op::upsert(k, k * 2));
      }
    });
  }
  std::uint64_t entries = 0;
  double last_secs = 1.0;
  {
    RowRecorder rec(s, spec("scan", "snap", "", shards, kScanKeys,
                            static_cast<std::uint64_t>(shards)));
    for (auto _ : s) {
      crcw::util::Timer timer;
      const crcw::snap::ScanDigest d = crcw::snap::scan_digest(session.backend());
      last_secs = timer.seconds();
      rec.record(last_secs);
      entries = d.entries;
      // Writers only overwrite preloaded keys, so a cut may never show
      // more than the table holds (a torn scan double-counts).
      if (d.entries > kScanKeys) {
        s.SkipWithError("scan saw more entries than live keys");
        break;
      }
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  session.stop_pump();
  s.counters["entries"] = static_cast<double>(entries);
  s.counters["entries_per_sec"] =
      static_cast<double>(entries) / (last_secs > 0 ? last_secs : 1.0);
}

// -- writer: p99 under a background checkpoint loop vs idle ------------------

struct WriterRunStats {
  double secs = 0;
  std::uint64_t p99_commit_ns = 0;
  std::uint64_t checkpoints = 0;
};

/// One full writer run: `threads` raw clients enqueue their slice without
/// waiting (the pump's ops_served watermark is completion), optionally with
/// a Checkpointer publishing continuously from a sidecar thread. Mirrors
/// the ext_serve upsert mode so the two benches' p99s are comparable.
WriterRunStats writer_run(const std::vector<std::uint64_t>& keys, int threads,
                          bool checkpoints) {
  namespace sv = crcw::serve;
  ServeConfig cfg;
  cfg.batch.max_batch = 1024;
  cfg.batch.max_wait_us = 100;
  cfg.batch.exec_threads = 0;  // rounds at ambient OpenMP width
  cfg.batch.lanes = threads;
  cfg.batch.lane_backlog = 1024;
  cfg.batch.latency_sample_shift = 6;
  cfg.table.expected_keys = keys.size() / 2 + 2;
  ServeSession session(cfg);

  const std::uint64_t total = keys.size();
  const auto t = static_cast<std::uint64_t>(threads);
  std::vector<std::vector<sv::OpFuture>> futures(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
    futures[c] = std::vector<sv::OpFuture>(hi - lo);
  }

  WriterRunStats stats;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> published{0};
  std::optional<std::thread> ckpt_thread;
  if (checkpoints) {
    ckpt_thread.emplace([&session, &done, &published] {
      crcw::snap::Checkpointer<crcw::serve::BatchScheduler> ckpt(session.backend(),
                                                                 snap_dir());
      while (!done.load(std::memory_order_acquire)) {
        std::string err;
        if (!ckpt.begin(&err).has_value() || !ckpt.wait(&err)) break;
        published.fetch_add(1, std::memory_order_relaxed);
        // Checkpoints are periodic in any real deployment, not a busy
        // loop; the pacing also keeps the sidecar from consuming a whole
        // core of the writer's budget on small containers. Each publish
        // scans the full table, so the run still overlaps checkpoints for
        // most of its lifetime.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  crcw::util::Timer timer;
  std::vector<std::thread> clients;
  clients.reserve(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
      for (std::uint64_t i = lo; i < hi; ++i) {
        session.submit(Op::upsert(keys[i], i), futures[c][i - lo]);
      }
    });
  }
  while (session.backend().ops_served() < total) {
    if (!session.poll()) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  stats.secs = timer.seconds();
  for (std::thread& th : clients) th.join();
  done.store(true, std::memory_order_release);
  if (ckpt_thread.has_value()) ckpt_thread->join();
  stats.p99_commit_ns = session.metrics().p99_enqueue_to_commit_ns();
  stats.checkpoints = published.load();
  return stats;
}

void writer_snapshot(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const std::vector<std::uint64_t>& keys = cached_keys(writer_ops());
  std::vector<double> secs_idle, p99_idle, p99_ckpt;
  std::uint64_t checkpoints = 0;
  {
    RowRecorder rec(s, spec("writer", "checkpoint", "idle", threads,
                            writer_ops(), 0));
    for (auto _ : s) {
      const WriterRunStats idle = writer_run(keys, threads, /*checkpoints=*/false);
      crcw::util::Timer timer;
      const WriterRunStats ck = writer_run(keys, threads, /*checkpoints=*/true);
      rec.record(timer.seconds());
      secs_idle.push_back(idle.secs * 1e9);
      p99_idle.push_back(static_cast<double>(idle.p99_commit_ns));
      p99_ckpt.push_back(static_cast<double>(ck.p99_commit_ns));
      checkpoints = ck.checkpoints;
    }
    // The acceptance bound: median writer p99 with checkpoints publishing
    // continuously stays within 2x of idle. The obs histogram buckets top
    // out at 2^k - 1, so "one bucket worse" is a ratio fractionally above
    // 2.0 — comparing against 2*(idle+1) admits exactly one bucket and no
    // more. An over-bound run must fail loudly, not land in the JSON as a
    // quietly worse row. Enforced only where the run can actually execute
    // concurrently — clients plus the pump thread plus the checkpoint
    // sidecar all need a core; oversubscribed, the p99 measures kernel
    // timeslicing, not checkpoint interference (the one-core caveat,
    // EXPERIMENTS.md §E3) — those rows still publish p99_ratio for review.
    const double idle_ns = median(p99_idle), ckpt_ns = median(p99_ckpt);
    const bool enforce = static_cast<unsigned>(threads) + 2 <=
                         std::thread::hardware_concurrency();
    if (enforce && idle_ns > 0 && ckpt_ns > 2.0 * (idle_ns + 1.0)) {
      s.SkipWithError(("writer p99 under checkpoints exceeded the 2x idle bound: " +
                       std::to_string(idle_ns) + " -> " + std::to_string(ckpt_ns))
                          .c_str());
    }
    s.counters["checkpoints"] = static_cast<double>(checkpoints);
    s.counters["p99_idle_us"] = idle_ns / 1e3;
    s.counters["p99_ckpt_us"] = ckpt_ns / 1e3;
    s.counters["p99_ratio"] = idle_ns > 0 ? ckpt_ns / idle_ns : 0.0;
  }
  report().add_row({"ext_snapshot/writer/idle", "idle", "", threads, writer_ops(),
                    0, std::move(secs_idle), {}});
  report().add_row({"ext_snapshot/p99-writer/idle", "idle", "", threads,
                    writer_ops(), 0, std::move(p99_idle), {}});
  report().add_row({"ext_snapshot/p99-writer/checkpoint", "checkpoint", "idle",
                    threads, writer_ops(), 0, std::move(p99_ckpt), {}});
}

// -- file: checkpoint_sync + restore round-trip across key counts ------------

void file_snapshot(benchmark::State& s) {
  const std::uint64_t n = 1ull << s.range(0);
  ServeConfig cfg;
  cfg.table.expected_keys = n + 2;
  ServeSession session(cfg);
  for (std::uint64_t k = 1; k <= n; ++k) {
    (void)session.call(Op::upsert(k, k * 3));
  }
  const crcw::snap::ScanDigest before = crcw::snap::scan_digest(session.backend());
  const std::string path = snap_dir() + "/file-n" + std::to_string(n) + ".crcwsnap";
  std::uint64_t bytes = 0;
  double last_secs = 1.0;
  {
    RowRecorder rec(s, spec("file", "snap", "", 1, n, 0));
    for (auto _ : s) {
      crcw::util::Timer timer;
      std::string err;
      const auto cut = crcw::snap::checkpoint_sync(session.backend(), path, &err);
      if (!cut.has_value()) {
        s.SkipWithError("checkpoint_sync failed");
        break;
      }
      ServeSession fresh(cfg);
      if (!crcw::snap::restore(fresh.backend(), path, &err)) {
        s.SkipWithError("restore failed");
        break;
      }
      const crcw::snap::ScanDigest after = crcw::snap::scan_digest(fresh.backend());
      last_secs = timer.seconds();
      rec.record(last_secs);
      if (after.digest != before.digest || after.entries != before.entries) {
        s.SkipWithError("restored digest differs from source at the cut");
        break;
      }
      bytes = file_bytes(path);
    }
  }
  s.counters["file_bytes"] = static_cast<double>(bytes);
  s.counters["entries_per_sec"] =
      static_cast<double>(n) / (last_secs > 0 ? last_secs : 1.0);
}

// -- killrestore: wire-published snapshot, process death, timed recovery -----

void killrestore_snapshot(benchmark::State& s) {
  namespace sv = crcw::serve;
  ServeConfig cfg = ServeConfig{}.with_shards(2).with_snapshot_dir(snap_dir());
  // Restore fills tables serially with grow parked, so the restored server
  // must be provisioned for the snapshot's key count up front.
  cfg.table.expected_keys = kWireKeys + 2;
  // Phase A (untimed, once): build state, publish over the wire, record
  // the digest witness, then let everything but the file die.
  std::string snapshot_path;
  std::uint64_t digest_at_cut = 0;
  {
    ShardedServeSession session(cfg);
    session.start_pump();
    for (std::uint64_t k = 1; k <= kWireKeys; ++k) {
      (void)session.call(Op::upsert(k, k * 3));
    }
    sv::BasicWireServer<sv::ShardedScheduler> server(session, sv::WireConfig{});
    server.start();
    sv::WireClient client("127.0.0.1", server.port());
    const sv::wire::Response created = client.snapshot_create();
    const sv::wire::Response scanned = client.snapshot_scan();
    server.stop();
    session.stop_pump();
    if (!created.won || !scanned.won) {
      s.SkipWithError("wire snapshot_create/scan failed");
      return;
    }
    snapshot_path = snap_dir() + "/snapshot-r" + std::to_string(created.round) +
                    ".crcwsnap";
    digest_at_cut = scanned.value;
  }
  // Timed: the recovery path — restore into a fresh backend, bring the
  // wire server back, and answer the cut identically over TCP.
  RowRecorder rec(s, spec("killrestore", "snap", "", 1, kWireKeys, 2));
  for (auto _ : s) {
    crcw::util::Timer timer;
    ShardedServeSession session(cfg);
    std::string err;
    if (!crcw::snap::restore(session.backend(), snapshot_path, &err)) {
      s.SkipWithError(("restore failed: " + err).c_str());
      return;
    }
    session.start_pump();
    sv::BasicWireServer<sv::ShardedScheduler> server(session, sv::WireConfig{});
    server.start();
    sv::WireClient client("127.0.0.1", server.port());
    const sv::wire::Response scanned = client.snapshot_scan();
    server.stop();
    session.stop_pump();
    rec.record(timer.seconds());
    if (!scanned.won || scanned.value != digest_at_cut) {
      s.SkipWithError("restored server answered a different digest");
      return;
    }
  }
}

// -- registration ------------------------------------------------------------

void shard_args(benchmark::internal::Benchmark* b) {
  for (const int n : crcw::bench::sweep_points({1, 2, 4}, 2)) b->Arg(n);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void thread_args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void size_args(benchmark::internal::Benchmark* b) {
  // log2(key count): 4k, 16k, 64k entries per file.
  for (const int e : crcw::bench::sweep_points({12, 14, 16}, 1)) b->Arg(e);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void single_args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(scan_snapshot)->Apply(shard_args);
BENCHMARK(writer_snapshot)->Apply(thread_args);
BENCHMARK(file_snapshot)->Apply(size_args);
BENCHMARK(killrestore_snapshot)->Apply(single_args);

}  // namespace
