// Extension benchmark: the src/serve round-batched engine against a
// mutex-guarded std::unordered_map service and the bare table, three
// sweeps:
//
//   upsert        insert-heavy (≈50% duplicate keys) across client thread
//                 counts at a fixed batch size — the acceptance sweep:
//                 batching converts per-op lock contention into one CAS-LT
//                 race per (key, round), so serve should overtake the mutex
//                 service as clients grow (EXPERIMENTS.md §E3 records the
//                 measured curves and the one-core caveat);
//   upsert-batch  the same workload across batch sizes at fixed threads —
//                 the admission-policy knob: tiny batches pay pump
//                 round-trips, huge ones pay queueing delay;
//   mixed         50/50 upsert/lookup traffic across threads — lookups
//                 ride the same rounds with committed-read consistency.
//
// Every serve row also emits a p99 enqueue→commit latency row
// (series ext_serve/p99-*/serve, samples = per-repetition p99 from the
// obs histograms) — the SLO number the ROADMAP's serving-layer item asks
// for. Client threads are raw std::threads (admission really is MPMC);
// the bench thread pumps. The mutex baseline spawns the same raw threads
// so thread-spawn cost cancels out.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_session.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::default_threads;
using crcw::bench::report;
using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;

constexpr std::uint64_t kOps = 1 << 18;

/// Random keys with ~50% duplication (n draws over n/2 values, +1 so zero
/// stays a valid key and the sentinel is unreachable), cached — generation
/// is never timed.
const std::vector<std::uint64_t>& cached_keys(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint64_t>>> cache;
  auto& slot = cache[n];
  if (!slot) {
    crcw::util::Xoshiro256 rng(42);
    slot = std::make_unique<std::vector<std::uint64_t>>(n);
    for (auto& k : *slot) k = rng.bounded(n / 2 + 1) + 1;
  }
  return *slot;
}

struct ServeRunStats {
  std::uint64_t committed_keys = 0;
  std::uint64_t p99_enqueue_commit_ns = 0;
  std::uint64_t p99_enqueue_admit_ns = 0;
  std::uint64_t rounds = 0;
};

/// One full serve run: `threads` raw clients enqueue their slice (mixed
/// mode alternates upsert/lookup), the calling thread pumps until every op
/// committed. Futures are preallocated per client; clients do not wait —
/// completion is the pump's ops_served() watermark, which counts only
/// published ops.
ServeRunStats serve_run(const std::vector<std::uint64_t>& keys, int threads,
                        std::uint64_t batch, bool mixed, bool counters = false) {
  namespace sv = crcw::serve;
  sv::BatchConfig cfg;
  cfg.max_batch = batch;
  cfg.max_wait_us = 100;
  // t is the *client* fan-in axis; the service executes rounds at the
  // ambient OpenMP width (0), its own deployment-time property — forcing
  // exec_threads = t would measure oversubscription, not admission.
  cfg.exec_threads = 0;
  cfg.lanes = threads;
  // Bounded backlog: a client hitting its watermark helps pump, so rounds
  // execute on the thread whose records are cache-hot instead of queueing
  // megabytes for a far-away drain (and p99 stays bounded by ~one batch).
  cfg.lane_backlog = batch;
  // Sample every 64th op into the latency histograms — two clock reads
  // per op would dominate the admission fast path.
  cfg.latency_sample_shift = 6;
  cfg.expected_keys = keys.size() / 2 + 2;
  cfg.counters = counters;
  sv::ServeSession session(cfg);

  const std::uint64_t total = keys.size();
  const auto t = static_cast<std::uint64_t>(threads);
  std::vector<std::vector<sv::OpFuture>> futures(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
    futures[c] = std::vector<sv::OpFuture>(hi - lo);
  }

  std::vector<std::thread> clients;
  clients.reserve(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
      for (std::uint64_t i = lo; i < hi; ++i) {
        const sv::Op op = (mixed && i % 2 != 0) ? sv::Op::lookup(keys[i])
                                                : sv::Op::upsert(keys[i], i);
        session.submit(op, futures[c][i - lo]);
      }
    });
  }
  // The bench thread is only a fallback pump — under backpressure the
  // clients pump for themselves — so sleep rather than contend for the core.
  while (session.scheduler().ops_served() < total) {
    if (!session.poll()) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  for (std::thread& th : clients) th.join();

  ServeRunStats stats;
  stats.committed_keys = session.scheduler().table().size();
  stats.p99_enqueue_commit_ns = session.metrics().p99_enqueue_to_commit_ns();
  stats.p99_enqueue_admit_ns = session.metrics().p99_enqueue_to_admit_ns();
  stats.rounds = session.scheduler().round();
  return stats;
}

/// The lock-service baseline: the same raw client threads, each op taking
/// one mutex around a std::unordered_map — per-op arbitration instead of
/// per-round.
std::uint64_t mutex_run(const std::vector<std::uint64_t>& keys, int threads,
                        bool mixed) {
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(keys.size() / 2 + 2);
  std::mutex mu;
  const std::uint64_t total = keys.size();
  const auto t = static_cast<std::uint64_t>(threads);
  std::uint64_t sink = 0;
  std::vector<std::thread> clients;
  clients.reserve(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
      std::uint64_t local = 0;
      for (std::uint64_t i = lo; i < hi; ++i) {
        const std::lock_guard<std::mutex> lock(mu);
        if (mixed && i % 2 != 0) {
          const auto it = map.find(keys[i]);
          if (it != map.end()) local += it->second;
        } else {
          map[keys[i]] = i;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      sink += local;
    });
  }
  for (std::thread& th : clients) th.join();
  benchmark::DoNotOptimize(sink);
  return map.size();
}

/// The no-service floor: the CW table driven directly by one OpenMP round —
/// what the serving layer's admission machinery costs on top.
std::uint64_t direct_run(const std::vector<std::uint64_t>& keys, int threads) {
  crcw::ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(keys.size() / 2 + 2);
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    (void)map.upsert(1, keys[static_cast<std::size_t>(i)],
                     static_cast<std::uint64_t>(i));
  }
  return map.size();
}

RowSpec spec(const char* sweep, const char* method, int threads, std::uint64_t m,
             const char* baseline = "mutex") {
  return {.series = std::string("ext_serve/") + sweep + "/" + method,
          .policy = method,
          .baseline = baseline,
          .threads = threads,
          .n = kOps,
          .m = m};
}

/// Timing loop for a serve run; also collects per-repetition p99s and
/// emits them as extra latency rows (one BenchRow per histogram, samples =
/// the p99 of each repetition). Rows go through report() directly — a
/// second RowRecorder would double-call SetIterationTime.
void bench_serve(benchmark::State& state, const char* sweep, int threads,
                 std::uint64_t batch, bool mixed) {
  const auto& keys = cached_keys(kOps);
  std::vector<double> p99_commit, p99_admit;
  ServeRunStats stats;
  {
    // m carries the batch size on every serve row (the baseline rows use 0).
    RowRecorder rec(state, spec(sweep, "serve", threads, batch));
    for (auto _ : state) {
      crcw::util::Timer timer;
      stats = serve_run(keys, threads, batch, mixed);
      rec.record(timer.seconds());
      p99_commit.push_back(static_cast<double>(stats.p99_enqueue_commit_ns));
      p99_admit.push_back(static_cast<double>(stats.p99_enqueue_admit_ns));
    }
    state.counters["keys"] = static_cast<double>(stats.committed_keys);
    state.counters["rounds"] = static_cast<double>(stats.rounds);
    state.counters["p99_us"] = static_cast<double>(stats.p99_enqueue_commit_ns) / 1e3;
    rec.profile([&] {
      crcw::obs::MetricsRegistry local;
      const crcw::obs::ScopedRegistry scoped(local);
      (void)serve_run(keys, threads, batch, mixed, /*counters=*/true);
      return std::optional(local.totals());
    });
  }
  report().add_row({std::string("ext_serve/p99-enqueue-commit/") + sweep, "serve", "",
                    threads, kOps, batch, std::move(p99_commit), {}});
  report().add_row({std::string("ext_serve/p99-enqueue-admit/") + sweep, "serve", "",
                    threads, kOps, batch, std::move(p99_admit), {}});
}

// -- upsert: thread sweep at fixed batch ------------------------------------

void upsert_threads_serve(benchmark::State& s) {
  bench_serve(s, "upsert", static_cast<int>(s.range(0)), 4096, /*mixed=*/false);
}
void upsert_threads_mutex(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("upsert", "mutex", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = mutex_run(keys, threads, /*mixed=*/false);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}
void upsert_threads_direct(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("upsert", "direct", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = direct_run(keys, threads);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}

// -- upsert: batch-size sweep at fixed threads ------------------------------

void upsert_batch_serve(benchmark::State& s) {
  bench_serve(s, "upsert-batch", default_threads(),
              static_cast<std::uint64_t>(s.range(0)), /*mixed=*/false);
}

// -- mixed 50/50 traffic ----------------------------------------------------

void mixed_threads_serve(benchmark::State& s) {
  bench_serve(s, "mixed", static_cast<int>(s.range(0)), 4096, /*mixed=*/true);
}
void mixed_threads_mutex(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("mixed", "mutex", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = mutex_run(keys, threads, /*mixed=*/true);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}

// -- registration ------------------------------------------------------------

void client_args(benchmark::internal::Benchmark* b) {
  // Smoke keeps {1, 2, 4}: t = 4 is the acceptance point (serve must beat
  // mutex there), so the committed smoke baseline has to contain it.
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8}, 3)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void batch_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t m :
       crcw::bench::sweep_points<std::int64_t>({256, 1024, 4096, 16384, 65536}, 2)) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(upsert_threads_serve)->Apply(client_args);
BENCHMARK(upsert_threads_mutex)->Apply(client_args);
BENCHMARK(upsert_threads_direct)->Apply(client_args);
BENCHMARK(upsert_batch_serve)->Apply(batch_args);
BENCHMARK(mixed_threads_serve)->Apply(client_args);
BENCHMARK(mixed_threads_mutex)->Apply(client_args);

}  // namespace
