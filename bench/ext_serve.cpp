// Extension benchmark: the src/serve round-batched engine against a
// mutex-guarded std::unordered_map service and the bare table, five
// sweeps:
//
//   upsert        insert-heavy (≈50% duplicate keys) across client thread
//                 counts at a fixed batch size — the acceptance sweep:
//                 batching converts per-op lock contention into one CAS-LT
//                 race per (key, round), so serve should overtake the mutex
//                 service as clients grow (EXPERIMENTS.md §E3 records the
//                 measured curves and the one-core caveat);
//   upsert-batch  the same workload across batch sizes at fixed threads —
//                 the admission-policy knob: tiny batches pay pump
//                 round-trips, huge ones pay queueing delay;
//   mixed         50/50 upsert/lookup traffic across threads, submitted in
//                 windows with a read-your-writes audit: every lookup of a
//                 completed window must execute in a strictly later round
//                 than the client's writes from earlier windows (throws on
//                 violation — consistency is part of what's measured);
//   shards        the sharded backend across shard counts at fixed
//                 threads/batch (m = shard count) — shard-local batching:
//                 the hit_rate counter must stay 1.0 for routed submits;
//   wire          the full deployment: a sharded server in this process, a
//                 REAL external client process (examples/wire_loadgen,
//                 fork/exec) pipelining mixed traffic over loopback TCP —
//                 rows time the external run; p99s come from the server's
//                 own enqueue→commit histograms.
//
// Every serve row also emits a p99 enqueue→commit latency row
// (series ext_serve/p99-*/serve, samples = per-repetition p99 from the
// obs histograms) — the SLO number the ROADMAP's serving-layer item asks
// for. Client threads are raw std::threads (admission really is MPMC);
// the bench thread pumps. The mutex baseline spawns the same raw threads
// so thread-spawn cost cancels out.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#ifdef CRCW_WIRE_LOADGEN_PATH
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::default_threads;
using crcw::bench::report;
using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;

constexpr std::uint64_t kOps = 1 << 18;
constexpr std::uint64_t kWireOps = 1 << 16;

/// Random keys with ~50% duplication (n draws over n/2 values, +1 so zero
/// stays a valid key and the sentinel is unreachable), cached — generation
/// is never timed.
const std::vector<std::uint64_t>& cached_keys(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint64_t>>> cache;
  auto& slot = cache[n];
  if (!slot) {
    crcw::util::Xoshiro256 rng(42);
    slot = std::make_unique<std::vector<std::uint64_t>>(n);
    for (auto& k : *slot) k = rng.bounded(n / 2 + 1) + 1;
  }
  return *slot;
}

struct ServeRunStats {
  std::uint64_t committed_keys = 0;
  std::uint64_t p99_enqueue_commit_ns = 0;
  std::uint64_t p99_enqueue_admit_ns = 0;
  std::uint64_t rounds = 0;
  double hit_rate = 1.0;
};

[[nodiscard]] crcw::serve::ServeConfig serve_config(int threads, std::uint64_t batch,
                                                    std::uint64_t n_keys, int shards) {
  crcw::serve::ServeConfig cfg;
  cfg.batch.max_batch = batch;
  cfg.batch.max_wait_us = 100;
  // t is the *client* fan-in axis; the service executes rounds at the
  // ambient OpenMP width (0), its own deployment-time property — forcing
  // exec_threads = t would measure oversubscription, not admission.
  cfg.batch.exec_threads = 0;
  cfg.batch.lanes = threads;
  // Bounded backlog: a client hitting its watermark helps pump, so rounds
  // execute on the thread whose records are cache-hot instead of queueing
  // megabytes for a far-away drain (and p99 stays bounded by ~one batch).
  cfg.batch.lane_backlog = batch;
  // Sample every 64th op into the latency histograms — two clock reads
  // per op would dominate the admission fast path.
  cfg.batch.latency_sample_shift = 6;
  cfg.table.expected_keys = n_keys / 2 + 2;
  cfg.shards.count = shards;
  return cfg;
}

/// One full serve run over any session shape. Upsert-only mode: clients
/// enqueue their whole slice without waiting; completion is the pump's
/// ops_served() watermark. Mixed mode: clients submit in windows and wait
/// each window out, auditing read-your-writes per shard — a lookup of
/// window w must carry a strictly later round than every write the client
/// committed in windows < w (the cross-shard logical round makes that a
/// single per-shard comparison). Audit violations throw.
template <typename Session>
ServeRunStats serve_run(const std::vector<std::uint64_t>& keys, int threads,
                        std::uint64_t batch, bool mixed, int shards,
                        bool counters = false) {
  namespace sv = crcw::serve;
  sv::ServeConfig cfg = serve_config(threads, batch, keys.size(), shards);
  cfg.batch.counters = counters;
  Session session(cfg);

  const std::uint64_t total = keys.size();
  const auto t = static_cast<std::uint64_t>(threads);
  std::vector<std::vector<sv::OpFuture>> futures(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
    futures[c] = std::vector<sv::OpFuture>(hi - lo);
  }
  constexpr std::uint64_t kWindow = 256;  // mixed-mode RYW window

  std::vector<std::thread> clients;
  clients.reserve(t);
  std::atomic<std::uint64_t> audit_violations{0};
  for (std::uint64_t c = 0; c < t; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
      if (!mixed) {
        for (std::uint64_t i = lo; i < hi; ++i) {
          session.submit(sv::Op::upsert(keys[i], i), futures[c][i - lo]);
        }
        return;
      }
      // Windowed mixed traffic with the per-shard RYW audit.
      std::vector<crcw::round_t> last_write(
          static_cast<std::size_t>(session.backend().shard_count()), 0);
      sv::BackoffState backoff(cfg.batch.backoff_spins);
      for (std::uint64_t w = lo; w < hi; w += kWindow) {
        const std::uint64_t end = std::min(hi, w + kWindow);
        for (std::uint64_t i = w; i < end; ++i) {
          const sv::Op op = (i % 2 != 0) ? sv::Op::lookup(keys[i])
                                         : sv::Op::upsert(keys[i], i);
          session.submit(op, futures[c][i - lo]);
        }
        for (std::uint64_t i = w; i < end; ++i) {
          while (!futures[c][i - lo].ready()) backoff.pause();
        }
        // Audit lookups against the tracker as of the PREVIOUS windows,
        // then fold this window's write rounds in.
        for (std::uint64_t i = w; i < end; ++i) {
          if (i % 2 == 0) continue;
          const auto shard =
              static_cast<std::size_t>(session.backend().shard_of(keys[i]));
          if (futures[c][i - lo].result().round <= last_write[shard]) {
            audit_violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        for (std::uint64_t i = w; i < end; ++i) {
          if (i % 2 != 0) continue;
          const auto shard =
              static_cast<std::size_t>(session.backend().shard_of(keys[i]));
          const crcw::round_t r = futures[c][i - lo].result().round;
          if (r > last_write[shard]) last_write[shard] = r;
        }
      }
    });
  }
  // The bench thread is only a fallback pump — under backpressure the
  // clients pump for themselves — so sleep rather than contend for the core.
  while (session.backend().ops_served() < total) {
    if (!session.poll()) std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  for (std::thread& th : clients) th.join();
  if (audit_violations.load() != 0) {
    throw std::runtime_error("ext_serve: read-your-writes audit failed (" +
                             std::to_string(audit_violations.load()) +
                             " stale lookups)");
  }

  const crcw::serve::BackendStats bstats = session.stats();
  ServeRunStats stats;
  stats.committed_keys = bstats.keys;
  stats.p99_enqueue_commit_ns = session.metrics().p99_enqueue_to_commit_ns();
  stats.p99_enqueue_admit_ns = session.metrics().p99_enqueue_to_admit_ns();
  stats.rounds = bstats.rounds;
  stats.hit_rate = bstats.routing_hit_rate();
  return stats;
}

/// The lock-service baseline: the same raw client threads, each op taking
/// one mutex around a std::unordered_map — per-op arbitration instead of
/// per-round.
std::uint64_t mutex_run(const std::vector<std::uint64_t>& keys, int threads,
                        bool mixed) {
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(keys.size() / 2 + 2);
  std::mutex mu;
  const std::uint64_t total = keys.size();
  const auto t = static_cast<std::uint64_t>(threads);
  std::uint64_t sink = 0;
  std::vector<std::thread> clients;
  clients.reserve(t);
  for (std::uint64_t c = 0; c < t; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t lo = total * c / t, hi = total * (c + 1) / t;
      std::uint64_t local = 0;
      for (std::uint64_t i = lo; i < hi; ++i) {
        const std::lock_guard<std::mutex> lock(mu);
        if (mixed && i % 2 != 0) {
          const auto it = map.find(keys[i]);
          if (it != map.end()) local += it->second;
        } else {
          map[keys[i]] = i;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      sink += local;
    });
  }
  for (std::thread& th : clients) th.join();
  benchmark::DoNotOptimize(sink);
  return map.size();
}

/// The no-service floor: the CW table driven directly by one OpenMP round —
/// what the serving layer's admission machinery costs on top.
std::uint64_t direct_run(const std::vector<std::uint64_t>& keys, int threads) {
  crcw::ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(keys.size() / 2 + 2);
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    (void)map.upsert(1, keys[static_cast<std::size_t>(i)],
                     static_cast<std::uint64_t>(i));
  }
  return map.size();
}

RowSpec spec(const char* sweep, const char* method, int threads, std::uint64_t m,
             const char* baseline = "mutex") {
  return {.series = std::string("ext_serve/") + sweep + "/" + method,
          .policy = method,
          .baseline = baseline,
          .threads = threads,
          .n = kOps,
          .m = m};
}

/// Timing loop for a serve run; also collects per-repetition p99s and
/// emits them as extra latency rows (one BenchRow per histogram, samples =
/// the p99 of each repetition). Rows go through report() directly — a
/// second RowRecorder would double-call SetIterationTime.
template <typename Session>
void bench_serve(benchmark::State& state, const char* sweep, int threads,
                 std::uint64_t batch, bool mixed, int shards, std::uint64_t m) {
  const auto& keys = cached_keys(kOps);
  std::vector<double> p99_commit, p99_admit;
  ServeRunStats stats;
  {
    RowRecorder rec(state, spec(sweep, "serve", threads, m));
    for (auto _ : state) {
      crcw::util::Timer timer;
      stats = serve_run<Session>(keys, threads, batch, mixed, shards);
      rec.record(timer.seconds());
      p99_commit.push_back(static_cast<double>(stats.p99_enqueue_commit_ns));
      p99_admit.push_back(static_cast<double>(stats.p99_enqueue_admit_ns));
    }
    state.counters["keys"] = static_cast<double>(stats.committed_keys);
    state.counters["rounds"] = static_cast<double>(stats.rounds);
    state.counters["p99_us"] = static_cast<double>(stats.p99_enqueue_commit_ns) / 1e3;
    state.counters["hit_rate"] = stats.hit_rate;
    rec.profile([&] {
      crcw::obs::MetricsRegistry local;
      const crcw::obs::ScopedRegistry scoped(local);
      (void)serve_run<Session>(keys, threads, batch, mixed, shards, /*counters=*/true);
      return std::optional(local.totals());
    });
  }
  report().add_row({std::string("ext_serve/p99-enqueue-commit/") + sweep, "serve", "",
                    threads, kOps, m, std::move(p99_commit), {}});
  report().add_row({std::string("ext_serve/p99-enqueue-admit/") + sweep, "serve", "",
                    threads, kOps, m, std::move(p99_admit), {}});
}

// -- upsert: thread sweep at fixed batch ------------------------------------

void upsert_threads_serve(benchmark::State& s) {
  // m carries the batch size on flat serve rows (the baseline rows use 0).
  bench_serve<crcw::serve::ServeSession>(s, "upsert", static_cast<int>(s.range(0)),
                                         4096, /*mixed=*/false, /*shards=*/1, 4096);
}
void upsert_threads_mutex(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("upsert", "mutex", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = mutex_run(keys, threads, /*mixed=*/false);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}
void upsert_threads_direct(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("upsert", "direct", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = direct_run(keys, threads);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}

// -- upsert: batch-size sweep at fixed threads ------------------------------

void upsert_batch_serve(benchmark::State& s) {
  const auto batch = static_cast<std::uint64_t>(s.range(0));
  bench_serve<crcw::serve::ServeSession>(s, "upsert-batch", default_threads(),
                                         batch, /*mixed=*/false, /*shards=*/1, batch);
}

// -- mixed 50/50 traffic (windowed, read-your-writes audited) ---------------

void mixed_threads_serve(benchmark::State& s) {
  bench_serve<crcw::serve::ServeSession>(s, "mixed", static_cast<int>(s.range(0)),
                                         4096, /*mixed=*/true, /*shards=*/1, 4096);
}
void mixed_threads_mutex(benchmark::State& s) {
  const int threads = static_cast<int>(s.range(0));
  const auto& keys = cached_keys(kOps);
  RowRecorder rec(s, spec("mixed", "mutex", threads, 0));
  std::uint64_t size = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    size = mutex_run(keys, threads, /*mixed=*/true);
    rec.record(timer.seconds());
  }
  s.counters["keys"] = static_cast<double>(size);
}

// -- shards: shard-count sweep on the sharded backend (m = shards) ----------

void shards_serve(benchmark::State& s) {
  const int shards = static_cast<int>(s.range(0));
  bench_serve<crcw::serve::ShardedServeSession>(
      s, "shards", default_threads(), 4096, /*mixed=*/false, shards,
      static_cast<std::uint64_t>(shards));
}

// -- wire: external client process over loopback TCP ------------------------

#ifdef CRCW_WIRE_LOADGEN_PATH
/// fork/exec the load generator against `port`; true iff it exits 0 (it
/// self-audits op completion and read-your-writes).
bool spawn_loadgen(std::uint16_t port, std::uint64_t ops, int threads,
                   std::uint64_t window) {
  const std::string port_s = std::to_string(port);
  const std::string ops_s = std::to_string(ops);
  const std::string threads_s = std::to_string(threads);
  const std::string window_s = std::to_string(window);
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // The child's summary line would interleave with the bench table;
    // its exit code carries the verdict, stderr stays for diagnostics.
    if (FILE* devnull = std::fopen("/dev/null", "w")) {
      dup2(fileno(devnull), STDOUT_FILENO);
    }
    const char* argv[] = {CRCW_WIRE_LOADGEN_PATH, "--port", port_s.c_str(),
                          "--ops", ops_s.c_str(), "--threads", threads_s.c_str(),
                          "--window", window_s.c_str(), "--mixed", nullptr};
    execv(CRCW_WIRE_LOADGEN_PATH, const_cast<char* const*>(argv));
    _exit(127);  // exec failed
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}
#endif

void wire_serve(benchmark::State& s) {
#ifndef CRCW_WIRE_LOADGEN_PATH
  s.SkipWithError("examples not built: no wire_loadgen to spawn");
#else
  namespace sv = crcw::serve;
  const int clients = static_cast<int>(s.range(0));
  const std::uint64_t ops = crcw::bench::smoke_mode() ? kWireOps / 8 : kWireOps;
  std::vector<double> p99_commit;
  std::uint64_t rounds = 0;
  double hit_rate = 1.0;
  {
    RowRecorder rec(s, spec("wire", "serve", clients, 4, /*baseline=*/""));
    for (auto _ : s) {
      sv::ServeConfig cfg = serve_config(clients, 4096, ops, /*shards=*/4);
      sv::ShardedServeSession session(cfg);
      sv::WireServer server(session, cfg.wire);  // port 0 → ephemeral
      server.start();
      crcw::util::Timer timer;
      const bool ok = spawn_loadgen(server.port(), ops, clients, /*window=*/64);
      const double secs = timer.seconds();
      server.stop();
      session.stop_pump();
      if (!ok) {
        s.SkipWithError("wire_loadgen failed (completion or RYW audit)");
        return;
      }
      rec.record(secs);
      p99_commit.push_back(static_cast<double>(session.metrics().p99_enqueue_to_commit_ns()));
      rounds = session.backend().round();
      hit_rate = session.metrics().routing_hit_rate();
    }
    s.counters["rounds"] = static_cast<double>(rounds);
    s.counters["hit_rate"] = hit_rate;
    if (!p99_commit.empty()) {
      s.counters["p99_us"] = p99_commit.back() / 1e3;
    }
  }
  report().add_row({"ext_serve/p99-enqueue-commit/wire", "serve", "", clients,
                    static_cast<std::uint64_t>(ops), 4, std::move(p99_commit), {}});
#endif
}

// -- registration ------------------------------------------------------------

void client_args(benchmark::internal::Benchmark* b) {
  // Smoke keeps {1, 2, 4}: t = 4 is the acceptance point (serve must beat
  // mutex there), so the committed smoke baseline has to contain it.
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8}, 3)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void batch_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t m :
       crcw::bench::sweep_points<std::int64_t>({256, 1024, 4096, 16384, 65536}, 2)) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void shard_args(benchmark::internal::Benchmark* b) {
  // Smoke keeps {1, 2}: the sharded path and its flat degenerate case.
  for (const std::int64_t m : crcw::bench::sweep_points<std::int64_t>({1, 2, 4, 8}, 2)) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void wire_args(benchmark::internal::Benchmark* b) {
  // The axis is external client threads over one TCP connection each.
  for (const int t : crcw::bench::sweep_points({1, 2, 4}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(upsert_threads_serve)->Apply(client_args);
BENCHMARK(upsert_threads_mutex)->Apply(client_args);
BENCHMARK(upsert_threads_direct)->Apply(client_args);
BENCHMARK(upsert_batch_serve)->Apply(batch_args);
BENCHMARK(mixed_threads_serve)->Apply(client_args);
BENCHMARK(mixed_threads_mutex)->Apply(client_args);
BENCHMARK(shards_serve)->Apply(shard_args);
BENCHMARK(wire_serve)->Apply(wire_args);

}  // namespace
