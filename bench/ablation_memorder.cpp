// Ablation A2: the pre-load skip and memory orders (DESIGN.md §5).
//
// CAS-LT's cost model has two knobs the paper fixes implicitly:
//   1. the relaxed pre-load that skips the CAS once the round is committed
//      (Figure 1 line 6) — compare CasLtPolicy vs CasLtNoSkipPolicy vs
//      CasLtRetryPolicy;
//   2. the memory order of that pre-load — a bench-local seq_cst variant
//      quantifies what the strongest ordering would cost on x86 (where
//      seq_cst loads are plain loads but seq_cst CAS is unchanged, so the
//      difference is expected to be small — that *finding* is the point).
#include <omp.h>

#include <atomic>
#include <cstdint>

#include "bench_common.hpp"
#include "core/policies.hpp"
#include "util/timer.hpp"

namespace {

using crcw::round_t;

/// Bench-local CAS-LT with every access at seq_cst.
struct SeqCstTag {
  std::atomic<round_t> last{0};

  bool try_acquire(round_t round) noexcept {
    round_t current = last.load(std::memory_order_seq_cst);
    if (current >= round) return false;
    return last.compare_exchange_strong(current, round, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst);
  }
};

constexpr int kRounds = 500;
constexpr int kAttemptsPerRound = 64;

template <typename TryAcquire>
void run_contended(benchmark::State& state, const std::string& variant, TryAcquire&& attempt,
                   auto&& reset) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, {.series = "ablation_memorder/" + variant,
                                       .policy = variant,
                                       .baseline = "caslt-skip-acqrel",
                                       .threads = threads,
                                       .n = kRounds,
                                       .m = kAttemptsPerRound});
  std::uint64_t wins = 0;
  for (auto _ : state) {
    reset();
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (int r = 1; r <= kRounds; ++r) {
        for (int a = 0; a < kAttemptsPerRound; ++a) {
          if (attempt(static_cast<round_t>(r))) ++wins;
        }
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
  }
  benchmark::DoNotOptimize(wins);
}

void caslt_skip_acqrel(benchmark::State& state) {
  crcw::RoundTag tag;
  run_contended(
      state, "caslt-skip-acqrel", [&](round_t r) { return tag.try_acquire(r); },
      [&] { tag.reset(); });
}

void caslt_noskip(benchmark::State& state) {
  crcw::RoundTag tag;
  run_contended(
      state, "caslt-noskip", [&](round_t r) { return tag.try_acquire_no_skip(r); },
      [&] { tag.reset(); });
}

void caslt_retry(benchmark::State& state) {
  crcw::RoundTag tag;
  run_contended(
      state, "caslt-retry", [&](round_t r) { return tag.try_acquire_retry(r); },
      [&] { tag.reset(); });
}

void caslt_skip_seqcst(benchmark::State& state) {
  SeqCstTag tag;
  run_contended(
      state, "caslt-skip-seqcst", [&](round_t r) { return tag.try_acquire(r); },
      [&] { tag.last.store(0, std::memory_order_relaxed); });
}

void args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points<int>({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(caslt_skip_acqrel)->Apply(args);
BENCHMARK(caslt_noskip)->Apply(args);
BENCHMARK(caslt_retry)->Apply(args);
BENCHMARK(caslt_skip_seqcst)->Apply(args);

}  // namespace
