// Figure 8: effect of the number of graph vertices on BFS execution time at
// a fixed edge count. Paper: 30M edges, 32 threads, max speedup 2.31x /
// geomean 1.86x vs naive. Growing V at fixed E thins out collisions, which
// narrows the gap between methods — the shape to look for.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;
using crcw::bench::default_threads;

constexpr std::uint64_t kEdges = 1'000'000;

void fig8(benchmark::State& state, const std::string& method) {
  const auto vertices = static_cast<std::uint64_t>(state.range(0));
  const auto& g = cached_graph(vertices, kEdges);
  const crcw::algo::BfsOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "fig8/" + method,
                                       .policy = method,
                                       .baseline = "naive",
                                       .threads = default_threads(),
                                       .n = vertices,
                                       .m = kEdges});

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_bfs(method, g, 0, opts);
    rec.record(timer.seconds());
    rounds = r.rounds;
  }
  rec.profile([&] { return crcw::algo::profile_bfs(method, g, 0, opts); });
  benchmark::DoNotOptimize(rounds);
  state.counters["vertices"] = static_cast<double>(vertices);
  state.counters["edges"] = static_cast<double>(kEdges);
  state.counters["threads"] = default_threads();
}

void vertex_sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : crcw::bench::sweep_points<std::int64_t>(
           {25'000, 50'000, 100'000, 200'000, 400'000})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(fig8, naive, "naive")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig8, gatekeeper, "gatekeeper")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig8, gatekeeper_sparse, "gatekeeper-sparse")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig8, gatekeeper_skip, "gatekeeper-skip")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig8, caslt, "caslt")->Apply(vertex_sweep);
// Growing V at fixed E is exactly where the sparse reset should pull away
// from the full sweep (reset work is O(frontier), not O(V)); the frontier
// pair rides along for the slot-allocation comparison.
BENCHMARK_CAPTURE(fig8, frontier, "frontier")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig8, frontier_shared, "frontier-shared")->Apply(vertex_sweep);

}  // namespace
