// Shared infrastructure for the figure benches (fig5..fig12).
//
// Conventions, mirroring the paper's methodology (§7.1-7.2):
//   * measurements exclude graph/list generation (built once, cached);
//   * each google-benchmark row is one point of the corresponding figure:
//     time for one (method, x-axis value) pair;
//   * thread counts come from the benchmark argument; on this container
//     counts above hardware_threads() exercise oversubscription (see
//     DESIGN.md "Substitutions") — the paper ran real 32-core nodes;
//   * problem sizes default to laptop scale; rerun with --paper-scale sizes
//     by editing the sweep constants or via the figN --n/--m overrides in
//     bench/paper_tables.cpp.
#pragma once

#include <benchmark/benchmark.h>
#include <omp.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace crcw::bench {

/// Threads used for the fixed-thread figures (the paper uses 32 on a
/// 32-core node; we default to 4 to bound oversubscription overhead).
inline int default_threads() {
  if (const char* env = std::getenv("CRCW_BENCH_THREADS"); env != nullptr) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 4;
}

/// Graph cache: the benches sweep sizes with several methods per size; the
/// (untimed) generation happens once per shape.
inline const graph::Csr& cached_graph(std::uint64_t n, std::uint64_t m,
                                      std::uint64_t seed = 42) {
  static std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
                  std::unique_ptr<graph::Csr>>
      cache;
  auto& slot = cache[{n, m, seed}];
  if (!slot) slot = std::make_unique<graph::Csr>(graph::random_graph(n, m, seed));
  return *slot;
}

/// Cached random list for the Maximum figures.
inline const std::vector<std::uint32_t>& cached_list(std::uint64_t n,
                                                     std::uint64_t seed = 42) {
  static std::map<std::pair<std::uint64_t, std::uint64_t>,
                  std::unique_ptr<std::vector<std::uint32_t>>>
      cache;
  auto& slot = cache[{n, seed}];
  if (!slot) {
    util::Xoshiro256 rng(seed);
    slot = std::make_unique<std::vector<std::uint32_t>>(n);
    for (auto& x : *slot) x = static_cast<std::uint32_t>(rng.bounded(1u << 30));
  }
  return *slot;
}

/// Standard thread sweep for the "effect of number of threads" figures.
inline void thread_sweep(benchmark::internal::Benchmark* b) {
  for (const int t : {1, 2, 4, 8, 16, 32}) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

}  // namespace crcw::bench
