// Shared infrastructure for the figure benches (fig5..fig12).
//
// Conventions, mirroring the paper's methodology (§7.1-7.2):
//   * measurements exclude graph/list generation (built once, cached);
//   * each google-benchmark row is one point of the corresponding figure:
//     time for one (method, x-axis value) pair;
//   * thread counts come from the benchmark argument; on this container
//     counts above hardware_threads() exercise oversubscription (see
//     DESIGN.md "Substitutions") — the paper ran real 32-core nodes;
//   * problem sizes default to laptop scale; rerun with --paper-scale sizes
//     by editing the sweep constants or via the figN --n/--m overrides in
//     bench/paper_tables.cpp.
//
// Besides the human-readable google-benchmark table, every bench binary
// emits a machine-readable bench_results/BENCH_<name>.json (schema
// "crcw-bench", see obs/bench_report.hpp) through the RowRecorder below;
// scripts/bench_compare.py diffs two such files and gates CI on timing
// regressions. Environment knobs:
//   CRCW_BENCH_THREADS   fixed-thread figures' thread count (default 4)
//   CRCW_BENCH_SMOKE     truncate sweeps to their first point(s) — CI smoke
//   CRCW_BENCH_JSON_DIR  where BENCH_<name>.json lands (default
//                        ./bench_results)
#pragma once

#include <benchmark/benchmark.h>
#include <omp.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace crcw::bench {

/// Threads used for the fixed-thread figures (the paper uses 32 on a
/// 32-core node; we default to 4 to bound oversubscription overhead).
inline int default_threads() {
  if (const char* env = std::getenv("CRCW_BENCH_THREADS"); env != nullptr) {
    const int t = std::atoi(env);
    if (t > 0) return t;
  }
  return 4;
}

/// CI smoke mode: sweeps shrink to their leading point(s) so every bench
/// binary still runs end to end — same code paths, minutes not hours.
inline bool smoke_mode() {
  const char* env = std::getenv("CRCW_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && *env != '0';
}

/// A figure sweep: the full point list, or its first `smoke_keep` points in
/// smoke mode.
template <typename T>
std::vector<T> sweep_points(std::initializer_list<T> full, std::size_t smoke_keep = 1) {
  std::vector<T> pts(full);
  if (smoke_mode() && pts.size() > smoke_keep) pts.resize(smoke_keep);
  return pts;
}

/// Graph cache: the benches sweep sizes with several methods per size; the
/// (untimed) generation happens once per shape.
inline const graph::Csr& cached_graph(std::uint64_t n, std::uint64_t m,
                                      std::uint64_t seed = 42) {
  static std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
                  std::unique_ptr<graph::Csr>>
      cache;
  auto& slot = cache[{n, m, seed}];
  if (!slot) slot = std::make_unique<graph::Csr>(graph::random_graph(n, m, seed));
  return *slot;
}

/// Cached random list for the Maximum figures.
inline const std::vector<std::uint32_t>& cached_list(std::uint64_t n,
                                                     std::uint64_t seed = 42) {
  static std::map<std::pair<std::uint64_t, std::uint64_t>,
                  std::unique_ptr<std::vector<std::uint32_t>>>
      cache;
  auto& slot = cache[{n, seed}];
  if (!slot) {
    util::Xoshiro256 rng(seed);
    slot = std::make_unique<std::vector<std::uint32_t>>(n);
    for (auto& x : *slot) x = static_cast<std::uint32_t>(rng.bounded(1u << 30));
  }
  return *slot;
}

/// Standard thread sweep for the "effect of number of threads" figures
/// (smoke mode keeps 1 and 2 threads so contention paths still execute).
inline void thread_sweep(benchmark::internal::Benchmark* b) {
  for (const int t : sweep_points({1, 2, 4, 8, 16, 32}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

/// The process-wide BENCH_<name>.json document, named after the running
/// binary and written once at exit (only if any row was recorded, so
/// --benchmark_list_tests etc. stay side-effect free).
inline obs::BenchReport& report() {
  static obs::BenchReport* instance = [] {
    std::string name = "bench";
#if defined(__GLIBC__)
    if (program_invocation_short_name != nullptr && *program_invocation_short_name) {
      name = program_invocation_short_name;
    }
#endif
    auto* r = new obs::BenchReport(std::move(name));
    std::atexit([] {
      obs::BenchReport& rep = report();
      if (!rep.empty()) rep.write_file(rep.default_path());
    });
    return r;
  }();
  return *instance;
}

/// Identity of one figure point; what BenchRow carries besides samples.
struct RowSpec {
  std::string series;    ///< unique point id, e.g. "fig5/caslt"
  std::string policy;    ///< method name ("" if not applicable)
  std::string baseline;  ///< policy speedup is measured against ("" = none)
  int threads = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
};

/// Per-benchmark-run recorder: wraps the manual-timing idiom
/// (Timer + SetIterationTime) while capturing each sample, and emits one
/// BenchRow into report() at scope end. google-benchmark re-invokes a
/// benchmark function while tuning iteration counts; rows are keyed on
/// (series, threads, n, m) so the final (longest) run wins.
///
///   RowRecorder rec(state, {.series = "fig5/" + method, ...});
///   for (auto _ : state) {
///     crcw::util::Timer timer;
///     work();
///     rec.record(timer.seconds());
///   }
///   rec.profile([&] { return algo::profile_max(method, list, opts); });
class RowRecorder {
 public:
  RowRecorder(benchmark::State& state, RowSpec spec)
      : state_(state), spec_(std::move(spec)) {}

  RowRecorder(const RowRecorder&) = delete;
  RowRecorder& operator=(const RowRecorder&) = delete;

  ~RowRecorder() {
    obs::BenchRow row{spec_.series,  spec_.policy, spec_.baseline, spec_.threads,
                      spec_.n,       spec_.m,      std::move(samples_ns_),
                      std::move(counters_)};
    if (!row.samples_ns.empty()) report().add_row(std::move(row));
  }

  /// One timed iteration: forwards to SetIterationTime and keeps the
  /// sample for the JSON row's samples_ns / median_ns.
  void record(double seconds) {
    state_.SetIterationTime(seconds);
    samples_ns_.push_back(seconds * 1e9);
  }

  /// Runs `fn` (returning optional<ContentionTotals>) once per figure
  /// point: skipped when a previous invocation of this benchmark already
  /// recorded counters for the same row key. Call it AFTER the timing loop
  /// — instrumented runs cost extra RMWs and must never be timed.
  template <typename Fn>
  void profile(Fn&& fn) {
    obs::BenchRow key{spec_.series, spec_.policy, spec_.baseline, spec_.threads,
                      spec_.n,      spec_.m,      {},             {}};
    if (report().has_counters(key)) return;
    counters_ = std::forward<Fn>(fn)();
  }

 private:
  benchmark::State& state_;
  RowSpec spec_;
  std::vector<double> samples_ns_;
  std::optional<obs::ContentionTotals> counters_;
};

}  // namespace crcw::bench
