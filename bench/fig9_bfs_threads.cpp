// Figure 9: effect of the number of execution threads on BFS execution
// time (paper: 100K vertices, 30M edges; speedup vs Rodinia reaches 2.24x
// at high thread counts). See the Figure 6 note on oversubscription.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;

constexpr std::uint64_t kVertices = 100'000;
constexpr std::uint64_t kEdges = 1'000'000;

void fig9(benchmark::State& state, const std::string& method) {
  const int threads = static_cast<int>(state.range(0));
  const auto& g = cached_graph(kVertices, kEdges);
  const crcw::algo::BfsOptions opts{.threads = threads};
  crcw::bench::RowRecorder rec(state, {.series = "fig9/" + method,
                                       .policy = method,
                                       .baseline = "naive",
                                       .threads = threads,
                                       .n = kVertices,
                                       .m = kEdges});

  std::uint64_t rounds = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_bfs(method, g, 0, opts);
    rec.record(timer.seconds());
    rounds = r.rounds;
  }
  rec.profile([&] { return crcw::algo::profile_bfs(method, g, 0, opts); });
  benchmark::DoNotOptimize(rounds);
  state.counters["vertices"] = static_cast<double>(kVertices);
  state.counters["edges"] = static_cast<double>(kEdges);
  state.counters["threads"] = threads;
}

BENCHMARK_CAPTURE(fig9, naive, "naive")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, gatekeeper, "gatekeeper")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, gatekeeper_sparse, "gatekeeper-sparse")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, gatekeeper_skip, "gatekeeper-skip")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, caslt, "caslt")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, frontier, "frontier")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig9, frontier_shared, "frontier-shared")->Apply(crcw::bench::thread_sweep);

}  // namespace
