// Figure 7: effect of the number of graph edges on BFS execution time.
// Paper: random undirected graphs, 100K vertices, 32 threads, edges swept;
// max speedup 3.04x / geomean 2.12x for CAS-LT vs Rodinia's naive method.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;
using crcw::bench::default_threads;

constexpr std::uint64_t kVertices = 100'000;

void fig7(benchmark::State& state, const std::string& method) {
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  const auto& g = cached_graph(kVertices, edges);
  const crcw::algo::BfsOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "fig7/" + method,
                                       .policy = method,
                                       .baseline = "naive",
                                       .threads = default_threads(),
                                       .n = kVertices,
                                       .m = edges});

  std::uint64_t reached = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_bfs(method, g, 0, opts);
    rec.record(timer.seconds());
    reached = r.rounds;
  }
  rec.profile([&] { return crcw::algo::profile_bfs(method, g, 0, opts); });
  benchmark::DoNotOptimize(reached);
  state.counters["vertices"] = static_cast<double>(kVertices);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["threads"] = default_threads();
}

void edge_sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t m :
       crcw::bench::sweep_points<std::int64_t>({250'000, 500'000, 1'000'000, 2'000'000})) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(fig7, naive, "naive")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig7, gatekeeper, "gatekeeper")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig7, gatekeeper_sparse, "gatekeeper-sparse")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig7, gatekeeper_skip, "gatekeeper-skip")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig7, caslt, "caslt")->Apply(edge_sweep);
// Beyond the paper's comparison: the frontier-queue CAS-LT variants, with
// chunked per-thread slot grants (core/slot_alloc.hpp) vs one shared
// fetch_add per discovery — their profiles carry the "frontier-slots" site.
BENCHMARK_CAPTURE(fig7, frontier, "frontier")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig7, frontier_shared, "frontier-shared")->Apply(edge_sweep);

}  // namespace
