// Figure 11: effect of the number of graph vertices on Connected Components
// execution time at fixed edge count. Paper: 30M edges, 32 threads. More
// vertices per edge ⇒ lower collision density ⇒ prefix-sum's time FALLS
// steeply while CAS-LT trends only slightly upward — the crossover shape
// that demonstrates collision serialisation is the prefix-sum bottleneck.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;
using crcw::bench::default_threads;

constexpr std::uint64_t kEdges = 500'000;

void fig11(benchmark::State& state, const std::string& method) {
  const auto vertices = static_cast<std::uint64_t>(state.range(0));
  const auto& g = cached_graph(vertices, kEdges);
  const crcw::algo::CcOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "fig11/" + method,
                                       .policy = method,
                                       .baseline = "gatekeeper",
                                       .threads = default_threads(),
                                       .n = vertices,
                                       .m = kEdges});

  std::uint64_t components = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_cc(method, g, opts);
    rec.record(timer.seconds());
    components = r.components;
  }
  rec.profile([&] { return crcw::algo::profile_cc(method, g, opts); });
  benchmark::DoNotOptimize(components);
  state.counters["vertices"] = static_cast<double>(vertices);
  state.counters["edges"] = static_cast<double>(kEdges);
  state.counters["threads"] = default_threads();
}

void vertex_sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : crcw::bench::sweep_points<std::int64_t>(
           {12'500, 25'000, 50'000, 100'000, 200'000})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(fig11, gatekeeper, "gatekeeper")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig11, gatekeeper_sparse, "gatekeeper-sparse")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig11, gatekeeper_skip, "gatekeeper-skip")->Apply(vertex_sweep);
BENCHMARK_CAPTURE(fig11, caslt, "caslt")->Apply(vertex_sweep);

}  // namespace
