// Extension benchmark: long-lived churn on the CW-arbitrated map — the
// workload the erase/reclaim lifecycle exists for. Each cycle upserts a
// fresh transient working set in one round, erases it the next, then runs
// the step-boundary lifecycle (backlog-sized grow before the batch,
// watermark-gated reclaim after), on top of a permanent core that must
// survive every rebuild.
//
// Two claims are enforced, not just measured:
//   * bucket_count() stays inside one hysteresis band for the whole run —
//     any cycle pushing past it throws, so a regression to grow-only
//     behaviour fails the bench (and the committed smoke baseline) rather
//     than silently inflating a number;
//   * erase is one CAS-LT per (key, round): the profile pass checks the
//     tombstones counter equals exactly cycles x churn (every erase win is
//     one committed tombstone write, no retries, no amplification).
//
// Baseline "mutex" is std::unordered_map behind one lock, whose erase()
// really deallocates — the honest competitor for bounded-footprint churn.
// Rows land in BENCH_ext_churn.json; m carries the max bucket_count the
// sweep observed, so the boundedness claim is visible in the committed
// baseline, and bench_compare.py gates the caslt-vs-mutex timing.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "bench_common.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;

constexpr std::uint64_t kCore = 1 << 10;   ///< permanent keys (live forever)
constexpr std::uint64_t kChurn = 1 << 12;  ///< transient keys per cycle
constexpr int kCycles = 128;               ///< insert/erase cycles per run

struct ChurnOutcome {
  std::uint64_t final_buckets = 0;
  std::uint64_t max_buckets = 0;
};

/// The full churn run on the CAS-LT map. Every cycle uses a fresh key
/// range — the worst case for tombstone accumulation — bracketed by the
/// same step-boundary calls the serve layer makes.
ChurnOutcome churn_caslt(int threads, bool telemetry = false) {
  crcw::ds::HashConfig cfg;
  cfg.telemetry = telemetry;
  cfg.site_name = "ext-churn";
  crcw::ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> map(kCore + kChurn,
                                                                cfg);
  // One hysteresis band of headroom over the sized-for-one-cycle table:
  // reclaim_ratio (0.25) vs max_load (0.5) bounds the oscillation to one
  // backlog grow above the post-reclaim floor; x4 covers it exactly.
  const std::uint64_t band = map.bucket_count() * 4;

  crcw::round_t r = 1;
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(kCore); ++i) {
    (void)map.upsert(r, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i));
  }

  ChurnOutcome out;
  out.max_buckets = map.bucket_count();
  for (int c = 0; c < kCycles; ++c) {
    (void)map.maybe_grow_for_backlog(kChurn, threads);
    const std::uint64_t base = kCore + static_cast<std::uint64_t>(c) * kChurn;
    ++r;
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(kChurn); ++i) {
      (void)map.upsert(r, base + static_cast<std::uint64_t>(i),
                       static_cast<std::uint64_t>(i));
    }
    ++r;
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(kChurn); ++i) {
      (void)map.erase(r, base + static_cast<std::uint64_t>(i));
    }
    (void)map.maybe_reclaim_parallel(threads);

    out.max_buckets = std::max(out.max_buckets, map.bucket_count());
    if (out.max_buckets > band) {
      throw std::runtime_error(
          "ext_churn: bucket_count " + std::to_string(out.max_buckets) +
          " escaped the hysteresis band " + std::to_string(band) +
          " at cycle " + std::to_string(c) + " — reclaim is not shrinking");
    }
  }
  map.flush_round();
  out.final_buckets = map.bucket_count();
  return out;
}

/// Locked-std baseline: erase() frees for real, so boundedness is free and
/// the comparison isolates the arbitration + reclaim overhead.
ChurnOutcome churn_mutex(int threads) {
  std::unordered_map<std::uint64_t, std::uint64_t> map;
  map.reserve(kCore + kChurn);
  std::mutex mu;
  for (std::uint64_t i = 0; i < kCore; ++i) map.emplace(i, i);

  ChurnOutcome out;
  out.max_buckets = map.bucket_count();
  for (int c = 0; c < kCycles; ++c) {
    const std::uint64_t base = kCore + static_cast<std::uint64_t>(c) * kChurn;
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(kChurn); ++i) {
      const std::lock_guard<std::mutex> lock(mu);
      map.insert_or_assign(base + static_cast<std::uint64_t>(i),
                           static_cast<std::uint64_t>(i));
    }
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(kChurn); ++i) {
      const std::lock_guard<std::mutex> lock(mu);
      map.erase(base + static_cast<std::uint64_t>(i));
    }
    out.max_buckets = std::max(
        out.max_buckets, static_cast<std::uint64_t>(map.bucket_count()));
  }
  out.final_buckets = map.bucket_count();
  return out;
}

template <typename Run>
void bench_churn(benchmark::State& state, const char* method, Run&& run) {
  const int threads = static_cast<int>(state.range(0));
  // Untimed shakedown: learns the sweep's max bucket_count for the row key
  // (RowSpec::m) and trips the band check before anything is recorded.
  const ChurnOutcome shape = run(threads);
  RowRecorder rec(state, {.series = std::string("ext_churn/cycles/") + method,
                          .policy = method,
                          .baseline = "mutex",
                          .threads = threads,
                          .n = static_cast<std::uint64_t>(kCycles) * kChurn,
                          .m = shape.max_buckets});
  ChurnOutcome out;
  for (auto _ : state) {
    crcw::util::Timer timer;
    out = run(threads);
    rec.record(timer.seconds());
  }
  state.counters["max_buckets"] = static_cast<double>(out.max_buckets);
  state.counters["final_buckets"] = static_cast<double>(out.final_buckets);

  if (std::string_view(method) == "caslt") {
    rec.profile([&]() -> std::optional<crcw::obs::ContentionTotals> {
      crcw::obs::MetricsRegistry local;
      const crcw::obs::ScopedRegistry scoped(local);
      (void)churn_caslt(threads, /*telemetry=*/true);
      const crcw::obs::ContentionTotals totals = local.totals();
      // The erase-cost claim: one committed CAS-LT tombstone per (key,
      // round). Fresh disjoint keys → every erase wins exactly once.
      const std::uint64_t expected = static_cast<std::uint64_t>(kCycles) * kChurn;
      if (totals.tombstones != expected) {
        throw std::runtime_error(
            "ext_churn: tombstone writes " + std::to_string(totals.tombstones) +
            " != erased (key, round) pairs " + std::to_string(expected));
      }
      return totals;
    });
  }
}

void churn_threads_caslt(benchmark::State& state) {
  bench_churn(state, "caslt", [](int t) { return churn_caslt(t); });
}

void churn_threads_mutex(benchmark::State& state) {
  bench_churn(state, "mutex", [](int t) { return churn_mutex(t); });
}

void churn_thread_args(benchmark::internal::Benchmark* b) {
  // The paper's thread sweep; smoke keeps {1, 2} so the contended path
  // still runs in CI.
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8, 16, 32}, 2)) {
    b->Arg(t);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(churn_threads_caslt)->Apply(churn_thread_args);
BENCHMARK(churn_threads_mutex)->Apply(churn_thread_args);

}  // namespace
