// Extension benchmark: the src/stream streaming dynamic-graph subsystem
// end to end — batched edge updates and incremental connectivity behind
// the serve layer — four sweeps:
//
//   burst    the HEADLINE: open-loop replay of a bursty Zipf edge/query
//            trace (stream::generate_trace) across burst-rate multipliers
//            at fixed clients. The p99 rows are the claim: query latency
//            UNDER the burst (EventEngine submits on the trace clock, so
//            bursts really queue) and the server's enqueue→commit p99.
//            max_lag_ns is the coordinated-omission check — rows where the
//            driver fell behind are not honest and the counter says so;
//   clients  the same trace across submitting client counts — admission
//            fan-in at fixed arrival rate;
//   churn    erase-heavy traffic (every other op kills a live edge): the
//            footprint story streamed — reclaim sweeps at batch close
//            (`reclaims` counter) plus deletion rebuilds (`rebuilds`), with
//            hook-CAS contention counters in the profile pass (the
//            stream-cc-hook ContentionSite);
//   wire     the full deployment: this process hosts the stream server, a
//            REAL external client process (examples/stream_loadgen,
//            fork/exec) audits connectivity over loopback TCP — rows time
//            the external run, exit-0 is the contract.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifdef CRCW_STREAM_LOADGEN_PATH
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_server.hpp"
#include "serve/serve_session.hpp"
#include "stream/event_engine.hpp"
#include "stream/stream_scheduler.hpp"
#include "stream/workload.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::default_threads;
using crcw::bench::report;
using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;
using crcw::stream::Event;
using StreamSession = crcw::serve::BasicServeSession<crcw::stream::StreamScheduler>;

constexpr std::uint32_t kVertices = 1 << 14;
constexpr std::uint64_t kEvents = 1 << 16;
constexpr std::uint64_t kWireOps = 1 << 15;

[[nodiscard]] std::uint64_t event_count() {
  return crcw::bench::smoke_mode() ? kEvents / 8 : kEvents;
}

/// Cached traces: generation (CDF + reservoir bookkeeping) is never timed.
const std::vector<Event>& cached_trace(double burst_mult, double erase_frac) {
  static std::map<std::pair<std::uint64_t, std::uint64_t>,
                  std::unique_ptr<std::vector<Event>>>
      cache;
  auto& slot = cache[{static_cast<std::uint64_t>(burst_mult * 100),
                      static_cast<std::uint64_t>(erase_frac * 100)}];
  if (!slot) {
    crcw::stream::WorkloadConfig cfg;
    cfg.vertices = kVertices;
    cfg.base_rate = 200e3;
    cfg.burst_rate = cfg.base_rate * burst_mult;
    cfg.insert_frac = 0.7 - erase_frac;
    cfg.erase_frac = erase_frac;
    cfg.same_component_frac = 0.2;
    cfg.seed = 42;
    slot = std::make_unique<std::vector<Event>>(
        crcw::stream::generate_trace(cfg, event_count()));
  }
  return *slot;
}

[[nodiscard]] crcw::serve::ServeConfig stream_config(int clients, bool counters) {
  crcw::serve::ServeConfig cfg;
  cfg.stream.vertices = kVertices;
  cfg.table.expected_keys = event_count() / 4 + 2;
  // A long-lived edge service reclaims eagerly: a 5% tombstone watermark
  // makes the churn sweep's reclaim counter actually move at bench scale
  // (the default 25% needs hours of churn against a table this size).
  cfg.table.reclaim_ratio = 0.05;
  cfg.batch.max_batch = 4096;
  cfg.batch.max_wait_us = 100;
  cfg.batch.exec_threads = 0;  // rounds run at ambient OpenMP width
  cfg.batch.lanes = clients;
  cfg.batch.lane_backlog = 4096;
  cfg.batch.latency_sample_shift = 6;
  cfg.batch.counters = counters;
  return cfg;
}

struct StreamRunStats {
  crcw::stream::ReplayStats replay;
  std::uint64_t p99_commit_ns = 0;
  std::uint64_t reclaims = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t edges = 0;
  std::uint64_t components = 0;
  std::uint64_t rounds = 0;
};

/// One full replay through a fresh session (pump running), harvesting the
/// latency and maintenance counters the sweeps report.
StreamRunStats stream_run(const std::vector<Event>& trace, int clients,
                          bool counters = false, std::uint64_t max_lag_us = 0) {
  StreamSession session(stream_config(clients, counters));
  session.start_pump();
  StreamRunStats out;
  out.replay = crcw::stream::EventEngine::replay(
      session, std::span<const Event>(trace), clients, max_lag_us);
  session.flush();
  session.stop_pump();
  out.p99_commit_ns = session.metrics().p99_enqueue_to_commit_ns();
  out.reclaims = session.backend().reclaims();
  out.rebuilds = session.backend().cc().rebuilds();
  out.edges = session.backend().graph().edges();
  out.components = session.backend().cc().components();
  out.rounds = session.backend().round();
  return out;
}

RowSpec spec(const char* sweep, int threads, std::uint64_t m) {
  return {.series = std::string("ext_stream/") + sweep + "/stream",
          .policy = "stream",
          .baseline = "",
          .threads = threads,
          .n = kEvents,
          .m = m};
}

/// Timing loop shared by the replay sweeps; emits the headline p99 rows
/// (query-under-burst and enqueue→commit, samples = per-repetition p99s).
void bench_replay(benchmark::State& state, const char* sweep,
                  const std::vector<Event>& trace, int clients, std::uint64_t m,
                  std::uint64_t max_lag_us = 0) {
  std::vector<double> p99_query, p99_commit;
  StreamRunStats stats;
  {
    RowRecorder rec(state, spec(sweep, clients, m));
    for (auto _ : state) {
      crcw::util::Timer timer;
      stats = stream_run(trace, clients, /*counters=*/false, max_lag_us);
      rec.record(timer.seconds());
      p99_query.push_back(static_cast<double>(stats.replay.query_p99_ns));
      p99_commit.push_back(static_cast<double>(stats.p99_commit_ns));
    }
    // The lag-bound assertion: with the EventEngine backpressure bound
    // armed, the engine must never sail past the bound silently — any
    // over-bound lag has to show up as throttled (closed-loop) admissions.
    if (max_lag_us != 0 && stats.replay.max_lag_ns > max_lag_us * 1000 &&
        stats.replay.throttled == 0) {
      state.SkipWithError("lag bound exceeded but backpressure never engaged");
    }
    state.counters["events_per_sec"] = stats.replay.events_per_sec();
    state.counters["edges_per_sec"] =
        static_cast<double>(stats.replay.inserts + stats.replay.erases) * 1e9 /
        static_cast<double>(stats.replay.duration_ns ? stats.replay.duration_ns : 1);
    state.counters["p99_query_us"] = static_cast<double>(stats.replay.query_p99_ns) / 1e3;
    state.counters["p99_commit_us"] = static_cast<double>(stats.p99_commit_ns) / 1e3;
    state.counters["max_lag_us"] = static_cast<double>(stats.replay.max_lag_ns) / 1e3;
    state.counters["throttled"] = static_cast<double>(stats.replay.throttled);
    state.counters["reclaims"] = static_cast<double>(stats.reclaims);
    state.counters["rebuilds"] = static_cast<double>(stats.rebuilds);
    state.counters["rounds"] = static_cast<double>(stats.rounds);
    state.counters["edges"] = static_cast<double>(stats.edges);
    // The hook-CAS counters ride the profile pass: batch.counters=true
    // attaches the stream-cc-hook and table sites, and the registry totals
    // land in this row's `counters` object.
    rec.profile([&] {
      crcw::obs::MetricsRegistry local;
      const crcw::obs::ScopedRegistry scoped(local);
      (void)stream_run(trace, clients, /*counters=*/true, max_lag_us);
      return std::optional(local.totals());
    });
  }
  report().add_row({std::string("ext_stream/p99-query/") + sweep, "stream", "",
                    clients, kEvents, m, std::move(p99_query), {}});
  report().add_row({std::string("ext_stream/p99-enqueue-commit/") + sweep, "stream",
                    "", clients, kEvents, m, std::move(p99_commit), {}});
}

// -- burst: burst-rate multiplier sweep at fixed clients (the headline) ------

void burst_stream(benchmark::State& s) {
  const auto mult = static_cast<double>(s.range(0));
  bench_replay(s, "burst", cached_trace(mult, 0.2), default_threads(),
               static_cast<std::uint64_t>(mult));
}

// -- clients: submitting-thread sweep at fixed burst -------------------------

void clients_stream(benchmark::State& s) {
  const int clients = static_cast<int>(s.range(0));
  bench_replay(s, "clients", cached_trace(4.0, 0.2), clients, 4);
}

// -- backpressure: lag-bounded replay (closed-loop fallback under burst) -----

void backpressure_stream(benchmark::State& s) {
  // The heaviest burst multiplier with the EventEngine lag bound armed at
  // 1ms: past the bound, admission degrades to closed loop (the `throttled`
  // counter) instead of queueing unboundedly. bench_replay asserts the
  // invariant — over-bound lag without engagement fails the row.
  bench_replay(s, "backpressure", cached_trace(16.0, 0.2), default_threads(), 16,
               /*max_lag_us=*/1000);
}

// -- churn: erase-heavy traffic (reclaim + rebuild pressure) -----------------

void churn_stream(benchmark::State& s) {
  // insert_frac 0.35 / erase_frac 0.35: half the writes kill live edges,
  // so tombstones and deletion rebuilds dominate the maintenance path.
  bench_replay(s, "churn", cached_trace(4.0, 0.35), default_threads(), 35);
}

// -- wire: external client process over loopback TCP -------------------------

#ifdef CRCW_STREAM_LOADGEN_PATH
/// fork/exec the stream load generator against `port`; true iff it exits 0
/// (it self-audits completion and per-block connectivity).
bool spawn_stream_loadgen(std::uint16_t port, std::uint64_t ops, int threads) {
  const std::string port_s = std::to_string(port);
  const std::string ops_s = std::to_string(ops);
  const std::string threads_s = std::to_string(threads);
  const std::string vertices_s = std::to_string(kVertices);
  const pid_t pid = fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // The child's summary line would interleave with the bench table; its
    // exit code carries the verdict, stderr stays for diagnostics.
    if (FILE* devnull = std::fopen("/dev/null", "w")) {
      dup2(fileno(devnull), STDOUT_FILENO);
    }
    const char* argv[] = {CRCW_STREAM_LOADGEN_PATH, "--port", port_s.c_str(),
                          "--ops", ops_s.c_str(), "--threads", threads_s.c_str(),
                          "--vertices", vertices_s.c_str(), nullptr};
    execv(CRCW_STREAM_LOADGEN_PATH, const_cast<char* const*>(argv));
    _exit(127);  // exec failed
  }
  int status = 0;
  if (waitpid(pid, &status, 0) != pid) return false;
  return WIFEXITED(status) && WEXITSTATUS(status) == 0;
}
#endif

void wire_stream(benchmark::State& s) {
#ifndef CRCW_STREAM_LOADGEN_PATH
  s.SkipWithError("examples not built: no stream_loadgen to spawn");
#else
  const int clients = static_cast<int>(s.range(0));
  const std::uint64_t ops = crcw::bench::smoke_mode() ? kWireOps / 8 : kWireOps;
  std::vector<double> p99_commit;
  std::uint64_t rounds = 0, rebuilds = 0;
  {
    RowRecorder rec(s, spec("wire", clients, static_cast<std::uint64_t>(clients)));
    for (auto _ : s) {
      StreamSession session(stream_config(clients, false));
      session.start_pump();
      crcw::serve::BasicWireServer<crcw::stream::StreamScheduler> server(
          session, crcw::serve::WireConfig{});  // port 0 → ephemeral
      server.start();
      crcw::util::Timer timer;
      const bool ok = spawn_stream_loadgen(server.port(), ops, clients);
      const double secs = timer.seconds();
      server.stop();
      session.stop_pump();
      if (!ok) {
        s.SkipWithError("stream_loadgen failed (completion or connectivity audit)");
        return;
      }
      rec.record(secs);
      p99_commit.push_back(
          static_cast<double>(session.metrics().p99_enqueue_to_commit_ns()));
      rounds = session.backend().round();
      rebuilds = session.backend().cc().rebuilds();
    }
    s.counters["rounds"] = static_cast<double>(rounds);
    s.counters["rebuilds"] = static_cast<double>(rebuilds);
    if (!p99_commit.empty()) {
      s.counters["p99_commit_us"] = p99_commit.back() / 1e3;
    }
  }
  report().add_row({"ext_stream/p99-enqueue-commit/wire", "stream", "", clients,
                    ops, static_cast<std::uint64_t>(clients), std::move(p99_commit),
                    {}});
#endif
}

// -- registration ------------------------------------------------------------

void burst_args(benchmark::internal::Benchmark* b) {
  // Smoke keeps {1, 4}: the no-burst floor and one real burst so the
  // committed baseline has a burst point to regress against.
  for (const std::int64_t m : crcw::bench::sweep_points<std::int64_t>({1, 4, 16}, 2)) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void client_args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void churn_args(benchmark::internal::Benchmark* b) {
  b->Arg(0)->UseManualTime()->Unit(benchmark::kMillisecond);
}

void wire_args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points({1, 2, 4}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(burst_stream)->Apply(burst_args);
BENCHMARK(clients_stream)->Apply(client_args);
BENCHMARK(backpressure_stream)->Apply(churn_args);
BENCHMARK(churn_stream)->Apply(churn_args);
BENCHMARK(wire_stream)->Apply(wire_args);

}  // namespace
