// Figure 10: effect of the number of graph edges on Connected Components
// execution time. Paper: 100K vertices, 32 threads; CAS-LT vs prefix-sum
// max speedup 4.51x, geomean 4x, the gap GROWING with edge count because
// more edges mean more hook collisions and the prefix-sum method serialises
// every collision. No naive series exists (unsafe for CC, §7.2).
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;
using crcw::bench::default_threads;

constexpr std::uint64_t kVertices = 50'000;

void fig10(benchmark::State& state, const std::string& method) {
  const auto edges = static_cast<std::uint64_t>(state.range(0));
  const auto& g = cached_graph(kVertices, edges);
  const crcw::algo::CcOptions opts{.threads = default_threads()};
  // No naive series exists for CC; the paper's headline ratio is CAS-LT vs
  // the prefix-sum (gatekeeper) method, so that is the baseline here.
  crcw::bench::RowRecorder rec(state, {.series = "fig10/" + method,
                                       .policy = method,
                                       .baseline = "gatekeeper",
                                       .threads = default_threads(),
                                       .n = kVertices,
                                       .m = edges});

  std::uint64_t components = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_cc(method, g, opts);
    rec.record(timer.seconds());
    components = r.components;
  }
  rec.profile([&] { return crcw::algo::profile_cc(method, g, opts); });
  benchmark::DoNotOptimize(components);
  state.counters["vertices"] = static_cast<double>(kVertices);
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["threads"] = default_threads();
  state.counters["components"] = static_cast<double>(components);
}

void edge_sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t m :
       crcw::bench::sweep_points<std::int64_t>({125'000, 250'000, 500'000, 1'000'000})) {
    b->Arg(m);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(fig10, gatekeeper, "gatekeeper")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig10, gatekeeper_sparse, "gatekeeper-sparse")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig10, gatekeeper_skip, "gatekeeper-skip")->Apply(edge_sweep);
BENCHMARK_CAPTURE(fig10, caslt, "caslt")->Apply(edge_sweep);

}  // namespace
