// Figure 5: effect of list size on the execution time of the constant-time
// Maximum algorithm, one series per CW method (naive / prefix-sum aka
// gatekeeper / CAS-LT), fixed thread count.
//
// Paper result: CAS-LT fastest everywhere, gap grows with N; max 2.5x and
// geomean 1.98x vs naive; gatekeeper 1.72x SLOWER than naive (geomean
// 0.58x) due to serialised atomic prefix sums.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_list;
using crcw::bench::default_threads;

void fig5(benchmark::State& state, const std::string& method) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& list = cached_list(n);
  const crcw::algo::MaxOptions opts{.threads = default_threads()};
  crcw::bench::RowRecorder rec(state, {.series = "fig5/" + method,
                                       .policy = method,
                                       .baseline = "naive",
                                       .threads = default_threads(),
                                       .n = n});

  std::uint64_t result = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    result = crcw::algo::run_max(method, list, opts);
    rec.record(timer.seconds());
  }
  rec.profile([&] { return crcw::algo::profile_max(method, list, opts); });
  benchmark::DoNotOptimize(result);
  state.counters["n"] = static_cast<double>(n);
  state.counters["threads"] = default_threads();
  state.counters["comparisons"] = static_cast<double>(n) * static_cast<double>(n);
}

void size_sweep(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : crcw::bench::sweep_points<std::int64_t>({1024, 2048, 4096, 8192})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK_CAPTURE(fig5, naive, "naive")->Apply(size_sweep);
BENCHMARK_CAPTURE(fig5, gatekeeper, "gatekeeper")->Apply(size_sweep);
BENCHMARK_CAPTURE(fig5, gatekeeper_skip, "gatekeeper-skip")->Apply(size_sweep);
BENCHMARK_CAPTURE(fig5, caslt, "caslt")->Apply(size_sweep);

}  // namespace
