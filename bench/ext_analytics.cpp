// Extension benchmark: the analytics kernels built on the CW substrate —
// matching (packed priority cells), k-core (combining decrements),
// Borůvka MSF (packed priority cells), Tarjan–Vishkin biconnectivity
// (arbitrary-CW hooks + Euler tour + RMQ) — across graph sizes. Tracks
// how the composed algorithms scale, complementing the per-primitive
// micro benches.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <set>

#include "algorithms/bicc.hpp"
#include "algorithms/boruvka.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/matching.hpp"
#include "bench_common.hpp"
#include "graph/builder.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;
using crcw::bench::default_threads;
using crcw::graph::EdgeList;
using crcw::graph::vertex_t;

/// Connected simple graphs for bicc (tree + distinct extras), cached.
const EdgeList& cached_connected_simple(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<EdgeList>> cache;
  auto& slot = cache[n];
  if (!slot) {
    auto edges = crcw::graph::random_tree(n, 42);
    std::set<std::uint64_t> used;
    for (const auto& e : edges) {
      used.insert((static_cast<std::uint64_t>(std::min(e.u, e.v)) << 32) |
                  std::max(e.u, e.v));
    }
    crcw::util::Xoshiro256 rng(43);
    std::uint64_t added = 0;
    while (added < 2 * n) {
      const auto u = static_cast<vertex_t>(rng.bounded(n));
      auto v = static_cast<vertex_t>(rng.bounded(n - 1));
      if (v >= u) ++v;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
      if (used.insert(key).second) {
        edges.push_back({u, v});
        ++added;
      }
    }
    slot = std::make_unique<EdgeList>(std::move(edges));
  }
  return *slot;
}

crcw::bench::RowSpec spec(const char* kernel, std::uint64_t n, std::uint64_t m) {
  return {.series = std::string("ext_analytics/") + kernel,
          .policy = kernel,
          .baseline = "",  // the kernels solve different problems — no ratio
          .threads = default_threads(),
          .n = n,
          .m = m};
}

void bench_matching(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const EdgeList edges = crcw::graph::gnm(n, 4 * n, 42);
  crcw::bench::RowRecorder rec(state, spec("matching", n, edges.size()));
  std::size_t matched = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r =
        crcw::algo::maximal_matching(n, edges, {.threads = default_threads()});
    rec.record(timer.seconds());
    matched = r.edges.size();
  }
  state.counters["matched"] = static_cast<double>(matched);
}

void bench_kcore(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& g = cached_graph(n, 4 * n);
  crcw::bench::RowRecorder rec(state, spec("kcore", n, g.num_edges()));
  std::uint32_t degeneracy = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::kcore(g, {.threads = default_threads()});
    rec.record(timer.seconds());
    degeneracy = r.degeneracy;
  }
  state.counters["degeneracy"] = degeneracy;
}

void bench_boruvka(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto edges = crcw::algo::random_weighted_edges(n, 4 * n, 100000, 42);
  crcw::bench::RowRecorder rec(state, spec("boruvka", n, edges.size()));
  std::uint64_t weight = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::boruvka_msf(n, edges, {.threads = default_threads()});
    rec.record(timer.seconds());
    weight = r.total_weight;
  }
  benchmark::DoNotOptimize(weight);
}

void bench_bicc(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& edges = cached_connected_simple(n);
  crcw::bench::RowRecorder rec(state, spec("bicc", n, edges.size()));
  std::uint64_t components = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r =
        crcw::algo::biconnected_components(n, edges, {.threads = default_threads()});
    rec.record(timer.seconds());
    components = r.components;
  }
  state.counters["bcc"] = static_cast<double>(components);
}

void args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n :
       crcw::bench::sweep_points<std::int64_t>({10'000, 50'000, 200'000})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(bench_matching)->Apply(args);
BENCHMARK(bench_kcore)->Apply(args);
BENCHMARK(bench_boruvka)->Apply(args);
BENCHMARK(bench_bicc)->Apply(args);

}  // namespace
