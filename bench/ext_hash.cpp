// Extension benchmark: the ds/ hash tables against lock-based and serial
// baselines, three sweeps:
//
//   insert   insert-heavy build (≈50% duplicate keys) — the bucket-claim
//            arbitration race, across sizes and across threads;
//   lookup   read-heavy phase over a prebuilt table (≈50% hit rate) —
//            wait-free contains() vs lock-per-lookup;
//   storm    resize-storm dedup: the table starts 64 keys wide and must
//            cooperatively grow to ~n/2 — migration cost end to end
//            (std::unordered rehashes under its own policy; same job).
//
// Baseline policy per sweep is "mutex" (std::unordered_* behind one lock),
// the honest lower bar a CW-arbitrated table must clear; "unordered" rows
// are the serial no-lock floor for scale. Rows land in
// BENCH_ext_hash.json; the caslt-vs-mutex insert gap is the committed
// smoke-baseline claim bench_compare.py guards.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algorithms/dedup.hpp"
#include "algorithms/dispatch.hpp"
#include "bench_common.hpp"
#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::default_threads;
using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;

/// Random keys with ~50% duplication (n draws over n/2 values), cached per
/// (n, seed) — generation is never timed.
const std::vector<std::uint64_t>& cached_keys(std::uint64_t n, std::uint64_t seed = 42) {
  static std::map<std::pair<std::uint64_t, std::uint64_t>,
                  std::unique_ptr<std::vector<std::uint64_t>>>
      cache;
  auto& slot = cache[{n, seed}];
  if (!slot) {
    crcw::util::Xoshiro256 rng(seed);
    slot = std::make_unique<std::vector<std::uint64_t>>(n);
    for (auto& k : *slot) k = rng.bounded(n / 2 + 1);
  }
  return *slot;
}

RowSpec spec(const char* sweep, const char* method, int threads, std::uint64_t n) {
  return {.series = std::string("ext_hash/") + sweep + "/" + method,
          .policy = method,
          .baseline = "mutex",
          .threads = threads,
          .n = n,
          .m = 0};
}

// -- insert-heavy -----------------------------------------------------------

std::uint64_t insert_caslt(const std::vector<std::uint64_t>& keys, int threads,
                           bool telemetry = false) {
  crcw::ds::HashConfig cfg;
  cfg.telemetry = telemetry;
  cfg.site_name = "ext-hash-insert";
  crcw::ds::ConcurrentHashSet<> set(keys.size(), cfg);
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    (void)set.insert(keys[static_cast<std::size_t>(i)]);
  }
  set.flush_round();
  return set.size();
}

std::uint64_t insert_chained(const std::vector<std::uint64_t>& keys, int threads) {
  crcw::ds::ChainedHashSet<> set(keys.size(), threads);
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      (void)set.insert(lane, keys[static_cast<std::size_t>(i)]);
    }
  }
  return set.size();
}

std::uint64_t insert_mutex(const std::vector<std::uint64_t>& keys, int threads) {
  std::unordered_set<std::uint64_t> set;
  set.reserve(keys.size());
  std::mutex mu;
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    const std::lock_guard<std::mutex> lock(mu);
    set.insert(keys[static_cast<std::size_t>(i)]);
  }
  return set.size();
}

std::uint64_t insert_unordered(const std::vector<std::uint64_t>& keys) {
  std::unordered_set<std::uint64_t> set;
  set.reserve(keys.size());
  for (const std::uint64_t k : keys) set.insert(k);
  return set.size();
}

template <typename Run>
void bench_insert(benchmark::State& state, const char* sweep, const char* method,
                  std::uint64_t n, int threads, Run&& run) {
  const auto& keys = cached_keys(n);
  RowRecorder rec(state, spec(sweep, method, threads, n));
  std::uint64_t distinct = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    distinct = run(keys, threads);
    rec.record(timer.seconds());
  }
  state.counters["distinct"] = static_cast<double>(distinct);
  if (std::string_view(method) == "caslt") {
    rec.profile([&] {
      crcw::obs::MetricsRegistry local;
      const crcw::obs::ScopedRegistry scoped(local);
      (void)insert_caslt(keys, threads, /*telemetry=*/true);
      return std::optional(local.totals());
    });
  }
}

void insert_size_caslt(benchmark::State& s) {
  bench_insert(s, "insert", "caslt", static_cast<std::uint64_t>(s.range(0)),
               default_threads(), [](const auto& k, int t) { return insert_caslt(k, t); });
}
void insert_size_chained(benchmark::State& s) {
  bench_insert(s, "insert", "chained", static_cast<std::uint64_t>(s.range(0)),
               default_threads(), [](const auto& k, int t) { return insert_chained(k, t); });
}
void insert_size_mutex(benchmark::State& s) {
  bench_insert(s, "insert", "mutex", static_cast<std::uint64_t>(s.range(0)),
               default_threads(), [](const auto& k, int t) { return insert_mutex(k, t); });
}
void insert_size_unordered(benchmark::State& s) {
  bench_insert(s, "insert", "unordered", static_cast<std::uint64_t>(s.range(0)), 1,
               [](const auto& k, int) { return insert_unordered(k); });
}

// Thread sweep at a fixed size: the contention axis.
constexpr std::uint64_t kThreadSweepKeys = 1 << 19;

void insert_threads_caslt(benchmark::State& s) {
  bench_insert(s, "insert-threads", "caslt", kThreadSweepKeys,
               static_cast<int>(s.range(0)),
               [](const auto& k, int t) { return insert_caslt(k, t); });
}
void insert_threads_chained(benchmark::State& s) {
  bench_insert(s, "insert-threads", "chained", kThreadSweepKeys,
               static_cast<int>(s.range(0)),
               [](const auto& k, int t) { return insert_chained(k, t); });
}
void insert_threads_mutex(benchmark::State& s) {
  bench_insert(s, "insert-threads", "mutex", kThreadSweepKeys,
               static_cast<int>(s.range(0)),
               [](const auto& k, int t) { return insert_mutex(k, t); });
}

// -- read-heavy -------------------------------------------------------------

/// Lookup mix: half the probes hit (drawn from the table's key range), half
/// miss (shifted beyond it).
const std::vector<std::uint64_t>& cached_probes(std::uint64_t n) {
  static std::map<std::uint64_t, std::unique_ptr<std::vector<std::uint64_t>>> cache;
  auto& slot = cache[n];
  if (!slot) {
    crcw::util::Xoshiro256 rng(137);
    slot = std::make_unique<std::vector<std::uint64_t>>(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t k = rng.bounded(n / 2 + 1);
      (*slot)[i] = (i % 2 == 0) ? k : k + n;  // alternate hit / miss
    }
  }
  return *slot;
}

template <typename Lookup>
std::uint64_t count_hits(const std::vector<std::uint64_t>& probes, int threads,
                         Lookup&& lookup) {
  const auto n = static_cast<std::int64_t>(probes.size());
  std::uint64_t hits = 0;
#pragma omp parallel for num_threads(threads) schedule(static) reduction(+ : hits)
  for (std::int64_t i = 0; i < n; ++i) {
    if (lookup(probes[static_cast<std::size_t>(i)])) ++hits;
  }
  return hits;
}

template <typename Build>
void bench_lookup(benchmark::State& state, const char* method, Build&& build) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const int threads = default_threads();
  const auto& keys = cached_keys(n);
  const auto& probes = cached_probes(n);
  auto lookup = build(keys);  // untimed table build; returns the probe fn
  RowRecorder rec(state, spec("lookup", method, threads, n));
  std::uint64_t hits = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    hits = count_hits(probes, threads, lookup);
    rec.record(timer.seconds());
  }
  state.counters["hits"] = static_cast<double>(hits);
}

void lookup_caslt(benchmark::State& s) {
  bench_lookup(s, "caslt", [](const auto& keys) {
    auto set = std::make_shared<crcw::ds::ConcurrentHashSet<>>(keys.size());
    for (const std::uint64_t k : keys) (void)set->insert(k);
    return [set](std::uint64_t k) { return set->contains(k); };
  });
}
void lookup_chained(benchmark::State& s) {
  bench_lookup(s, "chained", [](const auto& keys) {
    auto set = std::make_shared<crcw::ds::ChainedHashSet<>>(keys.size(), 1);
    for (const std::uint64_t k : keys) (void)set->insert(0, k);
    return [set](std::uint64_t k) { return set->contains(k); };
  });
}
void lookup_mutex(benchmark::State& s) {
  bench_lookup(s, "mutex", [](const auto& keys) {
    auto set = std::make_shared<std::unordered_set<std::uint64_t>>(keys.begin(),
                                                                   keys.end());
    auto mu = std::make_shared<std::mutex>();
    return [set, mu](std::uint64_t k) {
      const std::lock_guard<std::mutex> lock(*mu);
      return set->count(k) != 0;
    };
  });
}
void lookup_unordered(benchmark::State& s) {
  // Serial floor: same std::unordered_set, no lock, threads pinned to 1 by
  // the lookup loop's reduction running single-threaded.
  const auto n = static_cast<std::uint64_t>(s.range(0));
  const auto& keys = cached_keys(n);
  const auto& probes = cached_probes(n);
  const std::unordered_set<std::uint64_t> set(keys.begin(), keys.end());
  RowRecorder rec(s, spec("lookup", "unordered", 1, n));
  std::uint64_t hits = 0;
  for (auto _ : s) {
    crcw::util::Timer timer;
    hits = count_hits(probes, 1, [&](std::uint64_t k) { return set.count(k) != 0; });
    rec.record(timer.seconds());
  }
  s.counters["hits"] = static_cast<double>(hits);
}

// -- resize storm ------------------------------------------------------------

void storm_caslt(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const int threads = default_threads();
  const auto& keys = cached_keys(n);
  crcw::algo::DedupOptions opts;
  opts.threads = threads;
  opts.initial_capacity = 64;  // forces the full cooperative-grow cascade
  RowRecorder rec(state, spec("storm", "caslt", threads, n));
  crcw::algo::DedupResult r;
  for (auto _ : state) {
    crcw::util::Timer timer;
    r = crcw::algo::dedup_caslt(keys, opts);
    rec.record(timer.seconds());
  }
  state.counters["distinct"] = static_cast<double>(r.distinct);
  state.counters["grows"] = static_cast<double>(r.grows);
  rec.profile([&] { return crcw::algo::profile_dedup("caslt", keys, opts); });
}

void storm_mutex(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const int threads = default_threads();
  const auto& keys = cached_keys(n);
  RowRecorder rec(state, spec("storm", "mutex", threads, n));
  std::uint64_t distinct = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    // No reserve: std::unordered_set rehashes on its own schedule — the
    // same grow-while-building job the cooperative protocol does.
    std::unordered_set<std::uint64_t> set;
    std::mutex mu;
    const auto count = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      const std::lock_guard<std::mutex> lock(mu);
      set.insert(keys[static_cast<std::size_t>(i)]);
    }
    rec.record(timer.seconds());
    distinct = set.size();
  }
  state.counters["distinct"] = static_cast<double>(distinct);
}

// Load-factor axis of the storm: same resize-storm dedup at a fixed size,
// sweeping HashConfig::max_load to locate the probe-length knee — denser
// tables grow less (fewer migrations) but probe longer; the profile pass's
// attempts/wins ratio is the mean probe length that exposes the knee.
// m carries max_load as a percentage (the row key has no float axis).
void storm_maxload_caslt(benchmark::State& state) {
  constexpr std::uint64_t kStormKeys = 1 << 18;
  const auto pct = static_cast<std::uint64_t>(state.range(0));
  const int threads = default_threads();
  const auto& keys = cached_keys(kStormKeys);
  crcw::algo::DedupOptions opts;
  opts.threads = threads;
  opts.initial_capacity = 64;
  opts.max_load = static_cast<double>(pct) / 100.0;
  RowRecorder rec(state, {.series = "ext_hash/storm-maxload/caslt",
                          .policy = "caslt",
                          .baseline = "",
                          .threads = threads,
                          .n = kStormKeys,
                          .m = pct});
  crcw::algo::DedupResult r;
  for (auto _ : state) {
    crcw::util::Timer timer;
    r = crcw::algo::dedup_caslt(keys, opts);
    rec.record(timer.seconds());
  }
  state.counters["distinct"] = static_cast<double>(r.distinct);
  state.counters["grows"] = static_cast<double>(r.grows);
  rec.profile([&] { return crcw::algo::profile_dedup("caslt", keys, opts); });
}

// Backoff axis of the storm: the chained set's head-CAS retry loop with the
// adaptive ceiling (HashConfig::adaptive_backoff) A/B'd against the fixed
// default. The table is deliberately undersized (~64 keys per chain head)
// so concurrent pushes really fight over hot heads, and the keys go in as
// round-sized slices with flush_round between them — the cadence at which
// AdaptiveBackoffCeiling re-samples the ContentionSite failure rate. The
// `backoff_ceiling` counter shows where the ceiling landed after the storm.
std::uint64_t insert_chained_backoff(const std::vector<std::uint64_t>& keys,
                                     int threads, bool adaptive,
                                     std::uint32_t* ceiling_out = nullptr) {
  crcw::ds::HashConfig cfg;
  cfg.telemetry = true;
  cfg.site_name = "ext-hash-backoff";
  cfg.adaptive_backoff = adaptive;
  crcw::ds::ChainedHashSet<> set(keys.size() / 64 + 1, threads, cfg);
  constexpr std::uint64_t kSlices = 8;
  const std::uint64_t per = keys.size() / kSlices;
  for (std::uint64_t slice = 0; slice < kSlices; ++slice) {
    const auto begin = static_cast<std::int64_t>(slice * per);
    const auto end = static_cast<std::int64_t>(
        slice + 1 == kSlices ? keys.size() : (slice + 1) * per);
#pragma omp parallel num_threads(threads)
    {
      const int lane = omp_get_thread_num();
#pragma omp for schedule(static)
      for (std::int64_t i = begin; i < end; ++i) {
        (void)set.insert(lane, keys[static_cast<std::size_t>(i)]);
      }
    }
    set.flush_round();
  }
  if (ceiling_out != nullptr) *ceiling_out = set.backoff_ceiling();
  return set.size();
}

void bench_storm_backoff(benchmark::State& state, const char* method, bool adaptive) {
  const int threads = static_cast<int>(state.range(0));
  const auto& keys = cached_keys(kThreadSweepKeys);
  crcw::obs::MetricsRegistry local;  // keeps the A/B site out of global totals
  const crcw::obs::ScopedRegistry scoped(local);
  RowRecorder rec(state, {.series = std::string("ext_hash/storm-backoff/") + method,
                          .policy = method,
                          .baseline = adaptive ? "fixed" : "",
                          .threads = threads,
                          .n = kThreadSweepKeys,
                          .m = 0});
  std::uint64_t distinct = 0;
  std::uint32_t ceiling = 1024;  // fixed rows pin the Backoff default
  for (auto _ : state) {
    crcw::util::Timer timer;
    distinct = insert_chained_backoff(keys, threads, adaptive,
                                      adaptive ? &ceiling : nullptr);
    rec.record(timer.seconds());
  }
  state.counters["distinct"] = static_cast<double>(distinct);
  state.counters["backoff_ceiling"] = static_cast<double>(ceiling);
  rec.profile([&] {
    crcw::obs::MetricsRegistry prof;
    const crcw::obs::ScopedRegistry prof_scope(prof);
    (void)insert_chained_backoff(keys, threads, adaptive);
    return std::optional(prof.totals());
  });
}

void storm_backoff_adaptive(benchmark::State& s) {
  bench_storm_backoff(s, "adaptive", true);
}
void storm_backoff_fixed(benchmark::State& s) { bench_storm_backoff(s, "fixed", false); }

void storm_sort(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto& keys = cached_keys(n);
  RowRecorder rec(state, spec("storm", "sort", 1, n));
  crcw::algo::DedupResult r;
  for (auto _ : state) {
    crcw::util::Timer timer;
    r = crcw::algo::dedup_sort(keys);
    rec.record(timer.seconds());
  }
  state.counters["distinct"] = static_cast<double>(r.distinct);
}

// -- registration ------------------------------------------------------------

void size_args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n :
       crcw::bench::sweep_points<std::int64_t>({1 << 16, 1 << 18, 1 << 20})) {
    b->Arg(n);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void thread_args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points({1, 2, 4, 8, 16}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(insert_size_caslt)->Apply(size_args);
BENCHMARK(insert_size_chained)->Apply(size_args);
BENCHMARK(insert_size_mutex)->Apply(size_args);
BENCHMARK(insert_size_unordered)->Apply(size_args);
BENCHMARK(insert_threads_caslt)->Apply(thread_args);
BENCHMARK(insert_threads_chained)->Apply(thread_args);
BENCHMARK(insert_threads_mutex)->Apply(thread_args);
BENCHMARK(lookup_caslt)->Apply(size_args);
BENCHMARK(lookup_chained)->Apply(size_args);
BENCHMARK(lookup_mutex)->Apply(size_args);
BENCHMARK(lookup_unordered)->Apply(size_args);
void maxload_args(benchmark::internal::Benchmark* b) {
  // Percentages; smoke keeps 30 and 50 so the sparse and default shapes
  // both stay exercised in CI.
  for (const std::int64_t pct :
       crcw::bench::sweep_points<std::int64_t>({30, 50, 70, 85, 95}, 2)) {
    b->Arg(pct);
  }
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

BENCHMARK(storm_caslt)->Apply(size_args);
BENCHMARK(storm_mutex)->Apply(size_args);
BENCHMARK(storm_maxload_caslt)->Apply(maxload_args);
BENCHMARK(storm_backoff_adaptive)->Apply(thread_args);
BENCHMARK(storm_backoff_fixed)->Apply(thread_args);
BENCHMARK(storm_sort)->Apply(size_args);

}  // namespace
