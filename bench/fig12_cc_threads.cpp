// Figure 12: effect of the number of execution threads on Connected
// Components execution time (paper: 100K vertices, 30M edges; CAS-LT
// superior at every thread count). See the Figure 6 oversubscription note.
#include "bench_common.hpp"

#include "algorithms/dispatch.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::cached_graph;

constexpr std::uint64_t kVertices = 50'000;
constexpr std::uint64_t kEdges = 500'000;

void fig12(benchmark::State& state, const std::string& method) {
  const int threads = static_cast<int>(state.range(0));
  const auto& g = cached_graph(kVertices, kEdges);
  const crcw::algo::CcOptions opts{.threads = threads};
  crcw::bench::RowRecorder rec(state, {.series = "fig12/" + method,
                                       .policy = method,
                                       .baseline = "gatekeeper",
                                       .threads = threads,
                                       .n = kVertices,
                                       .m = kEdges});

  std::uint64_t components = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    const auto r = crcw::algo::run_cc(method, g, opts);
    rec.record(timer.seconds());
    components = r.components;
  }
  rec.profile([&] { return crcw::algo::profile_cc(method, g, opts); });
  benchmark::DoNotOptimize(components);
  state.counters["vertices"] = static_cast<double>(kVertices);
  state.counters["edges"] = static_cast<double>(kEdges);
  state.counters["threads"] = threads;
}

BENCHMARK_CAPTURE(fig12, gatekeeper, "gatekeeper")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig12, gatekeeper_sparse, "gatekeeper-sparse")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig12, gatekeeper_skip, "gatekeeper-skip")->Apply(crcw::bench::thread_sweep);
BENCHMARK_CAPTURE(fig12, caslt, "caslt")->Apply(crcw::bench::thread_sweep);

}  // namespace
