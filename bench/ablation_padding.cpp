// Ablation A1: tag padding (DESIGN.md §5).
//
// One RoundTag per concurrent-write target — but packed tags share cache
// lines (8 per line), so a CAS on tag i invalidates the line under reads of
// tags i±7 even when the *logical* targets never collide. Padding trades
// 8x memory for isolation. The paper's kernels pack (Fig 3 uses plain
// unsigned arrays); this bench quantifies what that choice costs under
// neighbour contention and what it saves in footprint-bound sweeps.
//
// Two access patterns per layout:
//   spread  — thread t hammers tags [t*K, (t+1)*K): disjoint tags, so ONLY
//             false sharing differentiates the layouts;
//   shared  — all threads hammer the same K tags: true sharing dominates
//             and padding shouldn't matter much.
#include <omp.h>

#include <cstdint>
#include <string>

#include "bench_common.hpp"
#include "core/arbiter.hpp"
#include "core/instrumented.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace {

using crcw::CasLtPolicy;
using crcw::InstrumentedPolicy;
using crcw::round_t;
using crcw::TagLayout;
using crcw::WriteArbiter;

constexpr std::size_t kTagsPerThread = 8;  // within one cache line when packed
constexpr int kRounds = 2000;

const char* layout_name(TagLayout layout) {
  return layout == TagLayout::kPacked ? "packed" : "padded";
}

/// Untimed instrumented replay of one iteration of `body(arbiter)`; the
/// counters land in a registry local to this call.
template <TagLayout Layout, typename Body>
crcw::obs::ContentionTotals profile_layout(std::size_t tags, Body&& body) {
  crcw::obs::MetricsRegistry local;
  const crcw::obs::ScopedRegistry scoped(local);
  {
    WriteArbiter<InstrumentedPolicy<CasLtPolicy>, Layout> arbiter(tags);
    body(arbiter);
  }
  return local.totals();
}

template <TagLayout Layout>
void spread_pattern(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto tags = static_cast<std::size_t>(threads) * kTagsPerThread;
  WriteArbiter<CasLtPolicy, Layout> arbiter(tags);
  const std::string variant = std::string("spread-") + layout_name(Layout);
  crcw::bench::RowRecorder rec(state, {.series = "ablation_padding/" + variant,
                                       .policy = variant,
                                       .baseline = "spread-packed",
                                       .threads = threads,
                                       .n = tags,
                                       .m = kRounds});
  const auto body = [threads](auto& arb) {
    std::uint64_t wins = 0;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      const auto base = static_cast<std::size_t>(omp_get_thread_num()) * kTagsPerThread;
      for (round_t r = 1; r <= kRounds; ++r) {
        for (std::size_t k = 0; k < kTagsPerThread; ++k) {
          if (arb.acquire_at(base + k, r)) ++wins;
        }
      }
    }
    return wins;
  };
  std::uint64_t wins = 0;
  for (auto _ : state) {
    arbiter.reset_all();
    crcw::util::Timer timer;
    wins += body(arbiter);
    rec.record(timer.seconds());
  }
  rec.profile([&] { return profile_layout<Layout>(tags, body); });
  benchmark::DoNotOptimize(wins);
  state.counters["tags"] = static_cast<double>(arbiter.size());
}

template <TagLayout Layout>
void shared_pattern(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  WriteArbiter<CasLtPolicy, Layout> arbiter(kTagsPerThread);
  const std::string variant = std::string("shared-") + layout_name(Layout);
  crcw::bench::RowRecorder rec(state, {.series = "ablation_padding/" + variant,
                                       .policy = variant,
                                       .baseline = "shared-packed",
                                       .threads = threads,
                                       .n = kTagsPerThread,
                                       .m = kRounds});
  const auto body = [threads](auto& arb) {
    std::uint64_t wins = 0;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (round_t r = 1; r <= kRounds; ++r) {
        for (std::size_t k = 0; k < kTagsPerThread; ++k) {
          if (arb.acquire_at(k, r)) ++wins;
        }
#pragma omp barrier
      }
    }
    return wins;
  };
  std::uint64_t wins = 0;
  for (auto _ : state) {
    arbiter.reset_all();
    crcw::util::Timer timer;
    wins += body(arbiter);
    rec.record(timer.seconds());
  }
  rec.profile([&] { return profile_layout<Layout>(kTagsPerThread, body); });
  benchmark::DoNotOptimize(wins);
}

void args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points<int>({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void spread_packed(benchmark::State& s) { spread_pattern<TagLayout::kPacked>(s); }
void spread_padded(benchmark::State& s) { spread_pattern<TagLayout::kPadded>(s); }
void shared_packed(benchmark::State& s) { shared_pattern<TagLayout::kPacked>(s); }
void shared_padded(benchmark::State& s) { shared_pattern<TagLayout::kPadded>(s); }

BENCHMARK(spread_packed)->Apply(args);
BENCHMARK(spread_padded)->Apply(args);
BENCHMARK(shared_packed)->Apply(args);
BENCHMARK(shared_padded)->Apply(args);

}  // namespace
