// Ablation A1: tag padding (DESIGN.md §5).
//
// One RoundTag per concurrent-write target — but packed tags share cache
// lines (8 per line), so a CAS on tag i invalidates the line under reads of
// tags i±7 even when the *logical* targets never collide. Padding trades
// 8x memory for isolation. The paper's kernels pack (Fig 3 uses plain
// unsigned arrays); this bench quantifies what that choice costs under
// neighbour contention and what it saves in footprint-bound sweeps.
//
// Two access patterns per layout:
//   spread  — thread t hammers tags [t*K, (t+1)*K): disjoint tags, so ONLY
//             false sharing differentiates the layouts;
//   shared  — all threads hammer the same K tags: true sharing dominates
//             and padding shouldn't matter much.
#include <benchmark/benchmark.h>
#include <omp.h>

#include <cstdint>

#include "core/arbiter.hpp"
#include "util/timer.hpp"

namespace {

using crcw::CasLtPolicy;
using crcw::round_t;
using crcw::TagLayout;
using crcw::WriteArbiter;

constexpr std::size_t kTagsPerThread = 8;  // within one cache line when packed
constexpr int kRounds = 2000;

template <TagLayout Layout>
void spread_pattern(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  WriteArbiter<CasLtPolicy, Layout> arbiter(static_cast<std::size_t>(threads) *
                                            kTagsPerThread);
  std::uint64_t wins = 0;
  for (auto _ : state) {
    arbiter.reset_all();
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      const auto base = static_cast<std::size_t>(omp_get_thread_num()) * kTagsPerThread;
      for (round_t r = 1; r <= kRounds; ++r) {
        for (std::size_t k = 0; k < kTagsPerThread; ++k) {
          if (arbiter.try_acquire(base + k, r)) ++wins;
        }
      }
    }
    state.SetIterationTime(timer.seconds());
  }
  benchmark::DoNotOptimize(wins);
  state.counters["tags"] = static_cast<double>(arbiter.size());
}

template <TagLayout Layout>
void shared_pattern(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  WriteArbiter<CasLtPolicy, Layout> arbiter(kTagsPerThread);
  std::uint64_t wins = 0;
  for (auto _ : state) {
    arbiter.reset_all();
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads) reduction(+ : wins)
    {
      for (round_t r = 1; r <= kRounds; ++r) {
        for (std::size_t k = 0; k < kTagsPerThread; ++k) {
          if (arbiter.try_acquire(k, r)) ++wins;
        }
#pragma omp barrier
      }
    }
    state.SetIterationTime(timer.seconds());
  }
  benchmark::DoNotOptimize(wins);
}

void args(benchmark::internal::Benchmark* b) {
  for (const int t : {1, 2, 4, 8}) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMillisecond);
}

void spread_packed(benchmark::State& s) { spread_pattern<TagLayout::kPacked>(s); }
void spread_padded(benchmark::State& s) { spread_pattern<TagLayout::kPadded>(s); }
void shared_packed(benchmark::State& s) { shared_pattern<TagLayout::kPacked>(s); }
void shared_padded(benchmark::State& s) { shared_pattern<TagLayout::kPadded>(s); }

BENCHMARK(spread_packed)->Apply(args);
BENCHMARK(spread_padded)->Apply(args);
BENCHMARK(shared_packed)->Apply(args);
BENCHMARK(shared_padded)->Apply(args);

}  // namespace
