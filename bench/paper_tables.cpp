// paper_tables — regenerates every evaluation series of the paper (§7,
// Figures 5-12) in one run and prints them as tables with the same
// aggregate statistics the paper reports: per-point execution times, plus
// maximum and geometric-mean speedups of CAS-LT over the baseline (naive
// for Maximum and BFS, prefix-sum/gatekeeper for CC).
//
// Usage:
//   paper_tables [--quick] [--reps R] [--threads T] [--csv-dir DIR]
//
// Paper headline numbers to compare against (32-core x86 node):
//   Max  : caslt vs naive      max 2.5x,  geomean 1.98x; gatekeeper 0.58x
//   BFS  : caslt vs naive      max 3.04x (edges) / 2.31x (vertices),
//                              geomean 2.12x / 1.86x; 2.24x at 32 threads
//   CC   : caslt vs gatekeeper max 4.51x, geomean 4x
//
// This container has ONE physical core; absolute numbers and parallel
// scaling differ, while method ordering and contention trends reproduce.
// See EXPERIMENTS.md for the measured-vs-paper discussion.
#include <omp.h>

#include <iostream>
#include <string>
#include <vector>

#include "algorithms/dispatch.hpp"
#include "graph/generators.hpp"
#include "obs/bench_report.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using crcw::util::Table;

struct Config {
  int reps = 3;
  int threads = 4;
  bool quick = false;
  std::string csv_dir;
};

crcw::obs::BenchReport& report() {
  static crcw::obs::BenchReport r("paper_tables");
  return r;
}

/// Best-of-reps wall time of one call; every rep plus the untimed profile
/// pass lands as one row in the BENCH_paper_tables.json report.
template <typename Fn, typename ProfileFn>
double time_series(const Config& cfg, const std::string& figure, const std::string& method,
                   std::string baseline, int threads, std::uint64_t n, std::uint64_t m,
                   Fn&& fn, ProfileFn&& profile) {
  crcw::obs::BenchRow row{.series = figure + "/" + method,
                          .policy = method,
                          .baseline = std::move(baseline),
                          .threads = threads,
                          .n = n,
                          .m = m};
  double best = 1e300;
  for (int r = 0; r < cfg.reps; ++r) {
    crcw::util::Timer timer;
    fn();
    const double s = timer.seconds();
    row.samples_ns.push_back(s * 1e9);
    best = std::min(best, s);
  }
  row.counters = profile();
  report().add_row(std::move(row));
  return best;
}

void print_speedup_summary(const std::string& label,
                           const std::vector<double>& baseline,
                           const std::vector<double>& caslt) {
  const auto speedups = crcw::util::ratios(baseline, caslt);
  double max_speedup = 0.0;
  for (const double s : speedups) max_speedup = std::max(max_speedup, s);
  std::cout << "  " << label << ": max " << Table::fmt(max_speedup, 2) << "x, geomean "
            << Table::fmt(crcw::util::geometric_mean(speedups), 2) << "x\n";
}

void maybe_save(const Config& cfg, const Table& t, const std::string& name) {
  if (!cfg.csv_dir.empty()) t.save_csv(cfg.csv_dir + "/" + name + ".csv");
}

// --------------------------------------------------------------------------
// Maximum (Figures 5 and 6)

std::vector<std::uint32_t> make_list(std::uint64_t n) {
  crcw::util::Xoshiro256 rng(42);
  std::vector<std::uint32_t> xs(n);
  for (auto& x : xs) x = static_cast<std::uint32_t>(rng.bounded(1u << 30));
  return xs;
}

void run_max_tables(const Config& cfg) {
  const std::vector<std::string> methods = {"naive", "gatekeeper", "gatekeeper-skip",
                                            "caslt"};

  // ---- Figure 5: size sweep at fixed threads -----------------------------
  std::vector<std::uint64_t> sizes = cfg.quick
                                         ? std::vector<std::uint64_t>{512, 1024, 2048}
                                         : std::vector<std::uint64_t>{1024, 2048, 4096, 8192};
  std::cout << "\n== Figure 5: constant-time Maximum, time(ms) vs list size ("
            << cfg.threads << " threads) ==\n";
  Table t5({"n", "naive", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> naive_times;
  std::vector<double> gate_times;
  std::vector<double> caslt_times;
  for (const auto n : sizes) {
    const auto list = make_list(n);
    std::vector<std::string> row = {Table::fmt(n)};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig5", m, "naive", cfg.threads, n, 0,
          [&] { (void)crcw::algo::run_max(m, list, {.threads = cfg.threads}); },
          [&] { return crcw::algo::profile_max(m, list, {.threads = cfg.threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    naive_times.push_back(times[0]);
    gate_times.push_back(times[1]);
    caslt_times.push_back(times[3]);
    t5.add_row(std::move(row));
  }
  t5.print(std::cout);
  print_speedup_summary("caslt vs naive      (paper: max 2.5x, geomean 1.98x)",
                        naive_times, caslt_times);
  print_speedup_summary("naive vs gatekeeper (paper: gatekeeper is 1.72x slower)",
                        gate_times, naive_times);
  maybe_save(cfg, t5, "fig5_max_size");

  // ---- Figure 6: thread sweep at fixed size -------------------------------
  const std::uint64_t n6 = cfg.quick ? 1024 : 4096;
  const auto list6 = make_list(n6);
  std::cout << "\n== Figure 6: constant-time Maximum, time(ms) vs threads (n=" << n6
            << ") ==\n";
  Table t6({"threads", "naive", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> naive6;
  std::vector<double> caslt6;
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {Table::fmt(static_cast<std::uint64_t>(threads))};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig6", m, "naive", threads, n6, 0,
          [&] { (void)crcw::algo::run_max(m, list6, {.threads = threads}); },
          [&] { return crcw::algo::profile_max(m, list6, {.threads = threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    naive6.push_back(times[0]);
    caslt6.push_back(times[3]);
    t6.add_row(std::move(row));
  }
  t6.print(std::cout);
  print_speedup_summary("caslt vs naive (paper: 1.8x at 32 threads)", naive6, caslt6);
  maybe_save(cfg, t6, "fig6_max_threads");
}

// --------------------------------------------------------------------------
// BFS (Figures 7, 8, 9)

void run_bfs_tables(const Config& cfg) {
  const std::vector<std::string> methods = {"naive", "gatekeeper", "gatekeeper-skip",
                                            "caslt"};
  const std::uint64_t v_fixed = cfg.quick ? 20'000 : 100'000;
  const std::uint64_t e_fixed = cfg.quick ? 200'000 : 1'000'000;

  // ---- Figure 7: edge sweep ------------------------------------------------
  std::vector<std::uint64_t> edge_sweep =
      cfg.quick ? std::vector<std::uint64_t>{50'000, 100'000, 200'000}
                : std::vector<std::uint64_t>{250'000, 500'000, 1'000'000, 2'000'000};
  std::cout << "\n== Figure 7: BFS, time(ms) vs edges (V=" << v_fixed << ", "
            << cfg.threads << " threads) ==\n";
  Table t7({"edges", "naive", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> naive7;
  std::vector<double> caslt7;
  for (const auto m_edges : edge_sweep) {
    const auto g = crcw::graph::random_graph(v_fixed, m_edges, 42);
    std::vector<std::string> row = {Table::fmt(m_edges)};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig7", m, "naive", cfg.threads, v_fixed, m_edges,
          [&] { (void)crcw::algo::run_bfs(m, g, 0, {.threads = cfg.threads}); },
          [&] { return crcw::algo::profile_bfs(m, g, 0, {.threads = cfg.threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    naive7.push_back(times[0]);
    caslt7.push_back(times[3]);
    t7.add_row(std::move(row));
  }
  t7.print(std::cout);
  print_speedup_summary("caslt vs naive (paper: max 3.04x, geomean 2.12x)", naive7,
                        caslt7);
  maybe_save(cfg, t7, "fig7_bfs_edges");

  // ---- Figure 8: vertex sweep ----------------------------------------------
  std::vector<std::uint64_t> vertex_sweep =
      cfg.quick ? std::vector<std::uint64_t>{10'000, 20'000, 40'000}
                : std::vector<std::uint64_t>{25'000, 50'000, 100'000, 200'000, 400'000};
  std::cout << "\n== Figure 8: BFS, time(ms) vs vertices (E=" << e_fixed << ", "
            << cfg.threads << " threads) ==\n";
  Table t8({"vertices", "naive", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> naive8;
  std::vector<double> caslt8;
  for (const auto n : vertex_sweep) {
    const auto g = crcw::graph::random_graph(n, e_fixed, 42);
    std::vector<std::string> row = {Table::fmt(n)};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig8", m, "naive", cfg.threads, n, e_fixed,
          [&] { (void)crcw::algo::run_bfs(m, g, 0, {.threads = cfg.threads}); },
          [&] { return crcw::algo::profile_bfs(m, g, 0, {.threads = cfg.threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    naive8.push_back(times[0]);
    caslt8.push_back(times[3]);
    t8.add_row(std::move(row));
  }
  t8.print(std::cout);
  print_speedup_summary("caslt vs naive (paper: max 2.31x, geomean 1.86x)", naive8,
                        caslt8);
  maybe_save(cfg, t8, "fig8_bfs_vertices");

  // ---- Figure 9: thread sweep ----------------------------------------------
  std::cout << "\n== Figure 9: BFS, time(ms) vs threads (V=" << v_fixed
            << ", E=" << e_fixed << ") ==\n";
  const auto g9 = crcw::graph::random_graph(v_fixed, e_fixed, 42);
  Table t9({"threads", "naive", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> naive9;
  std::vector<double> caslt9;
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {Table::fmt(static_cast<std::uint64_t>(threads))};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig9", m, "naive", threads, v_fixed, e_fixed,
          [&] { (void)crcw::algo::run_bfs(m, g9, 0, {.threads = threads}); },
          [&] { return crcw::algo::profile_bfs(m, g9, 0, {.threads = threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    naive9.push_back(times[0]);
    caslt9.push_back(times[3]);
    t9.add_row(std::move(row));
  }
  t9.print(std::cout);
  print_speedup_summary("caslt vs naive (paper: up to 2.24x)", naive9, caslt9);
  maybe_save(cfg, t9, "fig9_bfs_threads");
}

// --------------------------------------------------------------------------
// Connected Components (Figures 10, 11, 12) — no naive series (§7.2)

void run_cc_tables(const Config& cfg) {
  const std::vector<std::string> methods = {"gatekeeper", "gatekeeper-skip", "caslt"};
  const std::uint64_t v_fixed = cfg.quick ? 10'000 : 50'000;
  const std::uint64_t e_fixed = cfg.quick ? 100'000 : 500'000;

  // ---- Figure 10: edge sweep -----------------------------------------------
  std::vector<std::uint64_t> edge_sweep =
      cfg.quick ? std::vector<std::uint64_t>{25'000, 50'000, 100'000}
                : std::vector<std::uint64_t>{125'000, 250'000, 500'000, 1'000'000};
  std::cout << "\n== Figure 10: CC, time(ms) vs edges (V=" << v_fixed << ", "
            << cfg.threads << " threads) ==\n";
  Table t10({"edges", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> gate10;
  std::vector<double> caslt10;
  for (const auto m_edges : edge_sweep) {
    const auto g = crcw::graph::random_graph(v_fixed, m_edges, 42);
    std::vector<std::string> row = {Table::fmt(m_edges)};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig10", m, "gatekeeper", cfg.threads, v_fixed, m_edges,
          [&] { (void)crcw::algo::run_cc(m, g, {.threads = cfg.threads}); },
          [&] { return crcw::algo::profile_cc(m, g, {.threads = cfg.threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    gate10.push_back(times[0]);
    caslt10.push_back(times[2]);
    t10.add_row(std::move(row));
  }
  t10.print(std::cout);
  print_speedup_summary("caslt vs gatekeeper (paper: max 4.51x, geomean 4x)", gate10,
                        caslt10);
  maybe_save(cfg, t10, "fig10_cc_edges");

  // ---- Figure 11: vertex sweep ---------------------------------------------
  std::vector<std::uint64_t> vertex_sweep =
      cfg.quick ? std::vector<std::uint64_t>{5'000, 10'000, 20'000}
                : std::vector<std::uint64_t>{12'500, 25'000, 50'000, 100'000, 200'000};
  std::cout << "\n== Figure 11: CC, time(ms) vs vertices (E=" << e_fixed << ", "
            << cfg.threads << " threads) ==\n";
  Table t11({"vertices", "gatekeeper", "gatekeeper-skip", "caslt"});
  for (const auto n : vertex_sweep) {
    const auto g = crcw::graph::random_graph(n, e_fixed, 42);
    std::vector<std::string> row = {Table::fmt(n)};
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig11", m, "gatekeeper", cfg.threads, n, e_fixed,
          [&] { (void)crcw::algo::run_cc(m, g, {.threads = cfg.threads}); },
          [&] { return crcw::algo::profile_cc(m, g, {.threads = cfg.threads}); });
      row.push_back(Table::fmt(s * 1e3));
    }
    t11.add_row(std::move(row));
  }
  t11.print(std::cout);
  std::cout << "  (paper shape: gatekeeper falls steeply as vertices thin out "
               "collisions; caslt trends slightly up)\n";
  maybe_save(cfg, t11, "fig11_cc_vertices");

  // ---- Figure 12: thread sweep ---------------------------------------------
  std::cout << "\n== Figure 12: CC, time(ms) vs threads (V=" << v_fixed
            << ", E=" << e_fixed << ") ==\n";
  const auto g12 = crcw::graph::random_graph(v_fixed, e_fixed, 42);
  Table t12({"threads", "gatekeeper", "gatekeeper-skip", "caslt"});
  std::vector<double> gate12;
  std::vector<double> caslt12;
  for (const int threads : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row = {Table::fmt(static_cast<std::uint64_t>(threads))};
    std::vector<double> times;
    for (const auto& m : methods) {
      const double s = time_series(
          cfg, "fig12", m, "gatekeeper", threads, v_fixed, e_fixed,
          [&] { (void)crcw::algo::run_cc(m, g12, {.threads = threads}); },
          [&] { return crcw::algo::profile_cc(m, g12, {.threads = threads}); });
      times.push_back(s);
      row.push_back(Table::fmt(s * 1e3));
    }
    gate12.push_back(times[0]);
    caslt12.push_back(times[2]);
    t12.add_row(std::move(row));
  }
  t12.print(std::cout);
  print_speedup_summary("caslt vs gatekeeper (paper: superior at every count)", gate12,
                        caslt12);
  maybe_save(cfg, t12, "fig12_cc_threads");
}

}  // namespace

int main(int argc, char** argv) {
  const crcw::util::Cli cli(argc, argv);
  Config cfg;
  cfg.quick = cli.get_bool("quick", false);
  cfg.reps = static_cast<int>(cli.get_int("reps", 3));
  cfg.threads = static_cast<int>(cli.get_int("threads", 4));
  cfg.csv_dir = cli.get_string("csv-dir", "");

  std::cout << "crcw paper_tables — regenerating the evaluation of\n"
               "  'Implementing Arbitrary/Common Concurrent Writes of CRCW PRAM' (ICPP'21)\n"
            << "environment: " << crcw::util::environment_summary() << "\n"
            << "config: reps=" << cfg.reps << " threads=" << cfg.threads
            << (cfg.quick ? " (quick mode)" : "") << "\n";
  if (crcw::util::oversubscribed(cfg.threads)) {
    std::cout << "NOTE: " << cfg.threads << " threads exceed the "
              << crcw::util::hardware_threads()
              << " hardware thread(s): thread sweeps measure oversubscribed "
                 "contention, not parallel speedup (see EXPERIMENTS.md).\n";
  }

  run_max_tables(cfg);
  run_bfs_tables(cfg);
  run_cc_tables(cfg);

  const std::string json_path = report().default_path();
  report().write_file(json_path);
  std::cout << "\nwrote " << json_path << "\ndone.\n";
  return 0;
}
