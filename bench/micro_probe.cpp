// Microbenchmark: the probe walk in isolation — group (sidecar) vs scalar
// (bucket-at-a-time) over one fixed-size ConcurrentHashSet, sweeping load
// factor, with a churned variant that tombstones half the keys first:
//
//   micro_probe/lookup/{group,scalar}  contains() mix (~50% hit rate) over
//                                      a table filled to m% of its buckets
//   micro_probe/churn/{group,scalar}   same mix after erasing half the
//                                      keys — tombstones lengthen every
//                                      walk until a reclaim, which is
//                                      exactly the regime the sidecar's
//                                      16-lane filtering attacks
//
// m carries the fill percentage (the row key has no float axis); n is the
// bucket count, pinned so both variants walk identical chains. The profile
// pass replays the same mix through the COUNTED walks (insert of a present
// key / erase of an absent one — same shapes as contains hit/miss), so the
// JSON rows carry probes-per-op, group_loads, fingerprint false positives
// and the probe-length p50/p99 distribution shift next to the timings.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/hash_common.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using crcw::bench::RowRecorder;
using crcw::bench::RowSpec;

constexpr std::uint64_t kBuckets = 1u << 16;
constexpr std::uint64_t kProbesPerIter = 1u << 16;

crcw::ds::HashConfig table_cfg(bool group, bool telemetry = false) {
  crcw::ds::HashConfig cfg;
  cfg.max_load = 0.5;  // capacity kBuckets/2 → exactly kBuckets buckets
  cfg.group_probe = group;
  cfg.telemetry = telemetry;
  cfg.site_name = "micro-probe";
  return cfg;
}

/// Fills `set` to pct% of kBuckets with distinct keys (mix64 spreads the
/// sequential draw); with `churn`, additionally erases every second key, so
/// half the claimed buckets are tombstones the walks must filter past.
std::vector<std::uint64_t> fill(crcw::ds::ConcurrentHashSet<>& set, std::uint64_t pct,
                                bool churn) {
  const std::uint64_t keys = kBuckets * pct / 100;
  std::vector<std::uint64_t> live;
  live.reserve(keys);
  for (std::uint64_t k = 1; k <= keys; ++k) {
    (void)set.insert(k);
    if (churn && k % 2 == 0) {
      (void)set.erase(k);
    } else {
      live.push_back(k);
    }
  }
  return live;
}

/// Probe mix: alternating present / absent keys (~50% hit rate), drawn
/// uniformly over the live range. Cached per (pct, churn) — never timed.
const std::vector<std::uint64_t>& cached_probes(std::uint64_t pct, bool churn) {
  static std::vector<std::uint64_t> cache[2][101];
  auto& probes = cache[churn ? 1 : 0][pct];
  if (probes.empty()) {
    const std::uint64_t keys = kBuckets * pct / 100;
    crcw::util::Xoshiro256 rng(931 + pct);
    probes.resize(kProbesPerIter);
    for (std::uint64_t i = 0; i < kProbesPerIter; ++i) {
      // Odd keys survive the churn erase; shift misses past the key range.
      const std::uint64_t k = rng.bounded(keys / 2) * 2 + 1;
      probes[i] = (i % 2 == 0) ? k : k + kBuckets;
    }
  }
  return probes;
}

void bench_probe(benchmark::State& state, const char* sweep, bool group, bool churn) {
  const auto pct = static_cast<std::uint64_t>(state.range(0));
  const auto& probes = cached_probes(pct, churn);
  auto set = std::make_unique<crcw::ds::ConcurrentHashSet<>>(kBuckets / 2,
                                                             table_cfg(group));
  const auto live = fill(*set, pct, churn);  // untimed build
  RowRecorder rec(state, {.series = std::string("micro_probe/") + sweep + "/" +
                                    (group ? "group" : "scalar"),
                          .policy = group ? "group" : "scalar",
                          .baseline = "scalar",
                          .threads = 1,
                          .n = kBuckets,
                          .m = pct});
  std::uint64_t hits = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
    std::uint64_t h = 0;
    for (const std::uint64_t k : probes) {
      if (set->contains(k)) ++h;
    }
    rec.record(timer.seconds());
    hits = h;
    benchmark::DoNotOptimize(hits);
  }
  state.counters["hits"] = static_cast<double>(hits);
  state.counters["live"] = static_cast<double>(live.size());
  rec.profile([&] {
    // contains() is deliberately uncounted (telemetry off the read path),
    // so replay the identical walk shapes through the counted ops: insert
    // of a present key == contains-hit walk, erase of an absent key ==
    // contains-miss walk. Neither mutates the table.
    crcw::obs::MetricsRegistry local;
    const crcw::obs::ScopedRegistry scoped(local);
    crcw::ds::ConcurrentHashSet<> counted(kBuckets / 2, table_cfg(group, true));
    (void)fill(counted, pct, churn);
    for (const std::uint64_t k : probes) {
      if (k <= kBuckets) {
        (void)counted.insert(k);  // kFound (or revive-free kFound walk)
      } else {
        (void)counted.erase(k);  // absent: walks to first empty, no write
      }
    }
    counted.flush_round();
    return std::optional(local.totals());
  });
}

void lookup_group(benchmark::State& s) { bench_probe(s, "lookup", true, false); }
void lookup_scalar(benchmark::State& s) { bench_probe(s, "lookup", false, false); }
void churn_group(benchmark::State& s) { bench_probe(s, "churn", true, true); }
void churn_scalar(benchmark::State& s) { bench_probe(s, "churn", false, true); }

void load_args(benchmark::internal::Benchmark* b) {
  // Fill percentages; smoke keeps 50 and 70 so a short-chain and a
  // longer-chain regime both stay exercised in CI.
  for (const std::int64_t pct :
       crcw::bench::sweep_points<std::int64_t>({50, 70, 85, 95}, 2)) {
    b->Arg(pct);
  }
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

BENCHMARK(lookup_group)->Apply(load_args);
BENCHMARK(lookup_scalar)->Apply(load_args);
BENCHMARK(churn_group)->Apply(load_args);
BENCHMARK(churn_scalar)->Apply(load_args);

}  // namespace
