// Microbenchmark M2: multi-word payload concurrent writes (§4's motivating
// requirement — "structure and class copies").
//
// The cost of an arbitrary CW of a W-word struct under contention, per
// method: CAS-LT slot (one tag CAS + winner-only copy), critical section
// (lock + copy for every loser too, before it learns it lost), and the
// unsafe unprotected copy as the floor (every thread copies; result may be
// torn — measured only to show what the safety costs).
#include <omp.h>

#include <cstdint>
#include <string>

#include "bench_common.hpp"
#include "core/slot.hpp"
#include "util/timer.hpp"

namespace {

using crcw::ConWriteSlot;
using crcw::CriticalPolicy;
using crcw::round_t;
using crcw::Stamped;

constexpr int kRounds = 256;

/// Rows compare methods at equal payload width: the n field carries the
/// word count, so the caslt row at the same (threads, n) is the baseline.
crcw::bench::RowSpec spec(const char* method, std::size_t words, int threads) {
  const std::string suffix = "-" + std::to_string(words) + "w";
  return {.series = "micro_slot/" + (method + suffix),
          .policy = method + suffix,
          .baseline = "caslt" + suffix,
          .threads = threads,
          .n = words,
          .m = kRounds};
}

template <std::size_t Words>
void slot_caslt(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("caslt", Words, threads));
  ConWriteSlot<Stamped<Words>> slot;
  for (auto _ : state) {
    slot.reset_tag();
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads)
    {
      const auto stamp = static_cast<std::uint64_t>(omp_get_thread_num() + 1);
      for (round_t r = 1; r <= kRounds; ++r) {
        (void)slot.try_write(r, Stamped<Words>(stamp * 1000 + r));
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
  }
  state.counters["payload_bytes"] = static_cast<double>(Words * 8);
}

template <std::size_t Words>
void slot_critical(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("critical", Words, threads));
  ConWriteSlot<Stamped<Words>, CriticalPolicy> slot;
  for (auto _ : state) {
    slot.reset_tag();
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads)
    {
      const auto stamp = static_cast<std::uint64_t>(omp_get_thread_num() + 1);
      for (round_t r = 1; r <= kRounds; ++r) {
        (void)slot.try_write(r, Stamped<Words>(stamp * 1000 + r));
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
  }
  state.counters["payload_bytes"] = static_cast<double>(Words * 8);
}

template <std::size_t Words>
void slot_unprotected(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  crcw::bench::RowRecorder rec(state, spec("unprotected", Words, threads));
  ConWriteSlot<Stamped<Words>> slot;
  std::uint64_t torn = 0;
  for (auto _ : state) {
    crcw::util::Timer timer;
#pragma omp parallel num_threads(threads)
    {
      const auto stamp = static_cast<std::uint64_t>(omp_get_thread_num() + 1);
      for (round_t r = 1; r <= kRounds; ++r) {
        slot.write_unprotected(Stamped<Words>(stamp * 1000 + r));
#pragma omp barrier
      }
    }
    rec.record(timer.seconds());
    if (!slot.read_unprotected().consistent()) ++torn;
  }
  state.counters["payload_bytes"] = static_cast<double>(Words * 8);
  state.counters["torn_final_states"] = static_cast<double>(torn);
}

void args(benchmark::internal::Benchmark* b) {
  for (const int t : crcw::bench::sweep_points<int>({1, 2, 4, 8}, 2)) b->Arg(t);
  b->UseManualTime()->Unit(benchmark::kMicrosecond);
}

void slot_caslt_2w(benchmark::State& s) { slot_caslt<2>(s); }
void slot_caslt_8w(benchmark::State& s) { slot_caslt<8>(s); }
void slot_caslt_64w(benchmark::State& s) { slot_caslt<64>(s); }
void slot_critical_8w(benchmark::State& s) { slot_critical<8>(s); }
void slot_critical_64w(benchmark::State& s) { slot_critical<64>(s); }
void slot_unprotected_8w(benchmark::State& s) { slot_unprotected<8>(s); }

BENCHMARK(slot_caslt_2w)->Apply(args);
BENCHMARK(slot_caslt_8w)->Apply(args);
BENCHMARK(slot_caslt_64w)->Apply(args);
BENCHMARK(slot_critical_8w)->Apply(args);
BENCHMARK(slot_critical_64w)->Apply(args);
BENCHMARK(slot_unprotected_8w)->Apply(args);

}  // namespace
