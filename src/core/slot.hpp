// ConWriteSlot — concurrent writes of multi-word payloads (struct copies).
//
// The paper's motivating requirement (§1, §4): a concurrent write must
// "support concurrent write for modern language data structures such as
// structure and class copies". A multi-word copy takes several memory
// transactions; if more than one thread performs it, the target can end up
// as a mix of the attempted values — matching none of them. A single-winner
// policy makes the copy safe *without* making it atomic: losers never touch
// the payload.
//
// ConWriteSlot also exposes `write_unprotected`, the racing copy a naive
// implementation would perform; tests/test_slot.cpp uses it to demonstrate
// torn results under contention (the failure the paper warns about), and
// `Stamped<T>` provides a self-validating payload for exactly that purpose.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/policies.hpp"
#include "util/sanitizer.hpp"

namespace crcw {

template <typename T, WritePolicy Policy = CasLtPolicy>
class ConWriteSlot {
  static_assert(kSingleWinner<Policy>,
                "multi-word payloads require a single-winner policy");

 public:
  using value_type = T;
  using policy_type = Policy;

  ConWriteSlot() = default;
  explicit ConWriteSlot(T initial) : value_(std::move(initial)) {}

  ConWriteSlot(const ConWriteSlot&) = delete;
  ConWriteSlot& operator=(const ConWriteSlot&) = delete;

  /// Single-winner multi-word concurrent write.
  bool try_write(round_t round, const T& v) {
    if (!Policy::try_acquire(tag_, round)) return false;
    // Benign under TSan: the policy admitted exactly one writer for this
    // round and the PRAM step barrier publishes the multi-word copy. The
    // word-wise write_unprotected path below is NOT annotated — it goes
    // through atomic_ref so its struct-level race stays observable.
    const util::TsanIgnoreWritesScope published_by_barrier;
    value_ = v;
    return true;
  }

  /// The unsafe alternative: every contender copies, word by word — the
  /// "multiple memory transactions" of §4, with each individual transaction
  /// modelled as a relaxed atomic word store so the *struct-level* race is
  /// observable without C++-level undefined behaviour. Exists so tests and
  /// benches can exhibit the torn-write failure mode; never call it from
  /// algorithm code. Requires a trivially copyable, word-aligned payload.
  void write_unprotected(const T& v)
    requires(std::is_trivially_copyable_v<T> && sizeof(T) % sizeof(std::uint64_t) == 0 &&
             alignof(T) >= alignof(std::uint64_t))
  {
    const auto* from = reinterpret_cast<const std::uint64_t*>(&v);
    auto* to = reinterpret_cast<std::uint64_t*>(&value_);
    for (std::size_t w = 0; w < sizeof(T) / sizeof(std::uint64_t); ++w) {
      std::atomic_ref<std::uint64_t>(to[w]).store(from[w], std::memory_order_relaxed);
    }
  }

  /// Race-tolerant read of an unprotected slot (same word-wise access).
  [[nodiscard]] T read_unprotected() const
    requires(std::is_trivially_copyable_v<T> && sizeof(T) % sizeof(std::uint64_t) == 0 &&
             alignof(T) >= alignof(std::uint64_t))
  {
    T out;
    const auto* from = reinterpret_cast<const std::uint64_t*>(&value_);
    auto* to = reinterpret_cast<std::uint64_t*>(&out);
    for (std::size_t w = 0; w < sizeof(T) / sizeof(std::uint64_t); ++w) {
      to[w] = std::atomic_ref<const std::uint64_t>(from[w]).load(std::memory_order_relaxed);
    }
    return out;
  }

  [[nodiscard]] const T& read() const noexcept { return value_; }
  [[nodiscard]] T& value() noexcept { return value_; }
  [[nodiscard]] typename Policy::tag_type& tag() noexcept { return tag_; }
  void reset_tag() { Policy::reset(tag_); }

 private:
  typename Policy::tag_type tag_{};
  T value_{};
};

/// Self-validating multi-word payload: W words that must all carry the same
/// stamp. A torn copy (words from different writers) fails consistent().
template <std::size_t Words = 8>
struct Stamped {
  static_assert(Words >= 2, "a one-word payload cannot tear");

  std::array<std::uint64_t, Words> words{};

  Stamped() = default;

  explicit Stamped(std::uint64_t stamp) {
    for (std::size_t i = 0; i < Words; ++i) words[i] = stamp;
  }

  [[nodiscard]] bool consistent() const noexcept {
    for (std::size_t i = 1; i < Words; ++i) {
      if (words[i] != words[0]) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t stamp() const noexcept { return words[0]; }

  friend bool operator==(const Stamped& a, const Stamped& b) noexcept {
    return a.words == b.words;
  }
};

}  // namespace crcw
