// Umbrella header for the concurrent-write core, plus the paper's literal C
// API (Figures 1 and 2) for one-to-one comparison with the published
// pseudo-code. New code should prefer the typed RoundTag / Gatekeeper /
// ConWriteCell interfaces; these free functions exist so the figure benches
// and the README can show the exact published shapes.
#pragma once

#include <atomic>

#include "core/arbiter.hpp"
#include "core/cell.hpp"
#include "core/cell_array.hpp"
#include "core/combining.hpp"
#include "core/gatekeeper.hpp"
#include "core/instrumented.hpp"
#include "core/policies.hpp"
#include "core/priority.hpp"
#include "core/round_tag.hpp"
#include "core/slot.hpp"

namespace crcw {

/// Paper Figure 1, verbatim semantics: returns true iff the caller may
/// perform the round-`round` concurrent write guarded by `lastRoundUpdated`.
inline bool canConWriteCASLT(std::atomic<unsigned>& lastRoundUpdated, unsigned round) noexcept {
  bool x = false;
  if (unsigned current = lastRoundUpdated.load(std::memory_order_relaxed); current < round) {
    x = lastRoundUpdated.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                                 std::memory_order_relaxed);
  }
  return x;
}

/// Paper Figure 2, verbatim semantics: atomic capture of a post-increment on
/// the gatekeeper; the thread that observed 0 wins. The gatekeeper must be
/// re-zeroed before every new concurrent-write round.
inline bool canConWriteAtomic(std::atomic<unsigned>& gatekeeper) noexcept {
  const unsigned x = gatekeeper.fetch_add(1, std::memory_order_acq_rel);
  return x == 0;
}

/// Paper Figure 2 to the letter: the `#pragma omp atomic capture` form the
/// paper's benchmarks actually compiled ("we used OpenMP's atomic capture
/// directive", §7.1), over a plain unsigned. Identical x86 codegen to the
/// std::atomic form; kept so the published listing is runnable verbatim.
inline bool canConWriteAtomicOmp(unsigned& gatekeeper) noexcept {
  unsigned x = 0;
#pragma omp atomic capture
  {
    x = gatekeeper;
    gatekeeper++;
  }
  return x == 0;
}

}  // namespace crcw
