// Umbrella header for the concurrent-write core, plus the paper's literal C
// API (Figures 1 and 2) for one-to-one comparison with the published
// pseudo-code. New code should prefer the typed RoundTag / Gatekeeper /
// ConWriteCell interfaces; these free functions exist so the figure benches
// and the README can show the exact published shapes.
#pragma once

#include <atomic>
#include <cassert>
#include <limits>

#include "core/arbiter.hpp"
#include "core/cell.hpp"
#include "core/cell_array.hpp"
#include "core/combining.hpp"
#include "core/gatekeeper.hpp"
#include "core/instrumented.hpp"
#include "core/policies.hpp"
#include "core/priority.hpp"
#include "core/round_tag.hpp"
#include "core/slot.hpp"

namespace crcw {

/// The published pseudo-code's round type. Figures 1 and 2 store rounds in
/// `unsigned` (32-bit on every target we build for), while the library's
/// typed interfaces use 64-bit round_t. The narrow tag inherits a wrap
/// hazard the paper shape does not discuss: after 2^32 rounds on one tag
/// the comparison `current < round` inverts and every later write is
/// refused (or, across the wrap point itself, a stale round is admitted).
/// The figure benches restart round numbering per repetition, so they stay
/// far below the horizon — but any long-lived caller must either use the
/// 64-bit library types or re-initialise tags before the wrap.
using round32_t = unsigned;

/// Checked narrowing from library rounds to the figure shapes' 32-bit
/// rounds, used by the figure benches that drive the verbatim API from
/// round_t counters. Asserts (debug builds) that the value is below the
/// 2^32 wrap horizon instead of wrapping silently.
constexpr round32_t to_round32(round_t round) noexcept {
  static_assert(sizeof(round32_t) < sizeof(round_t),
                "round32_t exists precisely because the published shapes use a "
                "narrower round than the library's round_t; if the widths ever "
                "match, fold the figure API onto round_t and delete this helper");
  static_assert(std::numeric_limits<round32_t>::digits == 32,
                "the 2^32 wrap-hazard comments assume a 32-bit figure round");
  assert(round <= static_cast<round_t>(std::numeric_limits<round32_t>::max()) &&
         "round beyond the figure shapes' 2^32 wrap horizon");
  return static_cast<round32_t>(round);
}

/// Paper Figure 1, verbatim semantics: returns true iff the caller may
/// perform the round-`round` concurrent write guarded by `lastRoundUpdated`.
/// Rounds are the paper's 32-bit ones — see the round32_t wrap caveat.
inline bool canConWriteCASLT(std::atomic<round32_t>& lastRoundUpdated,
                             round32_t round) noexcept {
  bool x = false;
  if (round32_t current = lastRoundUpdated.load(std::memory_order_relaxed); current < round) {
    x = lastRoundUpdated.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                                 std::memory_order_relaxed);
  }
  return x;
}

/// Paper Figure 2, verbatim semantics: atomic capture of a post-increment on
/// the gatekeeper; the thread that observed 0 wins. The gatekeeper must be
/// re-zeroed before every new concurrent-write round. The 32-bit counter
/// shares round32_t's width caveat: 2^32 contender arrivals without a reset
/// wrap it back to a winning 0.
inline bool canConWriteAtomic(std::atomic<round32_t>& gatekeeper) noexcept {
  const round32_t x = gatekeeper.fetch_add(1, std::memory_order_acq_rel);
  return x == 0;
}

/// Paper Figure 2 to the letter: the `#pragma omp atomic capture` form the
/// paper's benchmarks actually compiled ("we used OpenMP's atomic capture
/// directive", §7.1), over a plain unsigned. Identical x86 codegen to the
/// std::atomic form; kept so the published listing is runnable verbatim.
inline bool canConWriteAtomicOmp(round32_t& gatekeeper) noexcept {
  round32_t x = 0;
#pragma omp atomic capture
  {
    x = gatekeeper;
    gatekeeper++;
  }
  return x == 0;
}

}  // namespace crcw
