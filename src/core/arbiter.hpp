// WriteArbiter — one conflict-resolution tag per concurrent-write target.
//
// PRAM kernels perform concurrent writes into whole arrays (Parent[],
// Level[], isMax[], …). A WriteArbiter owns the parallel array of tags and
// the round counter, and — for policies that require it — performs the
// per-round re-initialisation sweep whose cost the paper charges to the
// gatekeeper scheme (§6: depth O(1), work O(N) per round).
//
// Round lifecycle (the only supported way to advance rounds):
//
//   {
//     auto scope = arbiter.next_round();          // PRAM step boundary
//     #pragma omp parallel for
//     for (...) if (scope.acquire(target)) ...;   // concurrent writes
//   }                                             // scope end flushes metrics
//
// next_round takes a ResetMode describing who runs the gatekeeper sweep;
// the previous three entry points (begin_round, advance_round_no_reset and
// the explicit-round try_acquire) survive as [[deprecated]] shims.
#pragma once

#include <omp.h>

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>

#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cacheline.hpp"

namespace crcw {

/// Tag layout: packed (dense, default — what the paper's kernels use) or
/// padded (one tag per cache line; ablation A1 measures the difference).
enum class TagLayout { kPacked, kPadded };

/// Who runs the per-round tag re-initialisation when the policy needs one
/// (Policy::kNeedsRoundReset):
enum class ResetMode {
  kPolicy,  ///< the arbiter sweeps serially before the round begins
  kCaller,  ///< the caller sweeps (e.g. reset_tags_parallel work-shared
            ///< across the OpenMP team, as Fig 3(b) lines 34-35 do)
  kNone,    ///< no sweep: tags are known-fresh or the policy never resets
};

/// Marker detection: an instrumented policy exposes kInstrumented plus a
/// 3-argument try_acquire(tag, round, ContentionSite&) (see
/// core/instrumented.hpp). The arbiter then owns a ContentionSite and
/// routes every acquire through it.
template <typename P>
concept InstrumentedWritePolicy = WritePolicy<P> && requires { P::kInstrumented; };

template <WritePolicy Policy, TagLayout Layout = TagLayout::kPacked>
class WriteArbiter {
  using Tag = typename Policy::tag_type;
  using Stored =
      std::conditional_t<Layout == TagLayout::kPadded, util::Padded<Tag>, Tag>;

  static constexpr bool kInstrumentedPolicy = InstrumentedWritePolicy<Policy>;

 public:
  using policy_type = Policy;

  /// One concurrent-write step. Holds the round id fixed for its lifetime;
  /// acquire(i) races the calling thread for target i in that round. At
  /// scope end the round's contention counters flush into the arbiter's
  /// ContentionSite histograms (instrumented policies only) — which is why
  /// the scope is deliberately non-copyable and non-movable: exactly one
  /// flush per round, at the step boundary where it is serial-safe.
  class RoundScope {
   public:
    RoundScope(const RoundScope&) = delete;
    RoundScope& operator=(const RoundScope&) = delete;

    ~RoundScope() { arbiter_.flush_round_metrics(); }

    [[nodiscard]] round_t round() const noexcept { return round_; }

    /// True iff the calling thread won this round's write to target i.
    bool acquire(std::size_t i) { return arbiter_.acquire_at(i, round_); }

   private:
    friend class WriteArbiter;
    RoundScope(WriteArbiter& a, round_t r) noexcept : arbiter_(a), round_(r) {}

    WriteArbiter& arbiter_;
    round_t round_;
  };

  WriteArbiter() { init_site(); }

  explicit WriteArbiter(std::size_t targets) : tags_(targets) { init_site(); }

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] round_t round() const noexcept { return round_; }

  /// Starts the next concurrent-write step. Not thread-safe: call it from
  /// serial code (or a single thread) between parallel regions — the same
  /// place the PRAM model puts its step boundary. ResetMode::kPolicy runs
  /// the O(N) gatekeeper sweep here, serially; kCaller defers it to the
  /// caller (pair with reset_tags_parallel()); kNone skips it.
  [[nodiscard]] RoundScope next_round(ResetMode mode = ResetMode::kPolicy) {
    ++round_;
    if constexpr (Policy::kNeedsRoundReset) {
      if (mode == ResetMode::kPolicy) {
        for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
      }
    }
    return RoundScope(*this, round_);
  }

  /// Acquire target i at an explicit round id, for kernels that reuse a
  /// loop index as the round (paper §5: "round could be substituted by the
  /// loop iteration"). The caller owns monotonicity of `round` per target
  /// — and, for instrumented runs, calls flush_round_metrics() at its own
  /// step boundaries. Every acquire path funnels through here.
  bool acquire_at(std::size_t i, round_t round) {
    if constexpr (kInstrumentedPolicy) {
      return Policy::try_acquire(tag(i), round, *site_);
    } else {
      return Policy::try_acquire(tag(i), round);
    }
  }

  /// True iff the calling thread won the current-round write to target i.
  bool try_acquire(std::size_t i) { return acquire_at(i, round_); }

  /// The gatekeeper re-initialisation sweep, work-shared across the OpenMP
  /// team (Fig 3(b) lines 34-35: O(N) work, O(N/P) depth). Pair with
  /// next_round(ResetMode::kCaller); no-op for policies without per-round
  /// reset. `threads <= 0` means the OpenMP default.
  void reset_tags_parallel(int threads = 0) {
    if constexpr (Policy::kNeedsRoundReset) {
      if (threads <= 0) threads = omp_get_max_threads();
      const auto n = static_cast<std::ptrdiff_t>(tags_.size());
#pragma omp parallel for num_threads(threads) schedule(static)
      for (std::ptrdiff_t i = 0; i < n; ++i) {
        Policy::reset(tag(static_cast<std::size_t>(i)));
      }
    }
  }

  /// Direct tag access for kernels that manage rounds themselves.
  Tag& tag(std::size_t i) {
    if constexpr (Layout == TagLayout::kPadded) {
      return tags_[i].value;
    } else {
      return tags_[i];
    }
  }

  /// Restores every tag and the round counter to the fresh state; serial.
  void reset_all() {
    for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
    round_ = kInitialRound;
  }

  /// Folds the round's contention deltas into the per-round histograms.
  /// RoundScope does this automatically; only explicit-round kernels
  /// (acquire_at) call it by hand, from serial code at step boundaries.
  void flush_round_metrics() noexcept {
    if constexpr (kInstrumentedPolicy) site_->flush_round();
  }

  /// The instance-owned contention counters (instrumented policies only).
  [[nodiscard]] obs::ContentionSite& contention() noexcept
    requires(kInstrumentedPolicy)
  {
    return *site_;
  }
  [[nodiscard]] const obs::ContentionSite& contention() const noexcept
    requires(kInstrumentedPolicy)
  {
    return *site_;
  }

  // -- deprecated pre-RoundScope entry points -------------------------------

  [[deprecated("use next_round(ResetMode::kPolicy) and the returned RoundScope")]]
  round_t begin_round() {
    ++round_;
    if constexpr (Policy::kNeedsRoundReset) {
      for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
    }
    return round_;
  }

  [[deprecated("use next_round(ResetMode::kCaller) and reset_tags_parallel()")]]
  round_t advance_round_no_reset() noexcept {
    return ++round_;
  }

  [[deprecated("use acquire_at(i, round)")]]
  bool try_acquire(std::size_t i, round_t explicit_round) {
    return acquire_at(i, explicit_round);
  }

 private:
  void init_site() {
    if constexpr (kInstrumentedPolicy) {
      site_ = std::make_unique<obs::ContentionSite>(std::string(Policy::kName));
    }
  }

  util::AlignedBuffer<Stored> tags_;
  round_t round_ = kInitialRound;
  // Heap-owned so the arbiter stays movable (ContentionSite pins its
  // address in the registry); null for uninstrumented policies.
  std::unique_ptr<obs::ContentionSite> site_;
};

}  // namespace crcw

