// WriteArbiter — one conflict-resolution tag per concurrent-write target.
//
// PRAM kernels perform concurrent writes into whole arrays (Parent[],
// Level[], isMax[], …). A WriteArbiter owns the parallel array of tags and
// the round counter, and — for policies that require it — performs the
// per-round re-initialisation sweep whose cost the paper charges to the
// gatekeeper scheme (§6: depth O(1), work O(N) per round).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <variant>

#include "core/policies.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cacheline.hpp"

namespace crcw {

/// Tag layout: packed (dense, default — what the paper's kernels use) or
/// padded (one tag per cache line; ablation A1 measures the difference).
enum class TagLayout { kPacked, kPadded };

template <WritePolicy Policy, TagLayout Layout = TagLayout::kPacked>
class WriteArbiter {
  using Tag = typename Policy::tag_type;
  using Stored =
      std::conditional_t<Layout == TagLayout::kPadded, util::Padded<Tag>, Tag>;

 public:
  using policy_type = Policy;

  WriteArbiter() = default;

  explicit WriteArbiter(std::size_t targets) : tags_(targets) {}

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] round_t round() const noexcept { return round_; }

  /// Starts the next concurrent-write step. Not thread-safe: call it from
  /// serial code (or a single thread) between parallel regions — the same
  /// place the PRAM model puts its step boundary. For reset-requiring
  /// policies this performs the O(N) gatekeeper sweep (serially; kernels
  /// that want the sweep parallelised do it themselves, see algorithms/).
  round_t begin_round() {
    ++round_;
    if constexpr (Policy::kNeedsRoundReset) {
      for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
    }
    return round_;
  }

  /// True iff the calling thread won the current-round write to target i.
  bool try_acquire(std::size_t i) { return Policy::try_acquire(tag(i), round_); }

  /// Explicit-round overload, for kernels that reuse a loop index as the
  /// round id (paper §5: "round could be substituted by the loop
  /// iteration"). The caller owns monotonicity of `round` per target.
  bool try_acquire(std::size_t i, round_t explicit_round) {
    return Policy::try_acquire(tag(i), explicit_round);
  }

  /// Advances the round WITHOUT the policy reset sweep — for callers that
  /// run the reset themselves (e.g. work-shared across OpenMP threads,
  /// as Fig 3(b) lines 34-35 do). Serial, like begin_round.
  round_t advance_round_no_reset() noexcept { return ++round_; }

  /// Direct tag access for kernels that manage rounds themselves.
  Tag& tag(std::size_t i) {
    if constexpr (Layout == TagLayout::kPadded) {
      return tags_[i].value;
    } else {
      return tags_[i];
    }
  }

  /// Restores every tag and the round counter to the fresh state; serial.
  void reset_all() {
    for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
    round_ = kInitialRound;
  }

 private:
  util::AlignedBuffer<Stored> tags_;
  round_t round_ = kInitialRound;
};

}  // namespace crcw
