// WriteArbiter — one conflict-resolution tag per concurrent-write target.
//
// PRAM kernels perform concurrent writes into whole arrays (Parent[],
// Level[], isMax[], …). A WriteArbiter owns the parallel array of tags and
// the round counter, and — for policies that require it — performs the
// per-round re-initialisation sweep whose cost the paper charges to the
// gatekeeper scheme (§6: depth O(1), work O(N) per round).
//
// Round lifecycle (the only supported way to advance rounds):
//
//   {
//     auto scope = arbiter.next_round();          // PRAM step boundary
//     #pragma omp parallel for
//     for (...) if (scope.acquire(target)) ...;   // concurrent writes
//   }                                             // scope end flushes metrics
//
// next_round takes a ResetMode describing who runs the gatekeeper sweep.
// Explicit-round kernels (the serve tables) pair next_round(kNone) with
// acquire_at(i, round) instead of the scope's acquire.
#pragma once

#include <omp.h>

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/policies.hpp"
#include "obs/metrics.hpp"
#include "util/aligned_buffer.hpp"
#include "util/cacheline.hpp"

namespace crcw {

/// Tag layout: packed (dense, default — what the paper's kernels use) or
/// padded (one tag per cache line; ablation A1 measures the difference).
enum class TagLayout { kPacked, kPadded };

/// Who runs the per-round tag re-initialisation when the policy needs one
/// (Policy::kNeedsRoundReset):
enum class ResetMode {
  kPolicy,        ///< the arbiter sweeps serially before the round begins
  kCaller,        ///< the caller sweeps (e.g. reset_tags_parallel work-shared
                  ///< across the OpenMP team, as Fig 3(b) lines 34-35 do)
  kNone,          ///< no sweep: tags are known-fresh or the policy never resets
  kPolicySparse,  ///< the arbiter serially resets only the tags the touched
                  ///< lists recorded — O(#writes-last-round), not Θ(N).
                  ///< Requires TouchTracking::kEnabled (falls back to the
                  ///< full serial sweep otherwise). No OpenMP involved, so
                  ///< the raw-thread stress tier may use it.
};

/// Whether the arbiter records every winning acquire into a per-lane
/// touched list, enabling the sparse reset paths. Off by default: the
/// paper-faithful Θ(N) sweep stays the baseline, and CAS-LT never needs
/// either (tracking is a no-op for policies without kNeedsRoundReset).
enum class TouchTracking { kDisabled, kEnabled };

/// Construction-time knobs for WriteArbiter (all default to the
/// paper-faithful behaviour).
struct ArbiterConfig {
  TouchTracking tracking = TouchTracking::kDisabled;
  /// Touched-list lanes; the hard contract is at most one thread per lane
  /// at a time, so this must be >= the largest team that will acquire.
  /// 0 = omp_get_max_threads().
  int lanes = 0;
  /// Page placement of the tag array (util::FirstTouch::kParallel faults
  /// pages in under the same static schedule the reset sweep uses).
  util::FirstTouch first_touch = util::FirstTouch::kSerial;
  int first_touch_threads = 0;  ///< 0 = OpenMP default
};

/// Marker detection: an instrumented policy exposes kInstrumented plus a
/// 3-argument try_acquire(tag, round, ContentionSite&) (see
/// core/instrumented.hpp). The arbiter then owns a ContentionSite and
/// routes every acquire through it.
template <typename P>
concept InstrumentedWritePolicy = WritePolicy<P> && requires { P::kInstrumented; };

template <WritePolicy Policy, TagLayout Layout = TagLayout::kPacked>
class WriteArbiter {
  using Tag = typename Policy::tag_type;
  using Stored =
      std::conditional_t<Layout == TagLayout::kPadded, util::Padded<Tag>, Tag>;

  static constexpr bool kInstrumentedPolicy = InstrumentedWritePolicy<Policy>;

 public:
  using policy_type = Policy;

  /// One concurrent-write step. Holds the round id fixed for its lifetime;
  /// acquire(i) races the calling thread for target i in that round. At
  /// scope end the round's contention counters flush into the arbiter's
  /// ContentionSite histograms (instrumented policies only) — which is why
  /// the scope is deliberately non-copyable and non-movable: exactly one
  /// flush per round, at the step boundary where it is serial-safe.
  class RoundScope {
   public:
    RoundScope(const RoundScope&) = delete;
    RoundScope& operator=(const RoundScope&) = delete;

    ~RoundScope() { arbiter_.flush_round_metrics(); }

    [[nodiscard]] round_t round() const noexcept { return round_; }

    /// True iff the calling thread won this round's write to target i.
    bool acquire(std::size_t i) { return arbiter_.acquire_at(i, round_); }

    /// Same, with an explicit touched-list lane (raw-thread callers; OpenMP
    /// callers can rely on the omp_get_thread_num() default above).
    bool acquire(std::size_t i, int lane) { return arbiter_.acquire_at(i, round_, lane); }

   private:
    friend class WriteArbiter;
    RoundScope(WriteArbiter& a, round_t r) noexcept : arbiter_(a), round_(r) {}

    WriteArbiter& arbiter_;
    round_t round_;
  };

  WriteArbiter() { init_site(); }

  explicit WriteArbiter(std::size_t targets) : tags_(targets) { init_site(); }

  WriteArbiter(std::size_t targets, const ArbiterConfig& cfg)
      : tags_(targets, cfg.first_touch, cfg.first_touch_threads),
        touch_lanes_(touch_lane_count(cfg)),
        tracking_(Policy::kNeedsRoundReset && cfg.tracking == TouchTracking::kEnabled) {
    init_site();
  }

  [[nodiscard]] std::size_t size() const noexcept { return tags_.size(); }
  [[nodiscard]] round_t round() const noexcept { return round_; }

  /// Starts the next concurrent-write step. Not thread-safe: call it from
  /// serial code (or a single thread) between parallel regions — the same
  /// place the PRAM model puts its step boundary. ResetMode::kPolicy runs
  /// the O(N) gatekeeper sweep here, serially; kCaller defers it to the
  /// caller (pair with reset_tags_parallel()); kNone skips it.
  [[nodiscard]] RoundScope next_round(ResetMode mode = ResetMode::kPolicy) {
    ++round_;
    if constexpr (Policy::kNeedsRoundReset) {
      if (mode == ResetMode::kPolicy) {
        for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
        count_reset_tags(tags_.size());
        clear_touched();
      } else if (mode == ResetMode::kPolicySparse) {
        reset_tags_sparse_serial();
      }
    }
    return RoundScope(*this, round_);
  }

  /// Acquire target i at an explicit round id, for kernels that reuse a
  /// loop index as the round (paper §5: "round could be substituted by the
  /// loop iteration"). The caller owns monotonicity of `round` per target
  /// — and, for instrumented runs, calls flush_round_metrics() at its own
  /// step boundaries. Every acquire path funnels through here; a win is
  /// recorded in the caller's touched list when tracking is on (the winner
  /// is the unique perturbation witness: a gatekeeper tag is dirty iff
  /// some RMW hit it, and the first RMW is exactly the win).
  bool acquire_at(std::size_t i, round_t round) {
    bool won;
    if constexpr (kInstrumentedPolicy) {
      won = Policy::try_acquire(tag(i), round, *site_);
    } else {
      won = Policy::try_acquire(tag(i), round);
    }
    if constexpr (Policy::kNeedsRoundReset) {
      if (won && tracking_) record_touch(i, omp_get_thread_num());
    }
    return won;
  }

  /// Same, with an explicit touched-list lane. Raw-std::thread callers
  /// (where omp_get_thread_num() is 0 for everyone) must use this; the
  /// contract is at most one thread per lane at a time.
  bool acquire_at(std::size_t i, round_t round, int lane) {
    bool won;
    if constexpr (kInstrumentedPolicy) {
      won = Policy::try_acquire(tag(i), round, *site_);
    } else {
      won = Policy::try_acquire(tag(i), round);
    }
    if constexpr (Policy::kNeedsRoundReset) {
      if (won && tracking_) record_touch(i, lane);
    }
    return won;
  }

  /// True iff the calling thread won the current-round write to target i.
  bool try_acquire(std::size_t i) { return acquire_at(i, round_); }

  /// The gatekeeper re-initialisation sweep, work-shared across the OpenMP
  /// team (Fig 3(b) lines 34-35: O(N) work, O(N/P) depth). Pair with
  /// next_round(ResetMode::kCaller); no-op for policies without per-round
  /// reset. `threads <= 0` means the OpenMP default.
  void reset_tags_parallel(int threads = 0) {
    if constexpr (Policy::kNeedsRoundReset) {
      if (threads <= 0) threads = omp_get_max_threads();
      const auto n = static_cast<std::ptrdiff_t>(tags_.size());
#pragma omp parallel for num_threads(threads) schedule(static)
      for (std::ptrdiff_t i = 0; i < n; ++i) {
        Policy::reset(tag(static_cast<std::size_t>(i)));
      }
      count_reset_tags(tags_.size());
      clear_touched();  // everything is fresh; stale lists would only grow
    }
  }

  /// The sparse alternative to reset_tags_parallel: resets only the tags
  /// recorded in the touched lists since the previous reset — O(#writes)
  /// work instead of Θ(N) — work-shared over lanes across the OpenMP team.
  /// Pair with next_round(ResetMode::kCaller). Requires the arbiter to
  /// have been constructed with TouchTracking::kEnabled *and every acquire
  /// since the last reset to have gone through a tracked path*; falls back
  /// to the full parallel sweep when tracking is off. No-op for policies
  /// without per-round reset. `threads <= 0` means the OpenMP default.
  void reset_tags_sparse(int threads = 0) {
    if constexpr (Policy::kNeedsRoundReset) {
      if (!tracking_) {
        reset_tags_parallel(threads);
        return;
      }
      if (threads <= 0) threads = omp_get_max_threads();
      const auto lanes = static_cast<std::ptrdiff_t>(touch_lanes_.size());
      std::uint64_t total = 0;
#pragma omp parallel for num_threads(threads) schedule(static) reduction(+ : total)
      for (std::ptrdiff_t li = 0; li < lanes; ++li) {
        auto& list = touch_lanes_[static_cast<std::size_t>(li)].touched;
        for (const std::size_t i : list) Policy::reset(tag(i));
        total += list.size();
        list.clear();
      }
      count_reset_tags(total);
    }
  }

  /// True when this arbiter records winning acquires for sparse resets.
  [[nodiscard]] bool tracking() const noexcept { return tracking_; }

  /// Entries currently held across the touched lists (test/debug probe;
  /// serial or post-barrier only).
  [[nodiscard]] std::uint64_t touched_count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& lane : touch_lanes_) total += lane.touched.size();
    return total;
  }

  /// Direct tag access for kernels that manage rounds themselves.
  Tag& tag(std::size_t i) {
    if constexpr (Layout == TagLayout::kPadded) {
      return tags_[i].value;
    } else {
      return tags_[i];
    }
  }

  /// Re-seeds the round counter, serially, without touching tags. The
  /// snapshot restore path uses this so post-restore rounds continue the
  /// committed sequence strictly increasing: a checkpoint taken at cut r
  /// replays into fresh tables whose tags carry rounds <= r, and the next
  /// next_round() must hand out r+1, never a round some restored tag
  /// already holds. Seeding backwards would violate CAS-LT monotonicity,
  /// so it is rejected.
  void reseed_round(round_t r) {
    assert(r >= round_ && "reseed_round must not move the round backwards");
    round_ = r;
  }

  /// Restores every tag and the round counter to the fresh state; serial.
  void reset_all() {
    for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
    round_ = kInitialRound;
    clear_touched();
  }

  /// Folds the round's contention deltas into the per-round histograms.
  /// RoundScope does this automatically; only explicit-round kernels
  /// (acquire_at) call it by hand, from serial code at step boundaries.
  void flush_round_metrics() noexcept {
    if constexpr (kInstrumentedPolicy) site_->flush_round();
  }

  /// The instance-owned contention counters (instrumented policies only).
  [[nodiscard]] obs::ContentionSite& contention() noexcept
    requires(kInstrumentedPolicy)
  {
    return *site_;
  }
  [[nodiscard]] const obs::ContentionSite& contention() const noexcept
    requires(kInstrumentedPolicy)
  {
    return *site_;
  }

 private:
  // One cache line per lane so concurrent push_backs never share a line.
  // The vector's heap storage is lane-private too (only its owning thread
  // appends; the reset sweeps read it post-barrier / serially).
  struct alignas(util::kCacheLineSize) TouchLane {
    std::vector<std::size_t> touched;
  };

  void init_site() {
    if constexpr (kInstrumentedPolicy) {
      site_ = std::make_unique<obs::ContentionSite>(std::string(Policy::kName));
    }
  }

  [[nodiscard]] static std::size_t touch_lane_count(const ArbiterConfig& cfg) {
    if (!Policy::kNeedsRoundReset || cfg.tracking != TouchTracking::kEnabled) return 0;
    const int lanes = cfg.lanes > 0 ? cfg.lanes : omp_get_max_threads();
    return static_cast<std::size_t>(lanes > 0 ? lanes : 1);
  }

  void record_touch(std::size_t i, int lane) {
    assert(lane >= 0 && static_cast<std::size_t>(lane) < touch_lanes_.size() &&
           "acquire lane out of range: configure ArbiterConfig::lanes >= team size");
    touch_lanes_[static_cast<std::size_t>(lane)].touched.push_back(i);
  }

  void clear_touched() noexcept {
    for (auto& lane : touch_lanes_) lane.touched.clear();
  }

  /// Serial sparse sweep (ResetMode::kPolicySparse): no OpenMP, so the
  /// raw-thread stress tier can drive it. Falls back to the full serial
  /// sweep when tracking is off (tags could be stale otherwise).
  void reset_tags_sparse_serial() {
    if constexpr (Policy::kNeedsRoundReset) {
      if (!tracking_) {
        for (std::size_t i = 0; i < tags_.size(); ++i) Policy::reset(tag(i));
        count_reset_tags(tags_.size());
        return;
      }
      std::uint64_t total = 0;
      for (auto& lane : touch_lanes_) {
        for (const std::size_t i : lane.touched) Policy::reset(tag(i));
        total += lane.touched.size();
        lane.touched.clear();
      }
      count_reset_tags(total);
    }
  }

  void count_reset_tags(std::uint64_t k) noexcept {
    if constexpr (kInstrumentedPolicy) {
      if (k > 0) site_->add_reset_tags(k);
    }
  }

  util::AlignedBuffer<Stored> tags_;
  util::AlignedBuffer<TouchLane> touch_lanes_;  ///< empty unless tracking
  round_t round_ = kInitialRound;
  bool tracking_ = false;
  // Heap-owned so the arbiter stays movable (ContentionSite pins its
  // address in the registry); null for uninstrumented policies.
  std::unique_ptr<obs::ContentionSite> site_;
};

}  // namespace crcw

