// SlotAllocator — chunked slot grants for slot-allocating concurrent
// writes.
//
// The frontier kernels allocate output slots with one shared
// `tail.fetch_add(1)` per discovery: correct, but every discovering thread
// hammers the same cache line, and the contention counters (PR 2) show
// that RMW dominating frontier construction on dense levels. Dice, Hendler
// & Mirsky ("Lightweight Contention Management for Efficient
// Compare-and-Swap Operations") and Bender et al. ("Fast Concurrent
// Primitives Despite Contention") both make the same point: reducing how
// many threads touch one line beats micro-tuning the RMW itself.
//
// SlotAllocator applies that here. Each *lane* (thread) holds a private
// cache-line-padded cursor pair [next, end); grant(lane) hands out
// next++ and only refills from the shared cursor — one fetch_add per
// `chunk` slots — when the lane runs dry. The shared-line RMW rate drops
// by the chunk factor (util::kSlotChunk = 256 by default).
//
// The price is *holes*: at round end each lane may hold an unused tail of
// its last chunk. compact() squeezes them out in place — serial, at the
// step boundary — so callers see a dense prefix exactly as fetch_add would
// have produced, in unspecified order (slot-allocating CWs are
// order-insensitive by construction; the paper's arbitrary-CW semantics
// promise no order either).
//
// Threading contract: at most one thread uses a given lane at a time
// (OpenMP kernels pass omp_get_thread_num(); raw-thread tests pass their
// own dense ids). grant() may run concurrently across lanes; everything
// else (compact, reset, counter readout) is serial, between parallel
// regions. Capacity: a round that performs G grants touches at most
// G + lanes·chunk slot indices, so destination arrays need that much slack
// (capacity_for()).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"
#include "util/chunking.hpp"

namespace crcw {

class SlotAllocator {
 public:
  /// `lanes` = max concurrent threads (one padded cursor each); `chunk` =
  /// slots granted per shared fetch_add (util::slot_chunk() by default,
  /// overridable via CRCW_SLOT_CHUNK).
  explicit SlotAllocator(int lanes, std::uint64_t chunk = util::slot_chunk())
      : lanes_(static_cast<std::size_t>(lanes > 0 ? lanes : 1)),
        chunk_(chunk > 0 ? chunk : 1) {}

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }
  [[nodiscard]] std::uint64_t chunk() const noexcept { return chunk_; }

  /// Destination-array slack needed on top of the maximum grant count.
  [[nodiscard]] std::uint64_t slack() const noexcept {
    return static_cast<std::uint64_t>(lanes()) * chunk_;
  }
  /// Array size that can absorb `max_grants` grants including holes.
  [[nodiscard]] std::uint64_t capacity_for(std::uint64_t max_grants) const noexcept {
    return max_grants + slack();
  }

  /// Allocates one slot for `lane`. Concurrent across lanes; one shared
  /// fetch_add per `chunk` grants, private arithmetic otherwise. Recycled
  /// slots (stock_recycled) are preferred over fresh arena slots: a lane
  /// first drains its private recycled stash, then claims another chunk of
  /// the recycled pool, and only when the pool is dry — remembered per
  /// generation, so a dry pool costs each lane exactly one wasted RMW —
  /// falls through to the arena cursor. Note there is no retry loop here
  /// to back off (util/backoff.hpp): the dry-pool probe is one-shot per
  /// generation and every fetch_add succeeds unconditionally, so backoff
  /// would only delay a grant that cannot fail. The backoff discipline
  /// applies to loops that RE-CONTEND the same word — the chained set's
  /// head CAS and the request queue's lane spinlocks.
  [[nodiscard]] std::uint64_t grant(int lane) noexcept {
    Lane& l = lanes_[static_cast<std::size_t>(lane)];
    ++l.grants;
    if (l.rnext != l.rend) {
      ++l.rgrants;
      return recycled_[l.rnext++];
    }
    if (l.rgen != gen_) {
      const std::uint64_t begin = rcursor_.fetch_add(chunk_, std::memory_order_relaxed);
      ++l.refills;
      if (begin < recycled_.size()) {
        l.rnext = begin;
        l.rend = std::min<std::uint64_t>(begin + chunk_, recycled_.size());
        ++l.rgrants;
        return recycled_[l.rnext++];
      }
      l.rgen = gen_;  // pool dry this generation: stop probing it
    }
    if (l.next == l.end) {
      l.next = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
      l.end = l.next + chunk_;
      ++l.refills;
    }
    return l.next++;
  }

  // -- slot recycling (serial, between parallel regions) --------------------
  // The chained hash set's reclaim sweeps feed tombstoned node indices
  // back here so long-lived churn reuses the arena instead of leaking it.
  // Recycling and compact() are mutually exclusive modes: compact assumes
  // every grant came from the contiguous arena prefix, which recycled
  // indices break. Reuse is ABA-safe because stocking only happens in
  // serial code at step boundaries — no slot is ever recycled while a
  // parallel phase could still hold a reference to it.

  /// Serial: replaces the recycled pool with `indices` plus whatever of
  /// the previous pool was never granted, and opens a new generation.
  void stock_recycled(std::vector<std::uint64_t> indices) {
    drain_into(indices);
    recycled_ = std::move(indices);
    ++gen_;
  }

  /// Serial: removes and returns every recycled index not yet granted
  /// (per-lane stashes plus the unclaimed pool tail).
  [[nodiscard]] std::vector<std::uint64_t> drain_recycled() {
    std::vector<std::uint64_t> out;
    drain_into(out);
    return out;
  }

  /// Grants served from the recycled pool (lifetime; serial/post-barrier).
  [[nodiscard]] std::uint64_t recycled_grants() const noexcept {
    std::uint64_t t = 0;
    for (const Lane& l : lanes_) t += l.rgrants;
    return t;
  }

  /// Highest slot index handed out this round, holes included (= the
  /// shared cursor). Serial or post-barrier only.
  [[nodiscard]] std::uint64_t high_water() const noexcept {
    return cursor_.load(std::memory_order_relaxed);
  }

  /// Squeezes the round's per-lane holes out of data[0, high_water()) so
  /// the granted elements occupy data[0, dense) — in unspecified order —
  /// then resets every lane and the shared cursor for the next round.
  /// Serial, at the step boundary; returns dense (= grants this round).
  template <typename T>
  std::uint64_t compact(T* data) {
    assert(gen_ == 0 && "compact() and slot recycling are mutually exclusive modes");
    const std::uint64_t high = high_water();

    // The round's holes: each lane's unconsumed [next, end), ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> holes;
    holes.reserve(lanes());
    for (const Lane& l : lanes_) {
      if (l.end > l.next) holes.emplace_back(l.next, l.end);
    }
    std::sort(holes.begin(), holes.end());

    std::uint64_t hole_total = 0;
    for (const auto& [b, e] : holes) hole_total += e - b;
    const std::uint64_t dense = high - hole_total;

    // Used runs = complement of the holes in [0, high).
    std::vector<std::pair<std::uint64_t, std::uint64_t>> used;
    used.reserve(holes.size() + 1);
    std::uint64_t pos = 0;
    for (const auto& [b, e] : holes) {
      if (b > pos) used.emplace_back(pos, b);
      pos = e;
    }
    if (high > pos) used.emplace_back(pos, high);

    // Fill hole positions below `dense` (ascending) from used positions at
    // or above `dense` (descending) — the counts match by construction.
    std::size_t ui = used.size();
    std::uint64_t src_hi = 0;  // one past the next source (descending)
    auto next_src = [&]() -> std::uint64_t {
      while (src_hi == 0 || src_hi <= dense ||
             (ui < used.size() && src_hi <= used[ui].first)) {
        --ui;
        src_hi = used[ui].second;
      }
      return --src_hi;
    };
    for (const auto& [b, e] : holes) {
      if (b >= dense) break;
      const std::uint64_t stop = std::min(e, dense);
      for (std::uint64_t d = b; d < stop; ++d) {
        data[d] = std::move(data[next_src()]);
      }
    }

    reset_round();
    return dense;
  }

  /// Abandons the round's grants without compacting (e.g. the caller
  /// consumed the sparse layout itself). Serial.
  void reset_round() noexcept {
    for (Lane& l : lanes_) l.next = l.end = 0;
    cursor_.store(0, std::memory_order_relaxed);
  }

  /// Lifetime totals across rounds (for profile passes). Serial or
  /// post-barrier only.
  [[nodiscard]] std::uint64_t grants() const noexcept {
    std::uint64_t t = 0;
    for (const Lane& l : lanes_) t += l.grants;
    return t;
  }
  /// Shared-cursor RMWs issued — the number the chunking exists to shrink.
  [[nodiscard]] std::uint64_t refills() const noexcept {
    std::uint64_t t = 0;
    for (const Lane& l : lanes_) t += l.refills;
    return t;
  }

 private:
  // Plain (non-atomic) members: a lane is owned by one thread at a time,
  // and the compacting thread reads them only after the team's barrier.
  struct alignas(util::kCacheLineSize) Lane {
    std::uint64_t next = 0;
    std::uint64_t end = 0;
    std::uint64_t grants = 0;   // lifetime
    std::uint64_t refills = 0;  // lifetime (arena + recycled-pool RMWs)
    std::uint64_t rnext = 0;    // recycled stash [rnext, rend) into recycled_
    std::uint64_t rend = 0;
    std::uint64_t rgen = 0;     // generation last observed dry
    std::uint64_t rgrants = 0;  // lifetime recycled grants
  };
  static_assert(sizeof(Lane) == util::kCacheLineSize);

  /// Serial: appends every ungranted recycled index to `out` and empties
  /// the pool. `out` may alias the future pool (stock_recycled folds the
  /// remainder into the fresh stock).
  void drain_into(std::vector<std::uint64_t>& out) {
    for (Lane& l : lanes_) {
      for (; l.rnext < l.rend; ++l.rnext) out.push_back(recycled_[l.rnext]);
      l.rnext = l.rend = 0;
    }
    const std::uint64_t claimed = std::min<std::uint64_t>(
        rcursor_.load(std::memory_order_relaxed), recycled_.size());
    out.insert(out.end(), recycled_.begin() + static_cast<std::ptrdiff_t>(claimed),
               recycled_.end());
    recycled_.clear();
    rcursor_.store(0, std::memory_order_relaxed);
  }

  std::vector<Lane> lanes_;
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor_{0};
  alignas(util::kCacheLineSize) std::atomic<std::uint64_t> rcursor_{0};
  std::uint64_t chunk_;
  /// Recycled-pool generation: bumped by stock_recycled so a dry pool
  /// costs each lane one RMW per restock, not one per grant. Written in
  /// serial code only; the team barrier publishes it to granting threads.
  std::uint64_t gen_ = 0;
  std::vector<std::uint64_t> recycled_;
};

}  // namespace crcw
