// Gatekeeper — the prefix-sum / atomic-increment baseline (paper §3, Fig 2).
//
// The scheme from Vishkin et al.'s XMT work: every contender atomically
// post-increments a per-target counter; the thread that observed 0 wins.
// Two structural costs distinguish it from CAS-LT (paper §5, §6):
//   1. every contender executes the atomic RMW even long after a winner
//      exists, serialising all P_PRAM contenders on a multicore;
//   2. the counter must be re-zeroed before every new concurrent-write
//      round — an O(N) sweep per round for N targets.
// The `try_acquire_skip` variant adds the pre-load early-out the paper
// suggests as a mitigation; it still requires the per-round reset.
#pragma once

#include <atomic>
#include <cstdint>

namespace crcw {

class Gatekeeper {
 public:
  Gatekeeper() noexcept = default;

  Gatekeeper(const Gatekeeper&) = delete;
  Gatekeeper& operator=(const Gatekeeper&) = delete;

  /// Paper Figure 2: unconditional atomic post-increment; 0 observed = win.
  bool try_acquire() noexcept {
    return count_.fetch_add(1, std::memory_order_acq_rel) == 0;
  }

  /// Mitigated variant: skip the RMW once a winner is visible. Note the
  /// skip read does not remove the per-round reset requirement.
  ///
  /// The skip load is acquire so it pairs with the release in reset(): a
  /// straggler admitted into the RMW because this load observed the freshly
  /// re-zeroed counter is ordered after everything the resetting thread did
  /// before re-opening the gate (in particular its reads of the previous
  /// round's payload). With a relaxed load, that admission decision would
  /// carry no ordering and the straggler's subsequent payload write could
  /// race those reads on weakly-ordered targets.
  bool try_acquire_skip() noexcept {
    if (count_.load(std::memory_order_acquire) != 0) return false;
    return count_.fetch_add(1, std::memory_order_acq_rel) == 0;
  }

  /// Number of contenders that executed the RMW so far this round. Useful
  /// for tests and for measuring serialisation pressure.
  [[nodiscard]] std::uint64_t contenders() const noexcept {
    return count_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool taken() const noexcept { return contenders() != 0; }

  /// Required before every new concurrent-write round (Fig 3(b) line 34-35).
  ///
  /// Release, not relaxed: the resetting thread has typically just consumed
  /// the previous round's payload, and the zero it publishes is what
  /// re-admits contenders. A relaxed store could be reordered ahead of those
  /// payload reads on weakly-ordered targets; a straggler whose skip-load
  /// (acquire) or fetch_add (acq_rel) observes the fresh 0 would then write
  /// the next payload concurrently with the old reads. Release/acquire on
  /// the counter closes exactly that window — and no more: the protocol
  /// still requires a synchronisation point (the PRAM step barrier) between
  /// the winner's payload write and any OTHER thread's dependent read,
  /// because the gate word only orders the resetting thread's own accesses.
  void reset() noexcept { count_.store(0, std::memory_order_release); }

 private:
  std::atomic<std::uint64_t> count_{0};
};

static_assert(sizeof(Gatekeeper) == sizeof(std::uint64_t));

}  // namespace crcw
