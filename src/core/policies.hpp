// Write-conflict-resolution policies.
//
// Every method the paper evaluates (and the critical-section strawman it
// dismisses) is expressed as a stateless policy over a per-target tag type,
// so one kernel template instantiates all the variants compared in §7.
//
// Policy contract:
//   tag_type                     per-target auxiliary state
//   static bool try_acquire(tag_type&, round_t)
//                                true ⇒ caller commits the write, exactly one
//                                contender per (tag, round) gets true
//                                (except NaivePolicy, which admits everyone)
//   static constexpr bool kNeedsRoundReset
//                                tag must be reset before each new round
//   static void reset(tag_type&) restore the tag to its pre-round state
//   static constexpr std::string_view kName
#pragma once

#include <mutex>
#include <string_view>
#include <type_traits>

#include "core/gatekeeper.hpp"
#include "core/round_tag.hpp"

namespace crcw {

/// Compile-time check that P implements the write-policy contract.
template <typename P>
concept WritePolicy = requires(typename P::tag_type& tag, round_t round) {
  { P::try_acquire(tag, round) } -> std::same_as<bool>;
  { P::kNeedsRoundReset } -> std::convertible_to<bool>;
  { P::reset(tag) };
  { P::kName } -> std::convertible_to<std::string_view>;
};

/// The paper's contribution: CAS-if-less-than on a round tag (Figure 1).
struct CasLtPolicy {
  using tag_type = RoundTag;
  static constexpr bool kNeedsRoundReset = false;
  static constexpr std::string_view kName = "caslt";

  static bool try_acquire(tag_type& tag, round_t round) noexcept {
    return tag.try_acquire(round);
  }
  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

/// CAS-LT with bounded retries — tolerant of racing distinct rounds.
struct CasLtRetryPolicy {
  using tag_type = RoundTag;
  static constexpr bool kNeedsRoundReset = false;
  static constexpr std::string_view kName = "caslt-retry";

  static bool try_acquire(tag_type& tag, round_t round) noexcept {
    return tag.try_acquire_retry(round);
  }
  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

/// CAS-LT without the pre-load skip; ablation A2 (see DESIGN.md §5).
struct CasLtNoSkipPolicy {
  using tag_type = RoundTag;
  static constexpr bool kNeedsRoundReset = false;
  static constexpr std::string_view kName = "caslt-noskip";

  static bool try_acquire(tag_type& tag, round_t round) noexcept {
    return tag.try_acquire_no_skip(round);
  }
  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

/// Prefix-sum / atomic-increment baseline (Figure 2). Ignores the round
/// argument; correctness relies on the per-round reset.
struct GatekeeperPolicy {
  using tag_type = Gatekeeper;
  static constexpr bool kNeedsRoundReset = true;
  static constexpr std::string_view kName = "gatekeeper";

  static bool try_acquire(tag_type& tag, round_t /*round*/) noexcept {
    return tag.try_acquire();
  }
  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

/// Gatekeeper with the pre-load early-out mitigation the paper mentions.
struct GatekeeperSkipPolicy {
  using tag_type = Gatekeeper;
  static constexpr bool kNeedsRoundReset = true;
  static constexpr std::string_view kName = "gatekeeper-skip";

  static bool try_acquire(tag_type& tag, round_t /*round*/) noexcept {
    return tag.try_acquire_skip();
  }
  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

/// Rodinia's method (paper §3): admit every contender and let the coherence
/// protocol serialise the stores. Safe ONLY for *common* concurrent writes
/// of single-transaction (word-sized) payloads; arbitrary or multi-word
/// writes through this policy can commit torn or mixed values.
struct NaivePolicy {
  /// No auxiliary state; an empty tag keeps the kernel templates uniform.
  struct tag_type {};
  static constexpr bool kNeedsRoundReset = false;
  static constexpr std::string_view kName = "naive";

  static bool try_acquire(tag_type& /*tag*/, round_t /*round*/) noexcept { return true; }
  static void reset(tag_type& /*tag*/) noexcept {}
};

/// The "trivial but bad" solution of §4: serialise contenders on a mutex and
/// replay the CAS-LT decision under the lock. Correct for every CW flavour;
/// exists as the pessimal baseline for the ablation benches.
struct CriticalPolicy {
  struct tag_type {
    std::mutex mutex;
    round_t last_round = kInitialRound;
  };
  static constexpr bool kNeedsRoundReset = false;
  static constexpr std::string_view kName = "critical";

  static bool try_acquire(tag_type& tag, round_t round) {
    const std::lock_guard<std::mutex> lock(tag.mutex);
    if (tag.last_round >= round) return false;
    tag.last_round = round;
    return true;
  }
  static void reset(tag_type& tag) {
    const std::lock_guard<std::mutex> lock(tag.mutex);
    tag.last_round = kInitialRound;
  }
};

static_assert(WritePolicy<CasLtPolicy>);
static_assert(WritePolicy<CasLtRetryPolicy>);
static_assert(WritePolicy<CasLtNoSkipPolicy>);
static_assert(WritePolicy<GatekeeperPolicy>);
static_assert(WritePolicy<GatekeeperSkipPolicy>);
static_assert(WritePolicy<NaivePolicy>);
static_assert(WritePolicy<CriticalPolicy>);

/// True when the policy admits exactly one winner per (tag, round); only
/// such policies are safe for arbitrary CW and multi-word payloads.
template <WritePolicy P>
inline constexpr bool kSingleWinner = !std::is_same_v<P, NaivePolicy>;

}  // namespace crcw
