// RoundTag — the auxiliary word behind CAS-LT concurrent writes (paper §5).
//
// One RoundTag guards one concurrent-write target. It stores the id of the
// last round in which a write to that target was committed
// (`lastRoundUpdated` in the paper's Figure 1). A thread wanting to perform
// the round-r concurrent write first *reads* the tag: if it already equals r
// the write happened and both the atomic and the write are skipped — this
// skip is what keeps CAS-LT O(P_phys) per contended cell instead of
// serialising all P_PRAM contenders. Otherwise the thread races a single
// compare-exchange from the observed older round to r; exactly one thread
// wins and performs the write.
//
// Unlike the gatekeeper scheme, a RoundTag never needs re-initialisation:
// advancing the round id invalidates all previous acquisitions for free.
#pragma once

#include <atomic>
#include <cstdint>

namespace crcw {

/// Identifier of a concurrent-write execution step. Distinct concurrent-write
/// steps targeting the same cell must use strictly increasing rounds; 64 bits
/// make wrap-around unreachable in practice.
using round_t = std::uint64_t;

/// Rounds start at kInitialRound; the first usable write round is
/// kInitialRound + 1 so a fresh tag never equals a live round.
inline constexpr round_t kInitialRound = 0;

class RoundTag {
 public:
  RoundTag() noexcept = default;
  explicit RoundTag(round_t initial) noexcept : last_round_(initial) {}

  // Tags guard shared state; copying one would fork that state.
  RoundTag(const RoundTag&) = delete;
  RoundTag& operator=(const RoundTag&) = delete;

  /// Paper-faithful CAS-LT (Figure 1): one relaxed load, at most one CAS.
  ///
  /// Returns true iff this thread won the round-`round` write. Requires that
  /// all tag updates use non-decreasing rounds (guaranteed when rounds come
  /// from a per-step counter with a barrier between steps). Under that
  /// contract a failed CAS means another contender committed this same
  /// round, so a single attempt suffices and the operation is wait-free.
  bool try_acquire(round_t round) noexcept {
    round_t current = last_round_.load(std::memory_order_relaxed);
    if (current >= round) return false;
    return last_round_.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                               std::memory_order_relaxed);
  }

  /// Robust variant: retries while the observed round is still older, so it
  /// admits exactly one winner even when *different* rounds race on the same
  /// tag (a misuse the strict contract forbids, but one a defensive library
  /// should survive). Lock-free rather than wait-free: each retry implies
  /// another thread made progress.
  bool try_acquire_retry(round_t round) noexcept {
    round_t current = last_round_.load(std::memory_order_relaxed);
    while (current < round) {
      if (last_round_.compare_exchange_weak(current, round, std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// Ablation variant (bench/ablation_memorder): no pre-load skip — every
  /// call issues at least one atomic RMW, mimicking the gatekeeper's
  /// unconditional fetch_add. The expected value now seeds from a fresh
  /// load; it used to seed from kInitialRound, which guaranteed the first
  /// CAS failed on any tag that had ever advanced, so the ablation measured
  /// "failed CAS + reload + retry" (two RMWs even uncontended) instead of
  /// "CAS-LT minus the skip". Post-fix cost: a winner pays one successful
  /// CAS; a late contender pays one same-value CAS (the RMW is still
  /// executed, but the tag can never move backward). This also repairs a
  /// semantic edge: the old seed made try_acquire_no_skip(kInitialRound)
  /// "win" round 0 on a fresh tag, a round that is never live.
  bool try_acquire_no_skip(round_t round) noexcept {
    round_t current = last_round_.load(std::memory_order_relaxed);
    for (;;) {
      // Committed rounds re-store the current value: pays the RMW without
      // regressing the tag. Live rounds race to install `round`.
      const round_t desired = current < round ? round : current;
      if (last_round_.compare_exchange_weak(current, desired, std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
        return current < round;
      }
    }
  }

  /// True iff the round-`round` write has already been committed.
  [[nodiscard]] bool committed(round_t round) const noexcept {
    return last_round_.load(std::memory_order_acquire) >= round;
  }

  [[nodiscard]] round_t last_round() const noexcept {
    return last_round_.load(std::memory_order_acquire);
  }

  /// Non-concurrent reset (e.g. between benchmark repetitions).
  void reset(round_t value = kInitialRound) noexcept {
    last_round_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<round_t> last_round_{kInitialRound};
};

static_assert(sizeof(RoundTag) == sizeof(round_t));

}  // namespace crcw
