// InstrumentedPolicy — a policy adapter that counts what each method
// actually executes, making the §6 asymptotic argument *measurable*:
//
//   attempts     calls to try_acquire (contenders arriving at the CW site)
//   atomics      atomic RMW instructions actually issued (the quantity the
//                gatekeeper scheme cannot bound and CAS-LT caps at one
//                successful CAS per round plus failed races)
//   wins         writes admitted
//
// Wrap any policy: WriteArbiter<InstrumentedPolicy<CasLtPolicy>>. Counters
// are global per instantiated policy type (thread-safe, relaxed); reset
// them between measurements with reset_counters(). Intended for tests and
// ablation benches, not for production kernels (the counters themselves
// cost RMWs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "core/policies.hpp"

namespace crcw {

struct InstrumentationCounters {
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> atomics{0};
  std::atomic<std::uint64_t> wins{0};

  void reset() noexcept {
    attempts.store(0, std::memory_order_relaxed);
    atomics.store(0, std::memory_order_relaxed);
    wins.store(0, std::memory_order_relaxed);
  }
};

namespace detail {

/// Counting replica of each base tag. The replicas re-implement the base
/// acquire logic so the atomic count reflects exactly what the method
/// would issue (wrapping the base call would hide its internal RMWs).
template <typename Base>
struct InstrumentedTag;

template <>
struct InstrumentedTag<CasLtPolicy> {
  std::atomic<round_t> last{kInitialRound};

  bool try_acquire(round_t round, InstrumentationCounters& c) noexcept {
    c.attempts.fetch_add(1, std::memory_order_relaxed);
    round_t current = last.load(std::memory_order_relaxed);
    if (current >= round) return false;  // the skip: NO atomic issued
    c.atomics.fetch_add(1, std::memory_order_relaxed);
    const bool won = last.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                                  std::memory_order_relaxed);
    if (won) c.wins.fetch_add(1, std::memory_order_relaxed);
    return won;
  }

  void reset() noexcept { last.store(kInitialRound, std::memory_order_relaxed); }
};

template <>
struct InstrumentedTag<GatekeeperPolicy> {
  std::atomic<std::uint64_t> count{0};

  bool try_acquire(round_t /*round*/, InstrumentationCounters& c) noexcept {
    c.attempts.fetch_add(1, std::memory_order_relaxed);
    c.atomics.fetch_add(1, std::memory_order_relaxed);  // EVERY contender RMWs
    const bool won = count.fetch_add(1, std::memory_order_acq_rel) == 0;
    if (won) c.wins.fetch_add(1, std::memory_order_relaxed);
    return won;
  }

  void reset() noexcept { count.store(0, std::memory_order_relaxed); }
};

template <>
struct InstrumentedTag<GatekeeperSkipPolicy> {
  std::atomic<std::uint64_t> count{0};

  bool try_acquire(round_t /*round*/, InstrumentationCounters& c) noexcept {
    c.attempts.fetch_add(1, std::memory_order_relaxed);
    if (count.load(std::memory_order_relaxed) != 0) return false;
    c.atomics.fetch_add(1, std::memory_order_relaxed);
    const bool won = count.fetch_add(1, std::memory_order_acq_rel) == 0;
    if (won) c.wins.fetch_add(1, std::memory_order_relaxed);
    return won;
  }

  void reset() noexcept { count.store(0, std::memory_order_relaxed); }
};

}  // namespace detail

template <typename Base>
struct InstrumentedPolicy {
  using tag_type = detail::InstrumentedTag<Base>;
  static constexpr bool kNeedsRoundReset = Base::kNeedsRoundReset;
  static constexpr std::string_view kName = "instrumented";

  static InstrumentationCounters& counters() {
    static InstrumentationCounters instance;
    return instance;
  }

  static void reset_counters() noexcept { counters().reset(); }

  static bool try_acquire(tag_type& tag, round_t round) noexcept {
    return tag.try_acquire(round, counters());
  }

  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

static_assert(WritePolicy<InstrumentedPolicy<CasLtPolicy>>);
static_assert(WritePolicy<InstrumentedPolicy<GatekeeperPolicy>>);
static_assert(WritePolicy<InstrumentedPolicy<GatekeeperSkipPolicy>>);

}  // namespace crcw
