// InstrumentedPolicy — a policy adapter that counts what each method
// actually executes, making the §6 asymptotic argument *measurable*:
//
//   attempts     calls to try_acquire (contenders arriving at the CW site)
//   atomics      atomic RMW instructions actually issued (the quantity the
//                gatekeeper scheme cannot bound and CAS-LT caps at one
//                successful CAS per round plus failed races)
//   wins         writes admitted
//
// Wrap any policy: WriteArbiter<InstrumentedPolicy<CasLtPolicy>>. Counters
// are INSTANCE-owned: each such arbiter constructs its own
// obs::ContentionSite (named after the base policy) and registers it with
// the current obs::MetricsRegistry — two instrumented arbiters in one
// process count independently, and a harness reads results through
// `arbiter.contention()` or a registry snapshot. Intended for tests and
// profiling runs, not for production kernels (the counters themselves cost
// RMWs — per-thread-sharded ones, but RMWs nonetheless).
#pragma once

#include <atomic>
#include <cstdint>
#include <string_view>

#include "core/policies.hpp"
#include "obs/metrics.hpp"

namespace crcw {

namespace detail {

/// Counting replica of each base tag. The replicas re-implement the base
/// acquire logic so the atomic count reflects exactly what the method
/// would issue (wrapping the base call would hide its internal RMWs).
template <typename Base>
struct InstrumentedTag;

template <>
struct InstrumentedTag<CasLtPolicy> {
  std::atomic<round_t> last{kInitialRound};

  bool try_acquire(round_t round, obs::ContentionSite& site) noexcept {
    site.count_attempt();
    round_t current = last.load(std::memory_order_relaxed);
    if (current >= round) return false;  // the skip: NO atomic issued
    site.count_atomic();
    const bool won = last.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                                  std::memory_order_relaxed);
    if (won) site.count_win();
    return won;
  }

  bool try_acquire_uncounted(round_t round) noexcept {
    round_t current = last.load(std::memory_order_relaxed);
    if (current >= round) return false;
    return last.compare_exchange_strong(current, round, std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
  }

  void reset() noexcept { last.store(kInitialRound, std::memory_order_relaxed); }
};

template <>
struct InstrumentedTag<GatekeeperPolicy> {
  std::atomic<std::uint64_t> count{0};

  bool try_acquire(round_t /*round*/, obs::ContentionSite& site) noexcept {
    site.count_attempt();
    site.count_atomic();  // EVERY contender RMWs
    const bool won = count.fetch_add(1, std::memory_order_acq_rel) == 0;
    if (won) site.count_win();
    return won;
  }

  bool try_acquire_uncounted(round_t /*round*/) noexcept {
    return count.fetch_add(1, std::memory_order_acq_rel) == 0;
  }

  void reset() noexcept { count.store(0, std::memory_order_relaxed); }
};

template <>
struct InstrumentedTag<GatekeeperSkipPolicy> {
  std::atomic<std::uint64_t> count{0};

  bool try_acquire(round_t /*round*/, obs::ContentionSite& site) noexcept {
    site.count_attempt();
    if (count.load(std::memory_order_relaxed) != 0) return false;
    site.count_atomic();
    const bool won = count.fetch_add(1, std::memory_order_acq_rel) == 0;
    if (won) site.count_win();
    return won;
  }

  bool try_acquire_uncounted(round_t /*round*/) noexcept {
    if (count.load(std::memory_order_relaxed) != 0) return false;
    return count.fetch_add(1, std::memory_order_acq_rel) == 0;
  }

  void reset() noexcept { count.store(0, std::memory_order_relaxed); }
};

}  // namespace detail

template <typename Base>
struct InstrumentedPolicy {
  using tag_type = detail::InstrumentedTag<Base>;
  static constexpr bool kNeedsRoundReset = Base::kNeedsRoundReset;
  /// Marks the policy for WriteArbiter's InstrumentedWritePolicy detection:
  /// the arbiter owns a ContentionSite and calls the 3-argument overload.
  static constexpr bool kInstrumented = true;
  /// Sites inherit the base policy's name, so registry snapshots and the
  /// BENCH_*.json "policy" field line up.
  static constexpr std::string_view kName = Base::kName;

  /// The counted path — what WriteArbiter::acquire_at routes through.
  static bool try_acquire(tag_type& tag, round_t round, obs::ContentionSite& site) noexcept {
    return tag.try_acquire(round, site);
  }

  /// Uncounted fallback satisfying the WritePolicy concept, for raw-tag
  /// users (ConWriteCell etc.) that carry no site. Same acquire semantics,
  /// no telemetry.
  static bool try_acquire(tag_type& tag, round_t round) noexcept {
    return tag.try_acquire_uncounted(round);
  }

  static void reset(tag_type& tag) noexcept { tag.reset(); }
};

static_assert(WritePolicy<InstrumentedPolicy<CasLtPolicy>>);
static_assert(WritePolicy<InstrumentedPolicy<GatekeeperPolicy>>);
static_assert(WritePolicy<InstrumentedPolicy<GatekeeperSkipPolicy>>);

}  // namespace crcw
