// ConWriteCell — a single concurrent-write target with its resolution tag.
//
// Bundles one payload with one policy tag so a concurrent write reads as one
// call: `cell.try_write(round, v)`. The payload itself is a plain (non-
// atomic) T: the policy admits exactly one writer per round, and the PRAM
// synchronisation point (an OpenMP barrier in practice) publishes the value
// to subsequent dependent reads — the exact contract of paper §5.
#pragma once

#include <type_traits>
#include <utility>

#include "core/policies.hpp"
#include "util/sanitizer.hpp"

namespace crcw {

template <typename T, WritePolicy Policy = CasLtPolicy>
class ConWriteCell {
  // NaivePolicy admits every contender; racing non-atomic stores of a
  // multi-word T would be a data race with torn results (§4). ConWriteSlot
  // exists to demonstrate that failure mode deliberately.
  static_assert(kSingleWinner<Policy> ||
                    (std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(void*)),
                "NaivePolicy is only safe for common CW of word-sized payloads");

 public:
  using value_type = T;
  using policy_type = Policy;

  ConWriteCell() = default;
  explicit ConWriteCell(T initial) : value_(std::move(initial)) {}

  ConWriteCell(const ConWriteCell&) = delete;
  ConWriteCell& operator=(const ConWriteCell&) = delete;

  /// Attempts the round-`round` concurrent write of `v`. Returns true iff
  /// this thread was selected and the value was stored.
  bool try_write(round_t round, const T& v) {
    if (!Policy::try_acquire(tag_, round)) return false;
    // Benign under TSan: single policy winner, published by the step barrier.
    const util::TsanIgnoreWritesScope published_by_barrier;
    value_ = v;
    return true;
  }

  bool try_write(round_t round, T&& v) {
    if (!Policy::try_acquire(tag_, round)) return false;
    const util::TsanIgnoreWritesScope published_by_barrier;
    value_ = std::move(v);
    return true;
  }

  /// Winner-computes form: the factory runs only in the winning thread, so
  /// expensive payload construction is skipped by every loser.
  template <typename Factory>
    requires std::is_invocable_r_v<T, Factory>
  bool try_write_with(round_t round, Factory&& make) {
    if (!Policy::try_acquire(tag_, round)) return false;
    // Run the factory outside the ignore window: only the store into the
    // barrier-published payload is the documented benign race.
    T made = std::forward<Factory>(make)();
    const util::TsanIgnoreWritesScope published_by_barrier;
    value_ = std::move(made);
    return true;
  }

  /// Reads the payload. Caller must be past a synchronisation point that
  /// ordered the winning write (PRAM: reads precede writes within a step).
  [[nodiscard]] const T& read() const noexcept { return value_; }

  /// Mutable access for serial phases (initialisation, verification).
  [[nodiscard]] T& value() noexcept { return value_; }

  [[nodiscard]] typename Policy::tag_type& tag() noexcept { return tag_; }

  void reset_tag() { Policy::reset(tag_); }

 private:
  typename Policy::tag_type tag_{};
  T value_{};
};

}  // namespace crcw
