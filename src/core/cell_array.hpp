// ConWriteArray — an array of concurrent-write targets sharing one round.
//
// The shape every kernel in src/algorithms builds by hand: a payload array,
// a parallel tag array, and a round counter advanced once per lock-step
// time step. ConWriteArray packages it so application code reads like the
// PRAM pseudo-code:
//
//   crcw::ConWriteArray<Record> cells(n);
//   for (each time step) {
//     cells.begin_round();                        // serial, between steps
//     #pragma omp parallel for
//     for (...) if (cells.try_write(u, record)) { ... }
//     // barrier = synchronisation point; then cells[u] is stable
//   }
//
// For gatekeeper-family policies begin_round performs the required O(N)
// re-initialisation (optionally in parallel via begin_round_parallel); for
// CAS-LT it is a single increment — the §6 cost difference, embodied.
#pragma once

#include <omp.h>

#include <cstddef>
#include <utility>

#include "core/arbiter.hpp"
#include "core/policies.hpp"
#include "util/aligned_buffer.hpp"
#include "util/sanitizer.hpp"

namespace crcw {

template <typename T, WritePolicy Policy = CasLtPolicy,
          TagLayout Layout = TagLayout::kPacked>
class ConWriteArray {
  static_assert(kSingleWinner<Policy>,
                "ConWriteArray requires a single-winner policy; for naive "
                "common writes use a plain array");

 public:
  using value_type = T;
  using policy_type = Policy;

  ConWriteArray() = default;

  explicit ConWriteArray(std::size_t n, T initial = T{})
      : values_(n, initial), arbiter_(n) {}

  /// Perf-layer construction: ArbiterConfig selects touch tracking (for
  /// begin_round_sparse) and first-touch placement; the payload array
  /// follows the same placement as the tags.
  ConWriteArray(std::size_t n, const ArbiterConfig& cfg, T initial = T{})
      : values_(n, initial, cfg.first_touch, cfg.first_touch_threads),
        arbiter_(n, cfg) {}

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] round_t round() const noexcept { return arbiter_.round(); }

  /// Starts the next concurrent-write step (serial; call between parallel
  /// regions). Returns the new round id.
  round_t begin_round() { return arbiter_.next_round(ResetMode::kPolicy).round(); }

  /// Same, but runs the policy's per-round tag reset (if any) work-shared
  /// over OpenMP threads — what the Fig 3(b) kernel does on lines 34-35.
  round_t begin_round_parallel(int threads = 0) {
    if constexpr (Policy::kNeedsRoundReset) {
      auto scope = arbiter_.next_round(ResetMode::kCaller);
      arbiter_.reset_tags_parallel(threads);
      return scope.round();
    } else {
      return arbiter_.next_round(ResetMode::kNone).round();
    }
  }

  /// Same, but sweeps only last round's touched tags — O(#writes) instead
  /// of Θ(N). Needs construction with TouchTracking::kEnabled (falls back
  /// to the full sweep otherwise); no-op increment for reset-free policies.
  round_t begin_round_sparse(int threads = 0) {
    if constexpr (Policy::kNeedsRoundReset) {
      auto scope = arbiter_.next_round(ResetMode::kCaller);
      arbiter_.reset_tags_sparse(threads);
      return scope.round();
    } else {
      return arbiter_.next_round(ResetMode::kNone).round();
    }
  }

  /// Concurrent write of `v` into cell i under the current round; true iff
  /// the calling thread won.
  bool try_write(std::size_t i, const T& v) {
    if (!arbiter_.try_acquire(i)) return false;
    // Benign under TSan: single arbiter winner per (cell, round); the step
    // barrier publishes the store (same annotation discipline as ConWriteCell).
    const util::TsanIgnoreWritesScope published_by_barrier;
    values_[i] = v;
    return true;
  }

  bool try_write(std::size_t i, T&& v) {
    if (!arbiter_.try_acquire(i)) return false;
    const util::TsanIgnoreWritesScope published_by_barrier;
    values_[i] = std::move(v);
    return true;
  }

  /// Explicit-round overload (round ids managed by the caller, e.g. the
  /// BFS level counter).
  bool try_write(std::size_t i, round_t round, const T& v) {
    if (!arbiter_.acquire_at(i, round)) return false;
    const util::TsanIgnoreWritesScope published_by_barrier;
    values_[i] = v;
    return true;
  }

  /// Winner-computes form.
  template <typename Factory>
    requires std::is_invocable_r_v<T, Factory>
  bool try_write_with(std::size_t i, Factory&& make) {
    if (!arbiter_.try_acquire(i)) return false;
    T made = std::forward<Factory>(make)();
    const util::TsanIgnoreWritesScope published_by_barrier;
    values_[i] = std::move(made);
    return true;
  }

  /// True iff cell i was already written this round (cheap probe; CAS-LT
  /// reads the tag, gatekeeper reads the counter).
  [[nodiscard]] bool written(std::size_t i) {
    if constexpr (std::is_same_v<Policy, CasLtPolicy> ||
                  std::is_same_v<Policy, CasLtRetryPolicy> ||
                  std::is_same_v<Policy, CasLtNoSkipPolicy>) {
      return arbiter_.tag(i).committed(arbiter_.round());
    } else if constexpr (std::is_same_v<Policy, GatekeeperPolicy> ||
                         std::is_same_v<Policy, GatekeeperSkipPolicy>) {
      return arbiter_.tag(i).taken();
    } else {
      return false;  // CriticalPolicy: no cheap probe; callers re-acquire
    }
  }

  /// Post-synchronisation read access.
  [[nodiscard]] const T& operator[](std::size_t i) const { return values_[i]; }
  [[nodiscard]] T& value(std::size_t i) { return values_[i]; }
  [[nodiscard]] const util::AlignedBuffer<T>& values() const noexcept { return values_; }

  /// Full reset: tags and round to fresh (payloads untouched).
  void reset_tags() { arbiter_.reset_all(); }

 private:
  // Cache-line-aligned (not std::vector) so the payload pages can be
  // first-touched by the team that will write them, like the tags.
  util::AlignedBuffer<T> values_;
  WriteArbiter<Policy, Layout> arbiter_;
};

}  // namespace crcw
