// Combining atomics: fetch-min / fetch-max for types without native RMW.
//
// Priority CRCW resolution "processor writing the smallest value wins" (§2)
// reduces to an atomic minimum over the offered keys. x86 has no fetch_min;
// these CAS loops implement it with the standard early-out (no RMW once the
// current value is already at least as good), which mirrors the CAS-LT
// skip-on-committed idea: contenders that cannot win stop touching the line.
#pragma once

#include <atomic>
#include <concepts>
#include <type_traits>

namespace crcw {

/// Any atomic view over a totally ordered value: std::atomic<T> or
/// std::atomic_ref<T> (the kernels use atomic_ref over plain arrays).
template <typename A>
concept AtomicOrdered = requires(A& a, typename A::value_type v) {
  { a.load(std::memory_order_relaxed) } -> std::same_as<typename A::value_type>;
  {
    a.compare_exchange_weak(v, v, std::memory_order_acq_rel, std::memory_order_relaxed)
  } -> std::same_as<bool>;
  requires std::totally_ordered<typename A::value_type>;
};

/// Atomically sets *a = min(*a, value). Returns true iff `value` became the
/// new minimum (i.e. this caller "won" at the time of the update).
template <typename A>
  requires AtomicOrdered<std::remove_cvref_t<A>>
bool atomic_fetch_min(A&& a, typename std::remove_cvref_t<A>::value_type value,
                      std::memory_order order = std::memory_order_acq_rel) noexcept {
  auto current = a.load(std::memory_order_relaxed);
  while (value < current) {
    if (a.compare_exchange_weak(current, value, order, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically sets *a = max(*a, value). Returns true iff `value` became the
/// new maximum.
template <typename A>
  requires AtomicOrdered<std::remove_cvref_t<A>>
bool atomic_fetch_max(A&& a, typename std::remove_cvref_t<A>::value_type value,
                      std::memory_order order = std::memory_order_acq_rel) noexcept {
  auto current = a.load(std::memory_order_relaxed);
  while (current < value) {
    if (a.compare_exchange_weak(current, value, order, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Generic combining update: *a = op(*a, value) with an `improves` predicate
/// deciding whether the RMW is still worth attempting. Used to build other
/// reduction-style concurrent writes (e.g. saturating adds).
template <typename A, typename Op, typename Improves>
bool atomic_combine(A&& a, typename std::remove_cvref_t<A>::value_type value, Op op,
                    Improves improves,
                    std::memory_order order = std::memory_order_acq_rel) {
  auto current = a.load(std::memory_order_relaxed);
  while (improves(current, value)) {
    const auto next = op(current, value);
    if (a.compare_exchange_weak(current, next, order, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// A cell whose concurrent writes combine by minimum — equivalent to a
/// Priority(min-value) CRCW write that needs no second phase because the key
/// *is* the payload.
template <typename T>
class MinCell {
 public:
  explicit MinCell(T initial) : value_(initial) {}

  bool offer(T v) noexcept { return atomic_fetch_min(value_, v); }

  [[nodiscard]] T read() const noexcept { return value_.load(std::memory_order_acquire); }

  void reset(T v) noexcept { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<T> value_;
};

template <typename T>
class MaxCell {
 public:
  explicit MaxCell(T initial) : value_(initial) {}

  bool offer(T v) noexcept { return atomic_fetch_max(value_, v); }

  [[nodiscard]] T read() const noexcept { return value_.load(std::memory_order_acquire); }

  void reset(T v) noexcept { value_.store(v, std::memory_order_relaxed); }

 private:
  std::atomic<T> value_;
};

}  // namespace crcw
