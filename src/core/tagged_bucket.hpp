// TaggedBucket — the bucket-claim generalisation of the round-tag.
//
// A RoundTag (round_tag.hpp) arbitrates "many writers, one winner" for a
// target whose identity is fixed at construction. A hash bucket adds one
// twist: the contended word is the *identity of the target itself* — the
// key that owns the bucket. The claim protocol is the same CAS-or-observe
// shape as CAS-LT, with the sentinel kEmptyKey playing the role of the
// stale round: one compare-exchange from empty to the candidate key admits
// exactly one winner, and every loser learns wait-free (from the CAS's
// loaded value, no retry) whether its own key committed — the arbitrary-CW
// contract of paper §5 applied to the insert race of a concurrent hash
// table (see src/ds/).
//
// The bucket pairs that claim word with a LiveTag so that, once a key owns
// the bucket, per-round value writes keep using paper-faithful CAS-LT (one
// winner per key per round; the value itself is barrier-published like
// ConWriteCell's payload). The LiveTag extends the RoundTag with one
// liveness bit packed into the same word, which is what makes *erase* a
// first-class concurrent write: an erase and an upsert targeting the same
// key in the same round race the same single compare-exchange, exactly one
// commits, and the committed word carries both the round and whether the
// key survived it. A separate liveness flag would need a second store and
// would let a reader observe "round committed" without knowing the
// outcome; packing closes that window at the cost of halving the round
// space to 2^63 (still unreachable).
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>

#include "core/round_tag.hpp"

namespace crcw {

/// Outcome of a bucket claim, from the claiming thread's point of view.
enum class BucketClaim {
  kWon,    ///< this thread installed its key; the bucket is now its target
  kHeld,   ///< the bucket already holds the caller's key (it lost the per-key
           ///< race — or won it in an earlier call; either way the key is in)
  kOther,  ///< a different key owns the bucket: probe on
};

/// CAS-LT round arbitration with a liveness bit riding in the same word:
/// packed = (last_round << 1) | live. A fresh tag is (kInitialRound, live)
/// — a claimed bucket is born live, so the build-phase insert fast path
/// (claim CAS + barrier-published value store) needs no tag RMW at all;
/// the bit only moves when an erase tombstones the entry or a later write
/// revives it. The embedding table's claim discipline guarantees every
/// claim is followed by exactly one committed write before the barrier,
/// so "live" never outruns "has a value" where reads are allowed.
///
/// try_acquire keeps the RoundTag contract (pre-load skip when the round
/// is closed, at most one CAS, wait-free under the strictly-increasing-
/// rounds-across-barriers discipline) and additionally commits the
/// caller's liveness verdict: an upsert acquires with live=true, an erase
/// with live=false, and whichever CAS lands first owns the (key, round)
/// write. The winner also learns the *previous* liveness from the CAS's
/// expected value, which is what lets tables keep exact live/tombstone
/// counts without a second pass.
class LiveTag {
 public:
  LiveTag() noexcept = default;
  LiveTag(const LiveTag&) = delete;
  LiveTag& operator=(const LiveTag&) = delete;

  /// One winner per round; `live` is the liveness this write commits.
  /// `was_live` (winner only) reports the liveness the write replaced.
  bool try_acquire(round_t round, bool live, bool& was_live) noexcept {
    std::uint64_t current = packed_.load(std::memory_order_relaxed);
    if ((current >> 1) >= round) return false;  // closed round: skip the RMW
    const std::uint64_t desired = (round << 1) | static_cast<std::uint64_t>(live);
    if (packed_.compare_exchange_strong(current, desired, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      was_live = (current & 1) != 0;
      return true;
    }
    // A failed CAS means another contender committed this same round
    // (rounds are non-decreasing), so one attempt suffices — same
    // wait-free argument as RoundTag::try_acquire.
    return false;
  }

  /// RoundTag-compatible shape: a plain value write (live), outcome of the
  /// replaced entry discarded.
  bool try_acquire(round_t round) noexcept {
    bool was_live = false;
    return try_acquire(round, true, was_live);
  }

  /// Round-free liveness flip for build-phase first-writer-wins inserts
  /// (insert_first has no round to acquire): an idempotent fetch_or, so
  /// racing revivers of the same tombstoned key arbitrate on the bit
  /// itself. Returns true iff this call flipped dead → live.
  bool mark_live() noexcept {
    const std::uint64_t prev = packed_.fetch_or(1, std::memory_order_acq_rel);
    return (prev & 1) == 0;
  }

  [[nodiscard]] round_t last_round() const noexcept {
    return packed_.load(std::memory_order_acquire) >> 1;
  }

  /// True iff the last committed write kept the key alive. Like the round,
  /// this is barrier-published truth: read it post-barrier (or pre-round,
  /// serially) to classify the bucket.
  [[nodiscard]] bool live() const noexcept {
    return (packed_.load(std::memory_order_acquire) & 1) != 0;
  }

  /// True iff the round-`round` write has already been committed.
  [[nodiscard]] bool committed(round_t round) const noexcept {
    return last_round() >= round;
  }

  /// The raw (round, live) word — migration sweeps carry it wholesale so a
  /// rebuilt table preserves round monotonicity for surviving keys.
  [[nodiscard]] std::uint64_t packed() const noexcept {
    return packed_.load(std::memory_order_acquire);
  }

  /// Non-concurrent restore of a carried word (resize target, inside the
  /// migration window where no round is running).
  void restore(std::uint64_t packed) noexcept {
    packed_.store(packed, std::memory_order_relaxed);
  }

  /// The packed word a (round, live) pair would commit — what migration
  /// carries wholesale and what snapshot restore reconstructs from a
  /// serialised entry's round. Keeping the layout here means no caller
  /// hardcodes the shift-and-bit encoding.
  [[nodiscard]] static constexpr std::uint64_t pack(round_t round, bool live) noexcept {
    return (round << 1) | static_cast<std::uint64_t>(live);
  }

  /// Non-concurrent re-initialisation: round kInitialRound, live (the
  /// fresh state — see the class comment on the born-live polarity).
  void reset() noexcept { packed_.store(kFreshPacked, std::memory_order_relaxed); }

 private:
  static constexpr std::uint64_t kFreshPacked = (kInitialRound << 1) | 1u;

  std::atomic<std::uint64_t> packed_{kFreshPacked};
};

static_assert(sizeof(LiveTag) == sizeof(std::uint64_t));

/// One concurrent-write-arbitrated hash bucket: an atomically claimable key
/// plus a LiveTag guarding per-round writes (and erases) of whatever
/// payload the embedding table stores beside it. Key must be an unsigned
/// integer; the all-ones value is reserved as the empty sentinel.
template <typename Key>
  requires std::unsigned_integral<Key>
class TaggedBucket {
 public:
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  TaggedBucket() noexcept = default;
  TaggedBucket(const TaggedBucket&) = delete;
  TaggedBucket& operator=(const TaggedBucket&) = delete;

  /// One-shot arbitration for bucket ownership: at most one CAS, wait-free.
  /// kWon means this call transitioned empty → k; the caller owns any
  /// non-atomic payload initialisation that follows (publish it with the
  /// step barrier, exactly like a ConWriteCell winner).
  BucketClaim claim(Key k) noexcept {
    Key current = key_.load(std::memory_order_acquire);
    if (current == kEmptyKey) {
      if (key_.compare_exchange_strong(current, k, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return BucketClaim::kWon;
      }
      // CAS failure reloaded `current` with the winning key: losers observe
      // the committed claim without retrying.
    }
    return current == k ? BucketClaim::kHeld : BucketClaim::kOther;
  }

  /// The owning key, or kEmptyKey. An acquire load, so a reader that sees
  /// key k also sees everything the claimer published before the claim —
  /// but payload written *after* a claim is barrier-published, not
  /// load-published; read it post-barrier only.
  [[nodiscard]] Key key() const noexcept { return key_.load(std::memory_order_acquire); }

  [[nodiscard]] bool empty() const noexcept { return key() == kEmptyKey; }

  /// The per-round value/erase arbitration tag (CAS-LT; see LiveTag).
  [[nodiscard]] LiveTag& tag() noexcept { return tag_; }
  [[nodiscard]] const LiveTag& tag() const noexcept { return tag_; }

  /// A claimed bucket whose latest committed write was an erase — the key
  /// word stays claimed (probe chains must keep walking through it), only
  /// the entry is gone.
  [[nodiscard]] bool dead() const noexcept { return !empty() && !tag_.live(); }

  /// Non-concurrent re-initialisation (table reset between runs; the
  /// migration target of a resize is freshly constructed instead).
  void reset() noexcept {
    key_.store(kEmptyKey, std::memory_order_relaxed);
    tag_.reset();
  }

 private:
  std::atomic<Key> key_{kEmptyKey};
  LiveTag tag_;
};

static_assert(sizeof(TaggedBucket<std::uint64_t>) == 2 * sizeof(std::uint64_t));

}  // namespace crcw
