// TaggedBucket — the bucket-claim generalisation of the round-tag.
//
// A RoundTag (round_tag.hpp) arbitrates "many writers, one winner" for a
// target whose identity is fixed at construction. A hash bucket adds one
// twist: the contended word is the *identity of the target itself* — the
// key that owns the bucket. The claim protocol is the same CAS-or-observe
// shape as CAS-LT, with the sentinel kEmptyKey playing the role of the
// stale round: one compare-exchange from empty to the candidate key admits
// exactly one winner, and every loser learns wait-free (from the CAS's
// loaded value, no retry) whether its own key committed — the arbitrary-CW
// contract of paper §5 applied to the insert race of a concurrent hash
// table (see src/ds/).
//
// The bucket pairs that claim word with a RoundTag so that, once a key
// owns the bucket, per-round value writes keep using paper-faithful CAS-LT
// (one winner per key per round; the value itself is barrier-published
// like ConWriteCell's payload).
#pragma once

#include <atomic>
#include <concepts>
#include <limits>

#include "core/round_tag.hpp"

namespace crcw {

/// Outcome of a bucket claim, from the claiming thread's point of view.
enum class BucketClaim {
  kWon,    ///< this thread installed its key; the bucket is now its target
  kHeld,   ///< the bucket already holds the caller's key (it lost the per-key
           ///< race — or won it in an earlier call; either way the key is in)
  kOther,  ///< a different key owns the bucket: probe on
};

/// One concurrent-write-arbitrated hash bucket: an atomically claimable key
/// plus a RoundTag guarding per-round writes of whatever payload the
/// embedding table stores beside it. Key must be an unsigned integer; the
/// all-ones value is reserved as the empty sentinel.
template <typename Key>
  requires std::unsigned_integral<Key>
class TaggedBucket {
 public:
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  TaggedBucket() noexcept = default;
  TaggedBucket(const TaggedBucket&) = delete;
  TaggedBucket& operator=(const TaggedBucket&) = delete;

  /// One-shot arbitration for bucket ownership: at most one CAS, wait-free.
  /// kWon means this call transitioned empty → k; the caller owns any
  /// non-atomic payload initialisation that follows (publish it with the
  /// step barrier, exactly like a ConWriteCell winner).
  BucketClaim claim(Key k) noexcept {
    Key current = key_.load(std::memory_order_acquire);
    if (current == kEmptyKey) {
      if (key_.compare_exchange_strong(current, k, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        return BucketClaim::kWon;
      }
      // CAS failure reloaded `current` with the winning key: losers observe
      // the committed claim without retrying.
    }
    return current == k ? BucketClaim::kHeld : BucketClaim::kOther;
  }

  /// The owning key, or kEmptyKey. An acquire load, so a reader that sees
  /// key k also sees everything the claimer published before the claim —
  /// but payload written *after* a claim is barrier-published, not
  /// load-published; read it post-barrier only.
  [[nodiscard]] Key key() const noexcept { return key_.load(std::memory_order_acquire); }

  [[nodiscard]] bool empty() const noexcept { return key() == kEmptyKey; }

  /// The per-round value arbitration tag (CAS-LT; see RoundTag).
  [[nodiscard]] RoundTag& tag() noexcept { return tag_; }
  [[nodiscard]] const RoundTag& tag() const noexcept { return tag_; }

  /// Non-concurrent re-initialisation (table reset between runs; the
  /// migration target of a resize is freshly constructed instead).
  void reset() noexcept {
    key_.store(kEmptyKey, std::memory_order_relaxed);
    tag_.reset();
  }

 private:
  std::atomic<Key> key_{kEmptyKey};
  RoundTag tag_;
};

static_assert(sizeof(TaggedBucket<std::uint64_t>) == 2 * sizeof(std::uint64_t));

}  // namespace crcw
