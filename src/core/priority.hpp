// Priority CRCW concurrent writes.
//
// The strongest resolution rule of §2: the contender with the best key
// (minimum rank or minimum value) commits. Two implementations:
//
//  * PriorityCell<K, T> — the general two-phase protocol. Phase 1: every
//    contender offers its key via atomic fetch-min. Synchronisation point.
//    Phase 2: the contender whose key equals the cell's best re-presents it
//    and commits the (arbitrarily large) payload. Works for any payload,
//    costs one extra step — consistent with the classical O(1)-step
//    simulation of Priority on Arbitrary hardware primitives.
//
//  * PackedPriorityCell — single-phase for payloads that fit 32 bits: key
//    and payload are packed into one 64-bit word and fetch-min resolves
//    winner and write together. This is the trick Borůvka-style MSF kernels
//    use to pick the minimum-weight edge per component in one pass.
#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>

#include "core/combining.hpp"
#include "util/sanitizer.hpp"

namespace crcw {

template <typename Key, typename T>
  requires std::totally_ordered<Key>
class PriorityCell {
 public:
  PriorityCell() : best_(std::numeric_limits<Key>::max()) {}
  explicit PriorityCell(T initial)
      : best_(std::numeric_limits<Key>::max()), value_(std::move(initial)) {}

  PriorityCell(const PriorityCell&) = delete;
  PriorityCell& operator=(const PriorityCell&) = delete;

  /// Phase 1: register `key` as a contender. Keys must be unique per round
  /// (e.g. the processor rank, or value ⊕ tie-break) or the commit phase may
  /// admit several writers of the same best key.
  void offer(Key key) noexcept { atomic_fetch_min(best_, key); }

  /// Phase 2 (after a synchronisation point): commit iff `key` won phase 1.
  /// Returns true for exactly the contender holding the minimum key.
  bool try_commit(Key key, const T& v) {
    if (best_.load(std::memory_order_acquire) != key) return false;
    // Benign under TSan: keys are unique per round, so exactly one
    // contender passes the check; the post-phase barrier publishes it.
    const util::TsanIgnoreWritesScope published_by_barrier;
    value_ = v;
    return true;
  }

  [[nodiscard]] Key best_key() const noexcept {
    return best_.load(std::memory_order_acquire);
  }

  /// True iff no contender offered a key this round.
  [[nodiscard]] bool untouched() const noexcept {
    return best_key() == std::numeric_limits<Key>::max();
  }

  [[nodiscard]] const T& read() const noexcept { return value_; }

  /// Per-round reset (priority cells, like gatekeepers, are round-stateful).
  void reset() noexcept {
    best_.store(std::numeric_limits<Key>::max(), std::memory_order_relaxed);
  }

 private:
  std::atomic<Key> best_;
  T value_{};
};

/// One-phase priority write of a 32-bit payload under a 32-bit key: the key
/// occupies the high half so 64-bit integer order equals key order (payload
/// breaks ties deterministically).
class PackedPriorityCell {
 public:
  static constexpr std::uint64_t kEmpty = std::numeric_limits<std::uint64_t>::max();

  PackedPriorityCell() : packed_(kEmpty) {}

  PackedPriorityCell(const PackedPriorityCell&) = delete;
  PackedPriorityCell& operator=(const PackedPriorityCell&) = delete;

  /// Offers (key, payload); the minimum key wins immediately. Returns true
  /// iff this offer improved the cell.
  bool offer(std::uint32_t key, std::uint32_t payload) noexcept {
    return atomic_fetch_min(packed_, pack(key, payload));
  }

  [[nodiscard]] bool untouched() const noexcept { return load() == kEmpty; }
  [[nodiscard]] std::uint32_t key() const noexcept {
    return static_cast<std::uint32_t>(load() >> 32);
  }
  [[nodiscard]] std::uint32_t payload() const noexcept {
    return static_cast<std::uint32_t>(load());
  }

  void reset() noexcept { packed_.store(kEmpty, std::memory_order_relaxed); }

  static constexpr std::uint64_t pack(std::uint32_t key, std::uint32_t payload) noexcept {
    return (static_cast<std::uint64_t>(key) << 32) | payload;
  }

 private:
  [[nodiscard]] std::uint64_t load() const noexcept {
    return packed_.load(std::memory_order_acquire);
  }

  std::atomic<std::uint64_t> packed_;
};

}  // namespace crcw
