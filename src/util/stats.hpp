// Descriptive statistics used by the benchmark harness.
//
// The paper reports per-point execution times plus maximum and geometric-mean
// speedups across a sweep (§7.2); Summary and geometric_mean implement
// exactly those aggregations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace crcw::util {

/// Streaming mean/variance (Welford) plus min/max.
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics and moments of a fixed sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Summarises a sample (copies + sorts internally; input order preserved).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Geometric mean; requires every element > 0 (throws std::invalid_argument
/// otherwise). Returns 0 for an empty span, matching "no data".
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Interpolated quantile (q in [0,1]) of an already **sorted** sample.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Element-wise ratios a[i]/b[i]; used for per-point speedups.
[[nodiscard]] std::vector<double> ratios(std::span<const double> numer,
                                         std::span<const double> denom);

}  // namespace crcw::util
