// Fixed-size concurrent bitset.
//
// BFS-style kernels keep a `visited` array that many threads set at once; a
// bit-packed atomic set is 8× denser than byte flags and test_and_set gives
// a free "was I first?" answer (itself a form of concurrent-write
// resolution for boolean payloads).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace crcw::util {

class AtomicBitset {
 public:
  AtomicBitset() = default;

  explicit AtomicBitset(std::size_t bits)
      : bits_(bits), words_((bits + kBitsPerWord - 1) / kBitsPerWord) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  /// Relaxed read; pair with an external barrier before dependent reads,
  /// mirroring the PRAM synchronisation-point contract.
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i / kBitsPerWord].load(std::memory_order_relaxed) & mask(i)) != 0;
  }

  void set(std::size_t i) noexcept {
    words_[i / kBitsPerWord].fetch_or(mask(i), std::memory_order_relaxed);
  }

  /// Atomically sets bit i; returns true iff this call changed it (first
  /// setter wins — an arbitrary concurrent write of `true`).
  bool test_and_set(std::size_t i) noexcept {
    const std::uint64_t prev =
        words_[i / kBitsPerWord].fetch_or(mask(i), std::memory_order_acq_rel);
    return (prev & mask(i)) == 0;
  }

  void reset(std::size_t i) noexcept {
    words_[i / kBitsPerWord].fetch_and(~mask(i), std::memory_order_relaxed);
  }

  /// Atomically clears bit i; returns true iff this call changed it (first
  /// clearer wins — the erase-side dual of test_and_set).
  bool test_and_reset(std::size_t i) noexcept {
    const std::uint64_t prev =
        words_[i / kBitsPerWord].fetch_and(~mask(i), std::memory_order_acq_rel);
    return (prev & mask(i)) != 0;
  }

  /// Non-atomic whole-set clear; callers must quiesce writers first.
  void clear() noexcept {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const auto& w : words_) {
      total += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_relaxed)));
    }
    return total;
  }

 private:
  static constexpr std::size_t kBitsPerWord = 64;

  static constexpr std::uint64_t mask(std::size_t i) noexcept {
    return std::uint64_t{1} << (i % kBitsPerWord);
  }

  std::size_t bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace crcw::util
