#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace crcw::util {
namespace {

bool looks_numeric(std::string_view s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  bool digit = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' && c != 'x') {
      return false;
    }
  }
  return digit;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width " + std::to_string(cells.size()) +
                                " != header width " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      if (looks_numeric(row[c])) {
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    os << '\n';
  };

  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c != 0 ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::save_csv(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream f(p);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  write_csv(f);
}

}  // namespace crcw::util
