#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace crcw::util {
namespace {

bool looks_like_option(std::string_view s) {
  return s.size() > 2 && s.substr(0, 2) == "--";
}

[[noreturn]] void bad_value(std::string_view key, std::string_view value, std::string_view type) {
  throw std::invalid_argument("option --" + std::string(key) + ": cannot parse '" +
                              std::string(value) + "' as " + std::string(type));
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!looks_like_option(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      options_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
      continue;
    }
    // `--key value` when the next token is not itself an option; otherwise a
    // bare flag. A negative number after a key is a value, not an option.
    if (i + 1 < argc && !looks_like_option(argv[i + 1])) {
      options_.emplace(std::string(arg), argv[i + 1]);
      ++i;
    } else {
      options_.emplace(std::string(arg), "");
    }
  }
}

bool Cli::has(std::string_view key) const { return options_.find(key) != options_.end(); }

std::optional<std::string> Cli::get(std::string_view key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_string(std::string_view key, std::string fallback) const {
  const auto v = get(key);
  return v.has_value() && !v->empty() ? *v : std::move(fallback);
}

std::int64_t Cli::get_int(std::string_view key, std::int64_t fallback) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return fallback;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) bad_value(key, *v, "integer");
  return out;
}

std::uint64_t Cli::get_uint(std::string_view key, std::uint64_t fallback) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return fallback;
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) bad_value(key, *v, "unsigned integer");
  return out;
}

double Cli::get_double(std::string_view key, double fallback) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(*v, &pos);
    if (pos != v->size()) bad_value(key, *v, "double");
    return out;
  } catch (const std::invalid_argument&) {
    bad_value(key, *v, "double");
  } catch (const std::out_of_range&) {
    bad_value(key, *v, "double");
  }
}

bool Cli::get_bool(std::string_view key, bool fallback) const {
  const auto v = get(key);
  if (!v.has_value()) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  bad_value(key, *v, "bool");
}

std::vector<std::uint64_t> Cli::get_uint_list(std::string_view key,
                                              std::vector<std::uint64_t> fallback) const {
  const auto v = get(key);
  if (!v.has_value() || v->empty()) return fallback;
  std::vector<std::uint64_t> out;
  std::size_t start = 0;
  while (start <= v->size()) {
    std::size_t comma = v->find(',', start);
    if (comma == std::string::npos) comma = v->size();
    const std::string_view tok(v->data() + start, comma - start);
    if (tok.empty()) bad_value(key, *v, "uint list");
    std::uint64_t x = 0;
    const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), x);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) bad_value(key, *v, "uint list");
    out.push_back(x);
    start = comma + 1;
    if (comma == v->size()) break;
  }
  return out;
}

}  // namespace crcw::util
