// Aligned console tables + CSV export for the figure harnesses.
//
// Every bench binary prints the same series the corresponding paper figure
// plots; Table keeps that output legible and machine-readable at once.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace crcw::util {

/// Row-oriented string table with column alignment and CSV export.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const noexcept { return headers_.size(); }
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a row; throws std::invalid_argument if width mismatches.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 3);
  static std::string fmt(std::uint64_t value);

  /// Renders with padded, right-aligned numeric-looking columns.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (fields containing comma/quote/newline are quoted).
  void write_csv(std::ostream& os) const;

  /// Writes CSV to `path`; creates parent directories if missing.
  void save_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace crcw::util
