// Deterministic, seedable pseudo-random number generation.
//
// The graph generators and the arbitrary-conflict-resolution rule of the
// PRAM simulator must be reproducible across runs and platforms, so we ship
// our own generators (splitmix64 for seeding, xoshiro256** for streams)
// instead of relying on implementation-defined std::default_random_engine.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace crcw::util {

/// splitmix64 — tiny generator used to expand a single seed into state for
/// larger generators. Passes BigCrush when used directly.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit generator (Blackman/Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  constexpr std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Jump function: advances the stream by 2^128 steps. Used to derive
  /// statistically independent per-thread substreams from one seed.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull,
        0xa9582618e03fc9aaull, 0x39abdc4529b1661cull};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if ((word & (1ull << b)) != 0) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace crcw::util
