// Cache-line-aligned heap buffers.
//
// std::vector gives no alignment guarantee beyond alignof(T); the benchmark
// kernels want their shared arrays to start on a cache-line boundary so that
// padding policies behave as declared and so runs are reproducible across
// allocator moods.
//
// First-touch placement: on NUMA machines (and on Linux generally) a page
// is physically allocated on the node of the thread that first writes it.
// A serially value-initialised buffer therefore lands entirely on the
// constructing thread's node, and every other socket pays remote-memory
// latency for its share of the array. FirstTouch::kParallel runs the
// placement-new loop under the same static OpenMP schedule the kernels use
// for their sweeps, so each thread faults in exactly the pages it will
// later work on.
#pragma once

#include <omp.h>

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>

#include "util/cacheline.hpp"

namespace crcw::util {

/// Who runs a buffer's element-construction loop (= who first touches the
/// pages): the constructing thread, or a static-scheduled OpenMP team.
enum class FirstTouch {
  kSerial,    ///< constructing thread touches every page (default)
  kParallel,  ///< OpenMP team, schedule(static) — matches kernel sweeps
};

/// Minimal aligned allocator usable with std::vector.
template <typename T, std::size_t Alignment = kCacheLineSize>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T), "alignment weaker than natural");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc{};
    // operator new rounds the size itself; aligned variant requires the size
    // to be a multiple of the alignment on some platforms, so round up.
    const std::size_t bytes = (n * sizeof(T) + Alignment - 1) / Alignment * Alignment;
    void* p = ::operator new(bytes, std::align_val_t{Alignment});
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept { return true; }
};

/// Fixed-size, cache-line-aligned, non-copyable buffer. Value-initialises
/// its contents and never relocates them, so it can hold non-movable types
/// (atomics, mutex-bearing tags).
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t n) : size_(n) {
    if (n == 0) return;
    data_ = allocate(n);
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(data_ + i)) T();
  }

  /// Value-initialising constructor with explicit first-touch placement.
  /// kParallel needs nothrow default construction (a throw inside an
  /// OpenMP region terminates) — throwing types quietly construct
  /// serially. `threads <= 0` means the OpenMP default.
  AlignedBuffer(std::size_t n, FirstTouch first_touch, int threads = 0) : size_(n) {
    if (n == 0) return;
    data_ = allocate(n);
    if constexpr (std::is_nothrow_default_constructible_v<T>) {
      if (first_touch == FirstTouch::kParallel) {
        if (threads <= 0) threads = omp_get_max_threads();
        const auto count = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for num_threads(threads) schedule(static)
        for (std::ptrdiff_t i = 0; i < count; ++i) {
          ::new (static_cast<void*>(data_ + i)) T();
        }
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(data_ + i)) T();
  }

  /// Fill constructor (copy-constructs every element from `fill`), with
  /// optional parallel first touch. Same constraints as above.
  AlignedBuffer(std::size_t n, const T& fill,
                FirstTouch first_touch = FirstTouch::kSerial, int threads = 0)
      : size_(n) {
    if (n == 0) return;
    data_ = allocate(n);
    if constexpr (std::is_nothrow_copy_constructible_v<T>) {
      if (first_touch == FirstTouch::kParallel) {
        if (threads <= 0) threads = omp_get_max_threads();
        const auto count = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for num_threads(threads) schedule(static)
        for (std::ptrdiff_t i = 0; i < count; ++i) {
          ::new (static_cast<void*>(data_ + i)) T(fill);
        }
        return;
      }
    }
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(data_ + i)) T(fill);
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  ~AlignedBuffer() { release(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  [[nodiscard]] static T* allocate(std::size_t n) {
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
    return static_cast<T*>(::operator new(bytes, std::align_val_t{kCacheLineSize}));
  }

  void release() noexcept {
    if (data_ != nullptr) {
      if constexpr (!std::is_trivially_destructible_v<T>) {
        for (std::size_t i = size_; i > 0; --i) data_[i - 1].~T();
      }
      ::operator delete(data_, std::align_val_t{kCacheLineSize});
      data_ = nullptr;
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace crcw::util
