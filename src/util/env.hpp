// Execution-environment introspection and control.
//
// The paper pins threads and uses an active OpenMP wait policy (§7.1); these
// helpers surface that configuration in bench output so every result records
// the conditions it was measured under.
#pragma once

#include <string>

namespace crcw::util {

/// Threads OpenMP would use for a parallel region right now.
[[nodiscard]] int omp_max_threads() noexcept;

/// Physical concurrency reported by the OS (hardware_concurrency, min 1).
[[nodiscard]] int hardware_threads() noexcept;

/// Sets the OpenMP thread count for subsequent parallel regions.
void set_omp_threads(int threads) noexcept;

/// Human-readable one-line description: thread counts, OMP_* env knobs.
[[nodiscard]] std::string environment_summary();

/// True when requested thread count exceeds physical concurrency, i.e. the
/// measurement exercises oversubscription rather than parallel speedup.
[[nodiscard]] bool oversubscribed(int threads) noexcept;

}  // namespace crcw::util
