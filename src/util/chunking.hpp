// Centralised OpenMP chunk sizes for the irregular kernels.
//
// The scattered `schedule(dynamic, 64)` / `schedule(dynamic, 256)` magic
// numbers live here, with the reasoning attached:
//
//   * kFrontierChunk (64): frontier-shaped loops (bfs_frontier, kcore
//     peeling) iterate over vertices whose degrees differ by orders of
//     magnitude on skewed graphs, so static scheduling starves threads.
//     64 iterations per dynamic grab keeps the scheduler's shared cursor
//     off the profile (one RMW per 64 vertices) while still rebalancing
//     within a frontier of a few thousand vertices. Smaller chunks help
//     only when frontiers are tiny AND degrees are wildly skewed — at
//     which point the level is too short to matter.
//   * kBottomUpChunk (256): bottom-up BFS steps scan *all* vertices and
//     most iterations exit after one or two edge probes, so per-iteration
//     cost is small and uniform-ish; a larger chunk amortises scheduler
//     traffic. 256 ≈ 1 KiB of vertex ids per grab, a few cache lines of
//     CSR offsets.
//   * kSlotChunk (256): slots handed to a SlotAllocator lane per shared
//     fetch_add (core/slot_alloc.hpp). 256 divides the shared-cursor RMW
//     rate by 256 versus per-discovery fetch_add while bounding per-lane
//     waste (holes) to lanes×256 slots per round.
//
// Both dynamic-schedule chunks were sanity-checked against the
// ablation_schedule harness (static/dynamic/guided over the same irregular
// workload); re-run it when porting to new hardware. For experiments the
// env vars below override the defaults at process start (first call wins):
//
//   CRCW_CHUNK=<n>        forces BOTH dynamic-schedule chunk sizes to n
//   CRCW_SLOT_CHUNK=<n>   overrides the SlotAllocator grant size
#pragma once

#include <cstdint>
#include <cstdlib>

namespace crcw::util {

inline constexpr int kFrontierChunk = 64;
inline constexpr int kBottomUpChunk = 256;
inline constexpr std::uint64_t kSlotChunk = 256;

namespace detail {
inline long chunk_env(const char* name, long fallback) noexcept {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  return (end != s && v > 0) ? v : fallback;
}
}  // namespace detail

/// Dynamic-schedule chunk for frontier-shaped loops (degree-skewed work
/// per iteration). CRCW_CHUNK overrides; cached on first call.
inline int frontier_chunk() noexcept {
  static const int v =
      static_cast<int>(detail::chunk_env("CRCW_CHUNK", kFrontierChunk));
  return v;
}

/// Dynamic-schedule chunk for bottom-up / all-vertex scans (cheap, mostly
/// uniform iterations). CRCW_CHUNK overrides; cached on first call.
inline int bottom_up_chunk() noexcept {
  static const int v =
      static_cast<int>(detail::chunk_env("CRCW_CHUNK", kBottomUpChunk));
  return v;
}

/// Slots per SlotAllocator refill (one shared fetch_add grants this many).
/// CRCW_SLOT_CHUNK overrides; cached on first call.
inline std::uint64_t slot_chunk() noexcept {
  static const auto v = static_cast<std::uint64_t>(
      detail::chunk_env("CRCW_SLOT_CHUNK", static_cast<long>(kSlotChunk)));
  return v;
}

}  // namespace crcw::util
