#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace crcw::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile q out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted[sorted.size() - 1];
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  Accumulator acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.5);
  s.p75 = quantile_sorted(sorted, 0.75);
  return s;
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (!(x > 0.0)) throw std::invalid_argument("geometric_mean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::vector<double> ratios(std::span<const double> numer, std::span<const double> denom) {
  if (numer.size() != denom.size()) throw std::invalid_argument("ratios: size mismatch");
  std::vector<double> out;
  out.reserve(numer.size());
  for (std::size_t i = 0; i < numer.size(); ++i) {
    if (denom[i] == 0.0) throw std::invalid_argument("ratios: zero denominator");
    out.push_back(numer[i] / denom[i]);
  }
  return out;
}

}  // namespace crcw::util
