// ThreadSanitizer annotations for the library's *intentional* plain accesses.
//
// The concurrent-write protocol (paper §5) admits exactly one writer per
// (target, round) and publishes the written payload through the PRAM step
// barrier — in practice an OpenMP barrier, which TSan's happens-before
// analysis cannot see (libgomp synchronises internally, invisibly to the
// runtime). A TSan build would therefore flag every barrier-published plain
// payload store as a race against its post-barrier readers, drowning real
// findings. Rather than suppressing whole classes of reports in tsan.supp,
// each such store is wrapped in a scoped ignore-writes annotation *at the
// site*, with a comment naming the barrier that publishes it. The raw-thread
// stress tier (tests/stress/) uses std::barrier, whose synchronisation TSan
// does see, so the protocol itself — tag CAS races, gatekeeper resets,
// reset/acquire hand-offs — remains fully checked there.
//
// Discipline for new annotations (docs/concurrency-model.md, "Benign races
// and how we prove it"):
//   1. only payload stores that a single-winner policy already protects and
//      a named synchronisation point publishes may be annotated;
//   2. the annotation must be the narrowest possible scope (the store, not
//      the surrounding control flow);
//   3. tag/counter words are std::atomic and must NEVER be annotated — races
//      on them are always real bugs.
#pragma once

// Detection: gcc defines __SANITIZE_THREAD__; clang exposes __has_feature.
#if defined(__SANITIZE_THREAD__)
#define CRCW_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CRCW_TSAN_ENABLED 1
#endif
#endif

#ifndef CRCW_TSAN_ENABLED
#define CRCW_TSAN_ENABLED 0
#endif

#if CRCW_TSAN_ENABLED
// Dynamic-annotation entry points exported by the TSan runtime (both gcc's
// libtsan and llvm's compiler-rt ship them).
extern "C" {
void AnnotateIgnoreWritesBegin(const char* file, int line);
void AnnotateIgnoreWritesEnd(const char* file, int line);
void AnnotateHappensBefore(const char* file, int line, const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line, const volatile void* addr);
}

#define CRCW_TSAN_ANNOTATE_IGNORE_WRITES_BEGIN() AnnotateIgnoreWritesBegin(__FILE__, __LINE__)
#define CRCW_TSAN_ANNOTATE_IGNORE_WRITES_END() AnnotateIgnoreWritesEnd(__FILE__, __LINE__)
#define CRCW_TSAN_ANNOTATE_HAPPENS_BEFORE(addr) AnnotateHappensBefore(__FILE__, __LINE__, addr)
#define CRCW_TSAN_ANNOTATE_HAPPENS_AFTER(addr) AnnotateHappensAfter(__FILE__, __LINE__, addr)
#else
#define CRCW_TSAN_ANNOTATE_IGNORE_WRITES_BEGIN() static_cast<void>(0)
#define CRCW_TSAN_ANNOTATE_IGNORE_WRITES_END() static_cast<void>(0)
#define CRCW_TSAN_ANNOTATE_HAPPENS_BEFORE(addr) static_cast<void>(0)
#define CRCW_TSAN_ANNOTATE_HAPPENS_AFTER(addr) static_cast<void>(0)
#endif

namespace crcw::util {

/// RAII scope for one barrier-published payload store. Exception-safe (a
/// throwing copy assignment must still end the ignore window) and a no-op
/// outside TSan builds.
class TsanIgnoreWritesScope {
 public:
  TsanIgnoreWritesScope() noexcept { CRCW_TSAN_ANNOTATE_IGNORE_WRITES_BEGIN(); }
  ~TsanIgnoreWritesScope() { CRCW_TSAN_ANNOTATE_IGNORE_WRITES_END(); }

  TsanIgnoreWritesScope(const TsanIgnoreWritesScope&) = delete;
  TsanIgnoreWritesScope& operator=(const TsanIgnoreWritesScope&) = delete;
};

}  // namespace crcw::util
