// Sparse-table range-minimum queries.
//
// O(n log n) construction (each level is one parallel step), O(1) queries.
// Used by the Tarjan–Vishkin biconnectivity kernel to aggregate low/high
// values over Euler-tour segments (each vertex's subtree is one contiguous
// tour range), and generally useful for offline RMQ on PRAM-style data.
#pragma once

#include <omp.h>

#include <bit>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <vector>

namespace crcw::util {

template <typename T, typename Compare = std::less<T>>
class SparseTableRmq {
 public:
  SparseTableRmq() = default;

  /// Builds over a copy of `values`. `threads` work-shares the level
  /// construction (0 = ambient OpenMP setting).
  explicit SparseTableRmq(std::span<const T> values, int threads = 0,
                          Compare compare = Compare{})
      : values_(values.begin(), values.end()), compare_(compare) {
    const std::size_t n = values_.size();
    if (n == 0) return;
    const int levels = std::bit_width(n);  // 1 + floor(log2 n)
    table_.resize(static_cast<std::size_t>(levels));
    table_[0].resize(n);
    for (std::size_t i = 0; i < n; ++i) table_[0][i] = i;

    if (threads <= 0) threads = omp_get_max_threads();
    for (int k = 1; k < levels; ++k) {
      const std::size_t half = std::size_t{1} << (k - 1);
      const std::size_t count = n - (std::size_t{1} << k) + 1;
      table_[static_cast<std::size_t>(k)].resize(count);
      auto& cur = table_[static_cast<std::size_t>(k)];
      const auto& prev = table_[static_cast<std::size_t>(k - 1)];
#pragma omp parallel for num_threads(threads) schedule(static)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        cur[idx] = better(prev[idx], prev[idx + half]);
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Index of the best (minimum under Compare) element in [lo, hi]
  /// (inclusive). Ties go to the leftmost candidate of the two covering
  /// blocks. Throws std::out_of_range on an empty or reversed range.
  [[nodiscard]] std::size_t argbest(std::size_t lo, std::size_t hi) const {
    if (lo > hi || hi >= values_.size()) {
      throw std::out_of_range("SparseTableRmq: bad range");
    }
    const auto k = static_cast<std::size_t>(std::bit_width(hi - lo + 1) - 1);
    const std::size_t left = table_[k][lo];
    const std::size_t right = table_[k][hi - (std::size_t{1} << k) + 1];
    return better(left, right);
  }

  /// Best value in [lo, hi].
  [[nodiscard]] const T& best(std::size_t lo, std::size_t hi) const {
    return values_[argbest(lo, hi)];
  }

 private:
  std::size_t better(std::size_t a, std::size_t b) const {
    return compare_(values_[b], values_[a]) ? b : a;
  }

  std::vector<T> values_;
  std::vector<std::vector<std::size_t>> table_;
  Compare compare_;
};

}  // namespace crcw::util
