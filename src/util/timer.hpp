// Wall-clock timing for the benchmark harness.
//
// The paper excludes initialisation and serial setup from every measurement
// (§7.2); Timer/ScopedTimer make the measured region explicit at call sites.
#pragma once

#include <chrono>
#include <cstdint>

namespace crcw::util {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }
  [[nodiscard]] double microseconds() const noexcept { return seconds() * 1e6; }
  [[nodiscard]] std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }

 private:
  clock::time_point start_;
};

/// Accumulates elapsed seconds into a double on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& sink) noexcept : sink_(sink) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { sink_ += timer_.seconds(); }

 private:
  double& sink_;
  Timer timer_;
};

}  // namespace crcw::util
