// 16-byte group matching for the ds/ control-byte sidecars — the Swiss-
// table probe primitive: snapshot one group of control bytes, compare all
// of them against a fingerprint in a handful of instructions, and hand the
// caller a bitmask of candidate lanes.
//
// Three backends, chosen at compile time:
//   * SSE2  (x86-64, default): _mm_cmpeq_epi8 + _mm_movemask_epi8;
//   * NEON  (aarch64): vceqq_u8 + the vshrn_n_u16 nibble-mask trick
//     (there is no movemask instruction; narrowing each 16-bit lane's top
//     nibble packs the comparison into one 64-bit scalar);
//   * SWAR  (portable fallback, and the -DCRCW_SIMD=OFF build): two 8-byte
//     words per group through the classic zero-byte detector
//     (x - 0x01..01) & ~x & 0x80..80 after XORing the needle in.
//
// match_swar() is compiled unconditionally so tests can assert bit-exact
// parity between the vector backend and the portable one on random batches
// (the CRCW_SIMD=OFF CI leg then runs the whole suite on SWAR alone).
//
// Memory-model contract: load() takes the control bytes as relaxed atomics
// and snapshots them NON-atomically as one wide read (a data race in the
// letter of the C++ model, benign by the sidecar's design — every group
// byte is only ever a *filter*, and every hit is re-verified against the
// authoritative bucket word; see docs/architecture.md "SIMD group
// probing"). Under TSan the wide read would be reported, so that build
// takes a per-byte relaxed-atomic path instead: same values, same masks,
// no diagnostics — the tool sees exactly the synchronisation the proof
// uses, per the src/util/sanitizer.hpp discipline.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>

#include "util/sanitizer.hpp"

#if defined(CRCW_SIMD) && (defined(__SSE2__) || defined(_M_X64))
#define CRCW_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(CRCW_SIMD) && defined(__ARM_NEON)
#define CRCW_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace crcw::util {

/// Control bytes scanned per probe step. All backends use 16: SWAR chews
/// two 8-byte words per group, so the probe loop, the telemetry (one
/// group_loads tick per step) and the parity tests are backend-agnostic.
inline constexpr std::size_t kGroupWidth = 16;

/// Which comparison backend this build selected (for bench/test logging).
[[nodiscard]] constexpr const char* simd_backend() noexcept {
#if defined(CRCW_SIMD_SSE2)
  return "sse2";
#elif defined(CRCW_SIMD_NEON)
  return "neon";
#else
  return "swar";
#endif
}

/// One snapshot of kGroupWidth control bytes plus the match queries the
/// probe loop asks of it. The snapshot is taken once per group; every
/// match() afterwards reads only the local copy, so a probe step costs one
/// wide load regardless of how many byte values it tests.
struct Group {
  alignas(kGroupWidth) std::uint8_t bytes[kGroupWidth];

  /// Snapshot from the live sidecar (relaxed atomics). See the header
  /// comment for why the non-TSan path may read the bytes wide.
  [[nodiscard]] static Group load(const std::atomic<std::uint8_t>* ctrl) noexcept {
    Group g;
#if CRCW_TSAN_ENABLED
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      g.bytes[i] = ctrl[i].load(std::memory_order_relaxed);
    }
#else
    static_assert(sizeof(std::atomic<std::uint8_t>) == 1 &&
                  std::atomic<std::uint8_t>::is_always_lock_free);
    std::memcpy(g.bytes, reinterpret_cast<const std::uint8_t*>(ctrl), kGroupWidth);
#endif
    return g;
  }

  /// Snapshot from plain memory (tests, serial sweeps).
  [[nodiscard]] static Group from(const std::uint8_t* p) noexcept {
    Group g;
    std::memcpy(g.bytes, p, kGroupWidth);
    return g;
  }

  /// Bitmask of lanes whose byte equals `b` (bit i = bytes[i] == b).
  [[nodiscard]] std::uint32_t match(std::uint8_t b) const noexcept {
#if defined(CRCW_SIMD_SSE2)
    const __m128i group = _mm_load_si128(reinterpret_cast<const __m128i*>(bytes));
    const __m128i needle = _mm_set1_epi8(static_cast<char>(b));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(group, needle)));
#elif defined(CRCW_SIMD_NEON)
    const uint8x16_t group = vld1q_u8(bytes);
    const uint8x16_t eq = vceqq_u8(group, vdupq_n_u8(b));
    // Narrow each 16-bit lane to its top nibble: lane i of the comparison
    // becomes nibble i of one 64-bit scalar (0xF if equal, 0x0 if not).
    const uint64_t nibbles =
        vget_lane_u64(vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(eq), 4)), 0);
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      mask |= static_cast<std::uint32_t>((nibbles >> (4 * i)) & 1u) << i;
    }
    return mask;
#else
    return match_swar(b);
#endif
  }

  /// Bitmask of the sentinel lanes (empty or tombstone) in one query:
  /// every published fingerprint byte has the high bit set (0x80 | H2) and
  /// the only two non-fingerprint values are kCtrlEmpty (0x00) and
  /// kCtrlTombstone (0x01), so "high bit clear" *is* "empty or tombstone"
  /// — one sign-bit movemask, no byte compares. The probe walks pair this
  /// with match(fp) to build the full candidate mask in two masks instead
  /// of three.
  [[nodiscard]] std::uint32_t match_special() const noexcept {
#if defined(CRCW_SIMD_SSE2)
    const __m128i group = _mm_load_si128(reinterpret_cast<const __m128i*>(bytes));
    return static_cast<std::uint32_t>(~_mm_movemask_epi8(group)) & 0xFFFFu;
#elif defined(CRCW_SIMD_NEON)
    const uint8x16_t group = vld1q_u8(bytes);
    // Sign bit of each byte, packed by the same narrowing-nibble trick as
    // match(): shift the sign bit down to every bit of its byte first.
    const uint8x16_t sign = vcltq_s8(vreinterpretq_s8_u8(group), vdupq_n_s8(0));
    const uint64_t nibbles = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(sign), 4)), 0);
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      mask |= static_cast<std::uint32_t>((nibbles >> (4 * i)) & 1u) << i;
    }
    return ~mask & 0xFFFFu;
#else
    return special_swar();
#endif
  }

  /// Portable SWAR comparison — always compiled, so vector builds can
  /// verify parity at runtime (tests/test_simd.cpp).
  [[nodiscard]] std::uint32_t match_swar(std::uint8_t b) const noexcept {
    constexpr std::uint64_t kLow = 0x0101010101010101ull;
    constexpr std::uint64_t kHigh = 0x8080808080808080ull;
    std::uint32_t mask = 0;
    for (std::size_t w = 0; w < kGroupWidth / 8; ++w) {
      std::uint64_t x;
      std::memcpy(&x, bytes + 8 * w, 8);
      x ^= kLow * b;  // bytes equal to the needle become 0x00
      std::uint64_t hit = (x - kLow) & ~x & kHigh;
      while (hit != 0) {
        mask |= 1u << (8 * w + (static_cast<std::size_t>(std::countr_zero(hit)) >> 3));
        hit &= hit - 1;
      }
    }
    return mask;
  }

  /// SWAR twin of match_special(): high-bit-clear lanes, word at a time.
  [[nodiscard]] std::uint32_t special_swar() const noexcept {
    constexpr std::uint64_t kHigh = 0x8080808080808080ull;
    std::uint32_t mask = 0;
    for (std::size_t w = 0; w < kGroupWidth / 8; ++w) {
      std::uint64_t x;
      std::memcpy(&x, bytes + 8 * w, 8);
      std::uint64_t hit = ~x & kHigh;
      while (hit != 0) {
        mask |= 1u << (8 * w + (static_cast<std::size_t>(std::countr_zero(hit)) >> 3));
        hit &= hit - 1;
      }
    }
    return mask;
  }
};

}  // namespace crcw::util
