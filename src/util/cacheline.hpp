// Cache-line geometry and anti-false-sharing wrappers.
//
// The concurrent-write tags of the core library are written with atomic RMW
// instructions by many threads at once; whether neighbouring tags share a
// cache line is a first-order performance effect (see bench/ablation_padding).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace crcw::util {

/// Size of a destructive-interference region. Fixed at 64 bytes — correct
/// for every x86 and most ARM implementations — rather than
/// std::hardware_destructive_interference_size, whose value is an ABI
/// hazard (GCC warns that it may differ across translation units).
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that each instance occupies at least one full cache line.
/// Used for arrays of contended atomics (one contended word per line).
template <typename T>
struct alignas(kCacheLineSize) Padded {
  T value{};

  Padded() = default;

  template <typename... Args>
    requires std::is_constructible_v<T, Args...>
  explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(Padded<char>) == kCacheLineSize);
static_assert(alignof(Padded<char>) == kCacheLineSize);

/// True if [p, p + sizeof(T)) cannot straddle a cache-line boundary.
template <typename T>
constexpr bool fits_single_line() noexcept {
  return sizeof(T) <= kCacheLineSize;
}

}  // namespace crcw::util
