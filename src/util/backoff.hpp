// Bounded exponential backoff for retry loops that are merely lock-free —
// the contention-management recipe of "Lightweight Contention Management
// for Efficient Compare-and-Swap Operations" (Dice/Hendler/Mirsky,
// PAPERS.md): a failed RMW means another thread is making progress, so the
// loser's best move is to get off the cache line for a doubling interval
// before re-arming, and to hand the core to the OS scheduler once spinning
// has demonstrably lost (oversubscription, preempted lock holder).
//
// Scope discipline: this belongs on genuine RETRY loops only — the
// RequestQueue lane spinlocks and the chained set's Treiber head CAS. The
// CAS-LT claim path must never see it: a (key, round) arbitration issues at
// most one compare-exchange and its losers are done wait-free, so there is
// nothing to retry and a pause would only add latency to a path the paper
// proves contention-immune (serve/op.hpp's BackoffState covers the
// admission-watermark wait, a different, higher-level concern).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace crcw::util {

/// One busy-wait hint: tells the core we are spinning so it can yield
/// pipeline resources to the sibling hyperthread (x86 PAUSE / arm YIELD)
/// without giving up the time slice.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);  // compiler barrier only
#endif
}

/// Bounded exponential backoff: pause() spins 2^k cpu_relax hints, doubling
/// k per call up to `max_spins`; past the bound every further pause()
/// yields the thread instead (the lock holder may be descheduled — more
/// spinning cannot help). reset() re-arms after a success, so a thread
/// that just got through starts polite again, not punished.
class Backoff {
 public:
  explicit Backoff(std::uint32_t min_spins = 4, std::uint32_t max_spins = 1024) noexcept
      : min_spins_(min_spins < 1 ? 1 : min_spins),
        max_spins_(max_spins < min_spins_ ? min_spins_ : max_spins),
        spins_(min_spins_) {}

  void pause() noexcept {
    if (spins_ > max_spins_) {
      std::this_thread::yield();
      return;
    }
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    spins_ *= 2;
  }

  void reset() noexcept { spins_ = min_spins_; }

  /// Current spin budget (tests pin the doubling/yield tier transitions).
  [[nodiscard]] std::uint32_t spins() const noexcept { return spins_; }
  [[nodiscard]] bool yielding() const noexcept { return spins_ > max_spins_; }

 private:
  std::uint32_t min_spins_;
  std::uint32_t max_spins_;
  std::uint32_t spins_;
};

/// Adaptive ceiling for a family of Backoff loops at one contention site
/// (the ROADMAP contention item): observe() folds a failure-rate sample —
/// failed RMWs over issued RMWs, e.g. a ContentionSite's atomics vs wins —
/// and linearly maps it into [quiet_ceiling, storm_ceiling]. A quiet site
/// caps its losers after a few doublings (pausing longer only adds
/// latency); a stormy one lets the doubling run further before the yield
/// tier, which is exactly when getting off the line pays (Dice/Hendler/
/// Mirsky). make() stamps a Backoff with the current ceiling; the store is
/// relaxed, so a racing reader sees a slightly stale ceiling at worst.
class AdaptiveBackoffCeiling {
 public:
  explicit AdaptiveBackoffCeiling(std::uint32_t quiet_ceiling = 64,
                                  std::uint32_t storm_ceiling = 4096) noexcept
      : quiet_(quiet_ceiling < 1 ? 1 : quiet_ceiling),
        storm_(storm_ceiling < quiet_ ? quiet_ : storm_ceiling),
        ceiling_(quiet_) {}

  /// Folds one failure-rate sample. `attempts` = RMWs issued, `failures`
  /// = RMWs that lost (retried); attempts == 0 keeps the prior ceiling.
  void observe(std::uint64_t attempts, std::uint64_t failures) noexcept {
    if (attempts == 0) return;
    const double rate =
        failures >= attempts ? 1.0
                             : static_cast<double>(failures) / static_cast<double>(attempts);
    const auto span = static_cast<double>(storm_ - quiet_);
    ceiling_.store(quiet_ + static_cast<std::uint32_t>(rate * span),
                   std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t ceiling() const noexcept {
    return ceiling_.load(std::memory_order_relaxed);
  }

  /// A Backoff capped at the current adaptive ceiling.
  [[nodiscard]] Backoff make(std::uint32_t min_spins = 4) const noexcept {
    return Backoff(min_spins, ceiling());
  }

 private:
  std::uint32_t quiet_;
  std::uint32_t storm_;
  std::atomic<std::uint32_t> ceiling_;
};

}  // namespace crcw::util
