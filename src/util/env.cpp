#include "util/env.hpp"

#include <omp.h>

#include <cstdlib>
#include <sstream>
#include <thread>

namespace crcw::util {

int omp_max_threads() noexcept { return omp_get_max_threads(); }

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void set_omp_threads(int threads) noexcept {
  if (threads > 0) omp_set_num_threads(threads);
}

bool oversubscribed(int threads) noexcept { return threads > hardware_threads(); }

std::string environment_summary() {
  std::ostringstream ss;
  ss << "omp_max_threads=" << omp_max_threads() << " hardware_threads=" << hardware_threads();
  for (const char* var : {"OMP_WAIT_POLICY", "OMP_PROC_BIND", "OMP_PLACES", "OMP_SCHEDULE"}) {
    if (const char* v = std::getenv(var); v != nullptr) ss << ' ' << var << '=' << v;
  }
  return ss.str();
}

}  // namespace crcw::util
