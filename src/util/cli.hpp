// Tiny command-line parser for the examples and figure harnesses.
//
// Supports `--key value`, `--key=value` and boolean `--flag` forms; anything
// not starting with `--` is a positional argument. No external dependency so
// the examples stay single-file.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace crcw::util {

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on a malformed option
  /// (e.g. `--key` at end of argv when the key is consumed as valued).
  Cli(int argc, const char* const* argv);

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  [[nodiscard]] bool has(std::string_view key) const;

  /// Raw string value; empty optional when absent or flag-only.
  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;

  [[nodiscard]] std::string get_string(std::string_view key, std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(std::string_view key, std::uint64_t fallback) const;
  [[nodiscard]] double get_double(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Comma-separated unsigned list, e.g. `--sizes 1024,2048,4096`.
  [[nodiscard]] std::vector<std::uint64_t> get_uint_list(
      std::string_view key, std::vector<std::uint64_t> fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string, std::less<>> options_;
  std::vector<std::string> positional_;
};

}  // namespace crcw::util
