// Euler-tour tree operations — the classic PRAM technique built from this
// library's substrate (list ranking + exclusive writes), extending the
// algorithm set toward the EREW/CREW side of §8's proposed comparisons.
//
// An undirected tree's 2(n-1) directed edge slots form one Euler cycle:
// the successor of slot (u→v) is the slot (v→w) where w follows u in v's
// adjacency ring. Breaking the cycle at the root and ranking it with
// pointer jumping yields, in O(log n) lock-step rounds:
//   * parent pointers       (the first entry into each vertex)
//   * subtree sizes         ((exit − entry + 1) / 2)
//   * depths                (pointer-jumping accumulation over parents)
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::algo {

struct TreeOpsOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Euler-tour structure over a symmetrised tree CSR.
struct EulerTour {
  std::vector<graph::edge_t> twin;  ///< slot of (v→u) for each slot (u→v)
  std::vector<graph::edge_t> next;  ///< successor slot on the Euler cycle
};

/// Builds the tour. Requires: sorted symmetrised CSR of a tree — exactly
/// 2(n-1) slots, no self-loops, no parallel edges (throws
/// std::invalid_argument otherwise; connectivity is implied by the slot
/// count once the structure checks pass).
[[nodiscard]] EulerTour euler_tour(const graph::Csr& tree,
                                   const TreeOpsOptions& opts = {});

struct RootedTree {
  std::vector<graph::vertex_t> parent;   ///< parent[root] == root
  std::vector<std::uint64_t> subtree;    ///< vertices in v's subtree (root: n)
  std::vector<std::uint64_t> depth;      ///< edges from root (root: 0)
  std::vector<std::uint64_t> preorder;   ///< DFS-preorder number (root: 0)
  /// Euler-tour positions of v's entering (down) edge and its exit (up)
  /// edge: v's subtree is exactly the tour segment [entry, exit]. The root
  /// spans the whole tour ([0, m-1]); a singleton tree uses [0, 0].
  std::vector<std::uint64_t> entry_pos;
  std::vector<std::uint64_t> exit_pos;
};

/// Roots the tree at `root` via Euler tour + list ranking.
[[nodiscard]] RootedTree root_tree(const graph::Csr& tree, graph::vertex_t root,
                                   const TreeOpsOptions& opts = {});

}  // namespace crcw::algo
