// Randomized maximal matching — the workload of the paper's reference [23]
// (Yang/Dhall/Lakshmivarahan, "simple randomized parallel algorithms for
// finding a maximal matching"), built on priority concurrent writes.
//
// Round structure (all phases are lock-step parallel steps):
//   1. every live edge draws a deterministic per-round random key and
//      offers (key, edge-id) to BOTH endpoints' priority cells — a
//      Priority(min-value) concurrent write (core/PackedPriorityCell);
//   2. an edge whose id won at BOTH endpoints joins the matching; its
//      endpoints become matched;
//   3. edges with a matched endpoint die; repeat until no live edge.
//
// Expected O(log m) rounds w.h.p. (a constant fraction of live edges is
// adjacent to a both-sides winner each round). The per-round bound is
// enforced with a generous cap that flags non-convergence bugs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::algo {

struct MatchingOptions {
  int threads = 0;        ///< OpenMP threads; 0 = ambient setting
  std::uint64_t seed = 42;  ///< per-round key stream
};

struct MatchingResult {
  /// Matched partner per vertex; kNoVertex = unmatched.
  std::vector<graph::vertex_t> mate;
  /// Edge ids (indices into the input list) forming the matching.
  std::vector<std::uint64_t> edges;
  std::uint64_t rounds = 0;
};

/// Maximal matching over an undirected edge list on vertices [0, n).
/// Self-loops are ignored; parallel edges are fine. Edge count must fit
/// 32 bits (packed priority payload). Throws std::invalid_argument on bad
/// input.
[[nodiscard]] MatchingResult maximal_matching(std::uint64_t n,
                                              const graph::EdgeList& edges,
                                              const MatchingOptions& opts = {});

/// Checker: `result` is a valid matching (mate is an involution across real
/// edges) AND maximal (no live edge has two unmatched endpoints).
[[nodiscard]] bool validate_matching(std::uint64_t n, const graph::EdgeList& edges,
                                     const MatchingResult& result);

}  // namespace crcw::algo
