#include "algorithms/dispatch.hpp"

#include <stdexcept>

#include "core/instrumented.hpp"

namespace crcw::algo {
namespace {

[[noreturn]] void unknown(std::string_view kernel, std::string_view method) {
  throw std::invalid_argument("unknown " + std::string(kernel) + " method '" +
                              std::string(method) + "'");
}

using ICasLt = InstrumentedPolicy<CasLtPolicy>;
using IGate = InstrumentedPolicy<GatekeeperPolicy>;
using IGateSkip = InstrumentedPolicy<GatekeeperSkipPolicy>;

/// Runs `fn` with new ContentionSites redirected into a private registry
/// and returns everything they counted (sites die with the kernel's
/// arbiters; the registry retains their totals).
template <typename Fn>
obs::ContentionTotals profiled(Fn&& fn) {
  obs::MetricsRegistry local;
  const obs::ScopedRegistry scoped(local);
  fn();
  return local.totals();
}

}  // namespace

std::vector<std::string> max_methods() {
  return {"naive", "gatekeeper", "gatekeeper-skip", "caslt", "critical"};
}

std::vector<std::string> bfs_methods() {
  return {"naive", "gatekeeper", "gatekeeper-sparse", "gatekeeper-skip", "caslt",
          "critical"};
}

std::vector<std::string> cc_methods() {
  return {"gatekeeper", "gatekeeper-sparse", "gatekeeper-skip", "caslt", "critical",
          "min-hook"};
}

std::vector<std::string> dedup_methods() { return {"caslt", "chained", "sort"}; }

std::vector<std::string> semijoin_methods() { return {"caslt", "serial"}; }

std::vector<std::string> triangle_methods() { return {"caslt", "chained", "serial"}; }

std::uint64_t run_max(std::string_view method, std::span<const std::uint32_t> list,
                      const MaxOptions& opts) {
  if (method == "naive") return max_index_naive(list, opts);
  if (method == "gatekeeper") return max_index_gatekeeper(list, opts);
  if (method == "gatekeeper-skip") return max_index_gatekeeper_skip(list, opts);
  if (method == "caslt") return max_index_caslt(list, opts);
  if (method == "critical") return max_index_critical(list, opts);
  if (method == "reduce") return max_index_reduce(list, opts);
  unknown("max", method);
}

BfsResult run_bfs(std::string_view method, const graph::Csr& g, graph::vertex_t source,
                  const BfsOptions& opts) {
  if (method == "naive") return bfs_naive(g, source, opts);
  if (method == "gatekeeper") return bfs_gatekeeper(g, source, opts);
  if (method == "gatekeeper-sparse") return bfs_gatekeeper_sparse(g, source, opts);
  if (method == "gatekeeper-skip") return bfs_gatekeeper_skip(g, source, opts);
  if (method == "caslt") return bfs_caslt(g, source, opts);
  if (method == "critical") return bfs_critical(g, source, opts);
  // Structural variants beyond the paper's comparison (all CAS-LT based).
  if (method == "frontier") return bfs_frontier(g, source, opts);
  if (method == "frontier-shared") return bfs_frontier_shared(g, source, opts);
  if (method == "direction-optimizing") return bfs_direction_optimizing(g, source, opts);
  unknown("bfs", method);
}

CcResult run_cc(std::string_view method, const graph::Csr& g, const CcOptions& opts) {
  if (method == "gatekeeper") return cc_gatekeeper(g, opts);
  if (method == "gatekeeper-sparse") return cc_gatekeeper_sparse(g, opts);
  if (method == "gatekeeper-skip") return cc_gatekeeper_skip(g, opts);
  if (method == "caslt") return cc_caslt(g, opts);
  if (method == "critical") return cc_critical(g, opts);
  if (method == "min-hook") return cc_min_hook(g, opts);
  unknown("cc", method);
}

DedupResult run_dedup(std::string_view method, std::span<const std::uint64_t> keys,
                      const DedupOptions& opts) {
  if (method == "caslt") return dedup_caslt(keys, opts);
  if (method == "chained") return dedup_chained(keys, opts);
  if (method == "sort") return dedup_sort(keys, opts);
  unknown("dedup", method);
}

std::vector<SemijoinMatch> run_semijoin(std::string_view method,
                                        std::span<const std::uint64_t> probe_keys,
                                        std::span<const std::uint64_t> build_keys,
                                        const SemijoinOptions& opts) {
  if (method == "caslt") return semijoin_caslt(probe_keys, build_keys, opts);
  if (method == "serial") return semijoin_serial(probe_keys, build_keys, opts);
  unknown("semijoin", method);
}

std::uint64_t run_triangles(std::string_view method, const graph::Csr& g,
                            const TriangleOptions& opts) {
  if (method == "caslt") return triangle_count_caslt(g, opts);
  if (method == "chained") return triangle_count_chained(g, opts);
  if (method == "serial") return triangle_count_serial(g, opts);
  unknown("triangles", method);
}

std::optional<obs::ContentionTotals> profile_max(std::string_view method,
                                                 std::span<const std::uint32_t> list,
                                                 const MaxOptions& opts) {
  if (method == "caslt") {
    return profiled([&] { (void)detail::max_index_kernel<ICasLt>(list, opts); });
  }
  if (method == "gatekeeper") {
    return profiled([&] { (void)detail::max_index_kernel<IGate>(list, opts); });
  }
  if (method == "gatekeeper-skip") {
    return profiled([&] { (void)detail::max_index_kernel<IGateSkip>(list, opts); });
  }
  return std::nullopt;
}

std::optional<obs::ContentionTotals> profile_bfs(std::string_view method,
                                                 const graph::Csr& g,
                                                 graph::vertex_t source,
                                                 const BfsOptions& opts) {
  if (method == "caslt") {
    return profiled([&] { (void)detail::bfs_kernel<ICasLt>(g, source, opts); });
  }
  if (method == "gatekeeper") {
    return profiled([&] { (void)detail::bfs_kernel<IGate>(g, source, opts); });
  }
  if (method == "gatekeeper-sparse") {
    BfsOptions sparse = opts;
    sparse.sparse_reset = true;
    return profiled([&] { (void)detail::bfs_kernel<IGate>(g, source, sparse); });
  }
  if (method == "gatekeeper-skip") {
    return profiled([&] { (void)detail::bfs_kernel<IGateSkip>(g, source, opts); });
  }
  // The frontier pair additionally reports its slot-allocation RMWs
  // (a "frontier-slots" site: attempts = slots granted, atomics = shared
  // fetch_adds — chunked grants shrink exactly that number).
  if (method == "frontier") {
    return profiled([&] {
      (void)detail::bfs_frontier_kernel<ICasLt>(g, source, opts,
                                                detail::SlotMode::kChunked);
    });
  }
  if (method == "frontier-shared") {
    return profiled([&] {
      (void)detail::bfs_frontier_kernel<ICasLt>(g, source, opts,
                                                detail::SlotMode::kShared);
    });
  }
  return std::nullopt;
}

std::optional<obs::ContentionTotals> profile_cc(std::string_view method,
                                                const graph::Csr& g,
                                                const CcOptions& opts) {
  if (method == "caslt") {
    return profiled([&] { (void)detail::cc_kernel<ICasLt>(g, opts); });
  }
  if (method == "gatekeeper") {
    return profiled([&] { (void)detail::cc_kernel<IGate>(g, opts); });
  }
  if (method == "gatekeeper-sparse") {
    CcOptions sparse = opts;
    sparse.sparse_reset = true;
    return profiled([&] { (void)detail::cc_kernel<IGate>(g, sparse); });
  }
  if (method == "gatekeeper-skip") {
    return profiled([&] { (void)detail::cc_kernel<IGateSkip>(g, opts); });
  }
  return std::nullopt;
}

std::optional<obs::ContentionTotals> profile_dedup(std::string_view method,
                                                   std::span<const std::uint64_t> keys,
                                                   const DedupOptions& opts) {
  if (method != "caslt" && method != "chained") return std::nullopt;
  DedupOptions instrumented = opts;
  instrumented.telemetry = true;
  return profiled([&] { (void)run_dedup(method, keys, instrumented); });
}

std::optional<obs::ContentionTotals> profile_semijoin(
    std::string_view method, std::span<const std::uint64_t> probe_keys,
    std::span<const std::uint64_t> build_keys, const SemijoinOptions& opts) {
  if (method != "caslt") return std::nullopt;
  SemijoinOptions instrumented = opts;
  instrumented.telemetry = true;
  return profiled([&] { (void)semijoin_caslt(probe_keys, build_keys, instrumented); });
}

std::optional<obs::ContentionTotals> profile_triangles(std::string_view method,
                                                       const graph::Csr& g,
                                                       const TriangleOptions& opts) {
  if (method != "caslt" && method != "chained") return std::nullopt;
  TriangleOptions instrumented = opts;
  instrumented.telemetry = true;
  return profiled([&] { (void)run_triangles(method, g, instrumented); });
}

}  // namespace crcw::algo
