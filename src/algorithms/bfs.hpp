// Level-synchronous BFS — paper Figure 3 and the Figure 7/8/9 benchmark.
//
// A faithful re-implementation of the Rodinia 3.1 OpenMP BFS the paper
// starts from: each iteration scans all vertices, and vertices on the
// current level relax their edges. Discovering a vertex u is a concurrent
// write into FOUR arrays at once — Parent[u], Sel_edge[u], Visited[u],
// Level[u] (Fig 3 lines 23-26) — exactly the multi-transaction write §4
// warns about. The three variants differ only in the `canConWrite` call on
// line 22:
//
//   naive       no guard: every discovering edge stores all four (Rodinia's
//               original). Level/Visited are common CWs and stay correct;
//               Parent/Sel_edge are arbitrary CWs and can end up MIXED
//               (parent from edge A, sel_edge from edge B).
//   gatekeeper  Figure 3(b): atomic increment on gatekeeper[u]; requires the
//               O(N) gatekeeper re-zero after every level (lines 34-35).
//   caslt       Figure 3(a): CAS-LT on RoundWritten[u] with round = L+1,
//               "round for free" from the level counter (line 33).
//
// Fixes to the paper's pseudo-code (see DESIGN.md §7): Level[] initialised
// to -1 (the listing never initialises non-source levels), V[] has N+1
// entries, and `done` is reduced through a relaxed atomic store.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policies.hpp"
#include "graph/csr.hpp"

namespace crcw::algo {

struct BfsOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
  /// Gatekeeper-family only: reset per-level tags from the touched lists
  /// (O(#discoveries-last-level)) instead of the paper-faithful Θ(N)
  /// sweep. No effect on reset-free policies (CAS-LT).
  bool sparse_reset = false;
};

struct BfsResult {
  std::vector<std::int64_t> level;       ///< -1 = unreachable
  std::vector<graph::vertex_t> parent;   ///< kNoVertex = none
  std::vector<graph::edge_t> sel_edge;   ///< CSR slot that discovered v
  std::uint64_t rounds = 0;              ///< executed level iterations
};

namespace detail {
template <WritePolicy Policy>
BfsResult bfs_kernel(const graph::Csr& g, graph::vertex_t source, const BfsOptions& opts);

/// How bfs_frontier_kernel allocates next-frontier slots: per-thread
/// chunked grants through a SlotAllocator (one shared RMW per chunk), or
/// the original per-discovery shared fetch_add (kept as the baseline the
/// contention counters are compared against).
enum class SlotMode { kChunked, kShared };

template <WritePolicy Policy>
BfsResult bfs_frontier_kernel(const graph::Csr& g, graph::vertex_t source,
                              const BfsOptions& opts, SlotMode slot_mode);
}

/// Frontier-queue BFS (the other Rodinia formulation): instead of scanning
/// all N vertices per level (Fig 3 line 15), an explicit frontier array is
/// carried between levels, with the next frontier allocated through an
/// atomic tail counter — fetch_add as a *slot-allocating* concurrent write,
/// complementing CAS-LT's *winner-selecting* one. Discovery itself is
/// still guarded by CAS-LT, so parent/sel_edge stay consistent. Work is
/// Θ(edges touched) instead of Θ(levels · N). Slots come from a
/// SlotAllocator (per-thread chunked grants, core/slot_alloc.hpp), and the
/// frontier/next buffers are double-buffered with std::swap — no O(frontier)
/// copy per level.
[[nodiscard]] BfsResult bfs_frontier(const graph::Csr& g, graph::vertex_t source,
                                     const BfsOptions& opts = {});

/// bfs_frontier with the original per-discovery shared `tail.fetch_add`
/// slot allocation — the contention baseline the SlotAllocator variant is
/// profiled against (see profile_bfs "frontier" vs "frontier-shared").
[[nodiscard]] BfsResult bfs_frontier_shared(const graph::Csr& g, graph::vertex_t source,
                                            const BfsOptions& opts = {});

/// Direction-optimizing BFS (Beamer-style): dense frontiers switch to
/// BOTTOM-UP steps, where each *unvisited* vertex scans its own adjacency
/// for a visited neighbour and claims itself — an exclusive write, no
/// concurrent-write machinery at all. Sparse frontiers run the CAS-LT
/// top-down step. The switch threshold is `alpha` × average degree. A
/// counterpoint inside the library: restructuring can sometimes remove the
/// need for CW entirely, at the price of extra edge scans.
[[nodiscard]] BfsResult bfs_direction_optimizing(const graph::Csr& g,
                                                 graph::vertex_t source,
                                                 const BfsOptions& opts = {});

/// One entry point per method compared in Figures 7–9.
[[nodiscard]] BfsResult bfs_naive(const graph::Csr& g, graph::vertex_t source,
                                  const BfsOptions& opts = {});
[[nodiscard]] BfsResult bfs_gatekeeper(const graph::Csr& g, graph::vertex_t source,
                                       const BfsOptions& opts = {});
/// Gatekeeper with sparse per-level reset (opts.sparse_reset forced on):
/// the new ablation axis against the Θ(N)-sweep bfs_gatekeeper baseline.
[[nodiscard]] BfsResult bfs_gatekeeper_sparse(const graph::Csr& g, graph::vertex_t source,
                                              const BfsOptions& opts = {});
[[nodiscard]] BfsResult bfs_gatekeeper_skip(const graph::Csr& g, graph::vertex_t source,
                                            const BfsOptions& opts = {});
[[nodiscard]] BfsResult bfs_caslt(const graph::Csr& g, graph::vertex_t source,
                                  const BfsOptions& opts = {});
[[nodiscard]] BfsResult bfs_critical(const graph::Csr& g, graph::vertex_t source,
                                     const BfsOptions& opts = {});

}  // namespace crcw::algo
