#include "algorithms/max.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/arbiter.hpp"
#include "core/instrumented.hpp"
#include "util/aligned_buffer.hpp"

namespace crcw::algo {
namespace {

void require_nonempty(std::span<const std::uint32_t> list) {
  if (list.empty()) throw std::invalid_argument("max of empty list");
}

/// Fig 4 line 9: true iff i loses the (i, j) comparison.
inline bool loses(std::span<const std::uint32_t> list, std::uint64_t i,
                  std::uint64_t j) noexcept {
  return list[i] < list[j] || (list[i] == list[j] && i < j);
}

/// Serial scan for the surviving flag (Fig 4 lines 13-14: last survivor).
std::uint64_t survivor(std::span<const std::uint8_t> is_max) {
  std::uint64_t max_idx = 0;
  for (std::uint64_t j = 0; j < is_max.size(); ++j) {
    if (is_max[j] != 0) max_idx = j;
  }
  return max_idx;
}

}  // namespace

std::uint64_t max_index_seq(std::span<const std::uint32_t> list) {
  require_nonempty(list);
  std::uint64_t best = 0;
  for (std::uint64_t i = 1; i < list.size(); ++i) {
    if (list[i] >= list[best]) best = i;  // >=: last occurrence wins ties
  }
  return best;
}

std::uint64_t max_index_reduce(std::span<const std::uint32_t> list, const MaxOptions& opts) {
  require_nonempty(list);
  const auto n = static_cast<std::int64_t>(list.size());
  std::int64_t best = 0;
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel num_threads(threads)
  {
    std::int64_t local = 0;
#pragma omp for nowait
    for (std::int64_t i = 1; i < n; ++i) {
      if (list[static_cast<std::size_t>(i)] >= list[static_cast<std::size_t>(local)]) {
        local = i;
      }
    }
#pragma omp critical
    {
      if (list[static_cast<std::size_t>(local)] > list[static_cast<std::size_t>(best)] ||
          (list[static_cast<std::size_t>(local)] == list[static_cast<std::size_t>(best)] &&
           local > best)) {
        best = local;
      }
    }
  }
  return static_cast<std::uint64_t>(best);
}

std::uint64_t max_index_doubly_log(std::span<const std::uint32_t> list,
                                   const MaxOptions& opts) {
  require_nonempty(list);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();

  // Surviving candidate indices into `list`; shrinks by the group factor
  // per round.
  std::vector<std::uint64_t> candidates(list.size());
  for (std::uint64_t i = 0; i < list.size(); ++i) candidates[i] = i;
  std::vector<std::uint64_t> winners;
  std::vector<std::uint8_t> is_max(list.size(), 1);
  WriteArbiter<CasLtPolicy> arbiter(list.size());

  // Compares candidate positions a, b within the round (Fig 4 tie-break on
  // the ORIGINAL indices so the overall winner matches max_index_seq).
  const auto loses_cand = [&](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t ia = candidates[a];
    const std::uint64_t ib = candidates[b];
    return list[ia] < list[ib] || (list[ia] == list[ib] && ia < ib);
  };

  std::uint64_t group = 2;  // 2, 4, 16, 256, 65536, ... (squares)
  while (candidates.size() > 1) {
    const std::uint64_t m = candidates.size();
    const std::uint64_t g = std::min<std::uint64_t>(group, m);
    const std::uint64_t groups = (m + g - 1) / g;
    auto scope = arbiter.next_round(ResetMode::kNone);  // CAS-LT: no sweep

    // One CW round: every in-group pair marks its loser. Work per round is
    // #groups * g^2 = O(m * g) = O(n) by the group-size schedule.
    const auto pairs = static_cast<std::int64_t>(groups * g * g);
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t k = 0; k < pairs; ++k) {
      const auto gk = static_cast<std::uint64_t>(k);
      const std::uint64_t grp = gk / (g * g);
      const std::uint64_t i = grp * g + (gk % (g * g)) / g;
      const std::uint64_t j = grp * g + (gk % g);
      if (i >= m || j >= m || i == j) continue;
      const std::uint64_t loser = loses_cand(i, j) ? i : j;
      if (scope.acquire(loser)) is_max[loser] = 0;
    }

    // Gather the per-group survivors (exclusive writes, one per group).
    winners.assign(groups, 0);
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t t = 0; t < static_cast<std::int64_t>(groups); ++t) {
      const auto grp = static_cast<std::uint64_t>(t);
      std::uint64_t w = candidates[grp * g];  // singleton groups keep their member
      for (std::uint64_t i = grp * g; i < std::min(m, (grp + 1) * g); ++i) {
        if (is_max[i] != 0) w = candidates[i];
      }
      winners[grp] = w;
    }
    candidates.swap(winners);
    std::fill(is_max.begin(), is_max.begin() + static_cast<std::ptrdiff_t>(candidates.size()),
              1);
    if (group <= (std::uint64_t{1} << 16)) group = group * group;  // avoid overflow
  }
  return candidates[0];
}

namespace detail {

template <WritePolicy Policy>
std::uint64_t max_index_kernel(std::span<const std::uint32_t> list, const MaxOptions& opts) {
  require_nonempty(list);
  const std::uint64_t n = list.size();
  std::vector<std::uint8_t> is_max(n, 1);
  WriteArbiter<Policy> arbiter(n);
  auto scope = arbiter.next_round();

  const auto pairs = static_cast<std::int64_t>(n * n);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t k = 0; k < pairs; ++k) {
    const auto i = static_cast<std::uint64_t>(k) / n;
    const auto j = static_cast<std::uint64_t>(k) % n;
    if (i == j) continue;
    const std::uint64_t loser = loses(list, i, j) ? i : j;
    // Common concurrent write of `false`; the policy admits one writer and
    // lets every later contender skip (tags stay valid: one round total).
    if (scope.acquire(loser)) is_max[loser] = 0;
  }
  // Implicit barrier above is the PRAM synchronisation point before the
  // dependent read below.
  return survivor(is_max);
}

std::uint64_t max_index_naive_impl(std::span<const std::uint32_t> list,
                                   const MaxOptions& opts) {
  require_nonempty(list);
  const std::uint64_t n = list.size();
  // The naive method issues every store; relaxed atomics express "let the
  // memory system order them" without a C++ data race. All stores carry the
  // same value, so this is a legal common CW (§4).
  std::vector<std::uint8_t> is_max(n, 1);

  const auto pairs = static_cast<std::int64_t>(n * n);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t k = 0; k < pairs; ++k) {
    const auto i = static_cast<std::uint64_t>(k) / n;
    const auto j = static_cast<std::uint64_t>(k) % n;
    if (i == j) continue;
    const std::uint64_t loser = loses(list, i, j) ? i : j;
    std::atomic_ref<std::uint8_t>(is_max[loser]).store(0, std::memory_order_relaxed);
  }
  return survivor(is_max);
}

// The benchmark-facing wrappers below pin down the exact instantiations.
template std::uint64_t max_index_kernel<CasLtPolicy>(std::span<const std::uint32_t>,
                                                     const MaxOptions&);
template std::uint64_t max_index_kernel<GatekeeperPolicy>(std::span<const std::uint32_t>,
                                                          const MaxOptions&);
template std::uint64_t max_index_kernel<GatekeeperSkipPolicy>(std::span<const std::uint32_t>,
                                                              const MaxOptions&);
template std::uint64_t max_index_kernel<CriticalPolicy>(std::span<const std::uint32_t>,
                                                        const MaxOptions&);
// Instrumented variants for the contention-profiling entry points
// (algorithms/dispatch.hpp): same kernel, counted tags.
template std::uint64_t max_index_kernel<InstrumentedPolicy<CasLtPolicy>>(
    std::span<const std::uint32_t>, const MaxOptions&);
template std::uint64_t max_index_kernel<InstrumentedPolicy<GatekeeperPolicy>>(
    std::span<const std::uint32_t>, const MaxOptions&);
template std::uint64_t max_index_kernel<InstrumentedPolicy<GatekeeperSkipPolicy>>(
    std::span<const std::uint32_t>, const MaxOptions&);

}  // namespace detail

std::uint64_t max_index_naive(std::span<const std::uint32_t> list, const MaxOptions& opts) {
  return detail::max_index_naive_impl(list, opts);
}

std::uint64_t max_index_gatekeeper(std::span<const std::uint32_t> list,
                                   const MaxOptions& opts) {
  return detail::max_index_kernel<GatekeeperPolicy>(list, opts);
}

std::uint64_t max_index_gatekeeper_skip(std::span<const std::uint32_t> list,
                                        const MaxOptions& opts) {
  return detail::max_index_kernel<GatekeeperSkipPolicy>(list, opts);
}

std::uint64_t max_index_caslt(std::span<const std::uint32_t> list, const MaxOptions& opts) {
  return detail::max_index_kernel<CasLtPolicy>(list, opts);
}

std::uint64_t max_index_critical(std::span<const std::uint32_t> list, const MaxOptions& opts) {
  return detail::max_index_kernel<CriticalPolicy>(list, opts);
}

}  // namespace crcw::algo
