// Constant-time basic Maximum — paper Figure 4 and the Figure 5/6 benchmark.
//
// The textbook O(1)-depth, Θ(N²)-work CRCW maximum: one virtual processor
// per ordered pair (i, j) marks the pair's loser in isMax[]; the survivor is
// the maximum. Every write is a *common* concurrent write of `false`, making
// this "an extreme case of concurrency" (§7.2) — up to N-1 processors
// collide on one flag — and therefore the cleanest microscope for comparing
// CW implementations:
//
//   naive       every loser-comparison stores; coherence serialises them
//   gatekeeper  every loser-comparison runs fetch_add; one stores
//   caslt       first loser-comparison wins the CAS and stores; the rest
//               skip both the atomic and the store after one relaxed load
//
// Tie-break (Fig 4 line 9): equal values lose to the larger index, so the
// maximum is the *last* occurrence of the maximal value.
#pragma once

#include <cstdint>
#include <span>

#include "core/policies.hpp"

namespace crcw::algo {

struct MaxOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Sequential reference (last occurrence of the maximum, per the tie-break).
[[nodiscard]] std::uint64_t max_index_seq(std::span<const std::uint32_t> list);

/// OpenMP reduction baseline — the CREW-style way a practitioner would
/// write this; Θ(N) work. Exists to contextualise the N² kernels.
[[nodiscard]] std::uint64_t max_index_reduce(std::span<const std::uint32_t> list,
                                             const MaxOptions& opts = {});

/// Doubly-logarithmic CRCW maximum (JaJa §2.6): candidates are reduced
/// through groups of size 2, 4, 16, 256, … — each group resolved by the
/// constant-time kernel — giving O(log log N) concurrent-write rounds and
/// O(N) work per round (Θ(N log log N) total), against Figure 4's one
/// round of Θ(N²) work. The §8 "better Work-Depth complexity" counterpart,
/// buildable only because rounds are cheap with CAS-LT (no per-round
/// re-initialisation). Same tie-break as the other kernels.
[[nodiscard]] std::uint64_t max_index_doubly_log(std::span<const std::uint32_t> list,
                                                 const MaxOptions& opts = {});

namespace detail {

/// The Figure 4 kernel over a generic write policy; isMax flags and policy
/// tags are allocated per call. Flattens the collapse(2) pair loop into one
/// index space of N² virtual processors.
template <WritePolicy Policy>
std::uint64_t max_index_kernel(std::span<const std::uint32_t> list, const MaxOptions& opts);

/// The naive variant stores directly (common CW through relaxed atomics —
/// what Rodinia's code does, made race-free in the C++ memory model).
std::uint64_t max_index_naive_impl(std::span<const std::uint32_t> list,
                                   const MaxOptions& opts);

}  // namespace detail

/// One entry point per method compared in Figures 5 and 6.
[[nodiscard]] std::uint64_t max_index_naive(std::span<const std::uint32_t> list,
                                            const MaxOptions& opts = {});
[[nodiscard]] std::uint64_t max_index_gatekeeper(std::span<const std::uint32_t> list,
                                                 const MaxOptions& opts = {});
[[nodiscard]] std::uint64_t max_index_gatekeeper_skip(std::span<const std::uint32_t> list,
                                                      const MaxOptions& opts = {});
[[nodiscard]] std::uint64_t max_index_caslt(std::span<const std::uint32_t> list,
                                            const MaxOptions& opts = {});
[[nodiscard]] std::uint64_t max_index_critical(std::span<const std::uint32_t> list,
                                               const MaxOptions& opts = {});

}  // namespace crcw::algo
