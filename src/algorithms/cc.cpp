#include "algorithms/cc.hpp"

#include <omp.h>

#include <atomic>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/arbiter.hpp"
#include "core/combining.hpp"
#include "core/instrumented.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::edge_t;
using graph::vertex_t;

constexpr edge_t kNoEdge = static_cast<edge_t>(-1);

/// Relaxed atomic views over the raced arrays (see bfs.cpp for rationale).
inline vertex_t load_v(const vertex_t& cell) noexcept {
  return std::atomic_ref<const vertex_t>(cell).load(std::memory_order_relaxed);
}
inline void store_v(vertex_t& cell, vertex_t value) noexcept {
  std::atomic_ref<vertex_t>(cell).store(value, std::memory_order_relaxed);
}
inline std::uint8_t load_b(const std::uint8_t& cell) noexcept {
  return std::atomic_ref<const std::uint8_t>(cell).load(std::memory_order_relaxed);
}
inline void store_b(std::uint8_t& cell, std::uint8_t value) noexcept {
  std::atomic_ref<std::uint8_t>(cell).store(value, std::memory_order_relaxed);
}

/// Flat directed edge arrays — "parallelizing across all edges to perform
/// the hooking step" (§7.2).
struct FlatEdges {
  std::vector<vertex_t> src;
  std::vector<vertex_t> dst;

  explicit FlatEdges(const Csr& g) {
    src.resize(g.num_edges());
    dst.resize(g.num_edges());
    edge_t j = 0;
    for (vertex_t u = 0; u < g.num_vertices(); ++u) {
      for (const vertex_t v : g.neighbors(u)) {
        src[j] = u;
        dst[j] = v;
        ++j;
      }
    }
  }
};

/// Star detection (A-S); correct for arbitrary forest depth:
///   1. star[v] = true
///   2. v with a grandparent ≠ parent marks itself, its parent and its
///      grandparent non-star (common CWs of `false`)
///   3. star[v] = star[P[v]] pulls the root's verdict down to depth-1
///      children (the phase-3 read race is benign: both readable values
///      are already correct — see tests/test_cc.cpp star-detection suite).
void detect_stars(const std::vector<vertex_t>& parent, std::vector<std::uint8_t>& star,
                  int threads) {
  const auto n = static_cast<std::int64_t>(parent.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < n; ++v) star[static_cast<std::size_t>(v)] = 1;

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const vertex_t p = parent[static_cast<std::size_t>(v)];
    const vertex_t gp = parent[p];
    if (p != gp) {
      store_b(star[static_cast<std::size_t>(v)], 0);
      store_b(star[p], 0);
      store_b(star[gp], 0);
    }
  }

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < n; ++v) {
    const vertex_t p = parent[static_cast<std::size_t>(v)];
    store_b(star[static_cast<std::size_t>(v)], load_b(star[p]));
  }
}

std::uint64_t count_labels(const std::vector<vertex_t>& label) {
  std::unordered_set<vertex_t> roots(label.begin(), label.end());
  return roots.size();
}

}  // namespace

namespace detail {

template <WritePolicy Policy>
CcResult cc_kernel(const Csr& g, const CcOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto vcount = static_cast<std::int64_t>(n);

  CcResult result;
  result.label.resize(n);
  if (n == 0) return result;

  const FlatEdges edges(g);
  const auto ecount = static_cast<std::int64_t>(edges.src.size());

  std::vector<vertex_t>& parent = result.label;  // P[], doubles as the output
  std::vector<vertex_t> snapshot(n);             // pre-substep P (PRAM read set)
  std::vector<std::uint8_t> star(n);
  std::vector<edge_t> hook_edge(n, kNoEdge);  // 2nd member of the multi-array hook
  ArbiterConfig cfg;
  cfg.tracking = opts.sparse_reset ? TouchTracking::kEnabled : TouchTracking::kDisabled;
  cfg.lanes = threads;
  cfg.first_touch = util::FirstTouch::kParallel;  // tag pages with the sweepers
  cfg.first_touch_threads = threads;
  WriteArbiter<Policy> arbiter(n, cfg);
  const auto reset_tags = [&] {
    if (opts.sparse_reset) {
      arbiter.reset_tags_sparse(threads);
    } else {
      arbiter.reset_tags_parallel(threads);
    }
  };

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < vcount; ++v) {
    parent[static_cast<std::size_t>(v)] = static_cast<vertex_t>(v);
  }

  const auto take_snapshot = [&] {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      snapshot[static_cast<std::size_t>(v)] = parent[static_cast<std::size_t>(v)];
    }
  };

  // Safety net for implementation bugs: A-S converges in O(log n)
  // iterations; exceeding a generous multiple means non-convergence.
  std::uint64_t max_iters = 16;
  for (std::uint64_t s = 1; s < n; s *= 2) max_iters += 4;

  std::uint64_t iterations = 0;
  bool changed = true;

  while (changed) {
    if (++iterations > max_iters) {
      throw std::runtime_error("cc_kernel: exceeded iteration bound (no convergence)");
    }
    std::uint8_t any_change = 0;

    // --- 1. star detection -------------------------------------------------
    detect_stars(parent, star, threads);

    // --- 2. conditional star hooking (one arbitrary-CW round) --------------
    take_snapshot();
    // The gatekeeper re-initialisation sweep, once per hooking substep —
    // the recurring Θ(N) cost CAS-LT does not pay (§6); sparse mode sweeps
    // only the tags last substep's winning hooks touched.
    reset_tags();
    {
      auto scope = arbiter.next_round(ResetMode::kCaller);
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : any_change)
      for (std::int64_t j = 0; j < ecount; ++j) {
        const vertex_t u = edges.src[static_cast<std::size_t>(j)];
        const vertex_t v = edges.dst[static_cast<std::size_t>(j)];
        const vertex_t pu = snapshot[u];
        const vertex_t pv = snapshot[v];
        if (star[u] != 0 && pv < pu) {
          if (scope.acquire(pu)) {
            // The multi-array hook update of §7.2: new parent + hook edge
            // must come from ONE winning edge, or the pair is inconsistent.
            store_v(parent[pu], pv);
            hook_edge[pu] = static_cast<edge_t>(j);
            any_change = 1;
          }
        }
      }
    }

    // --- 3. star detection on the hooked forest ----------------------------
    detect_stars(parent, star, threads);

    // --- 4. unconditional star hooking (one arbitrary-CW round) ------------
    // Two extra guards beyond the textbook `pv != pu`, both protecting the
    // invariant that a committed hook is PERMANENT (lockstep A-S instead
    // lets transient 2-cycles form and dissolve in the next jump — e.g.
    // two stars assembled by this iteration's conditional phase can be
    // mutually adjacent here and hook each other; harmless for labels,
    // fatal for the recorded spanning forest):
    //   * snapshot[pv] == pv — hook onto a settled ROOT, never a vertex
    //     whose own root moved this iteration;
    //   * pv > pu — orient unconditional hooks strictly UPWARD, so the
    //     round's hook digraph on tree roots is increasing and therefore
    //     acyclic under any interleaving. A star blocked by either guard
    //     merges in a later round once pointer jumping exposes the
    //     neighbouring root (downward merges belong to the conditional
    //     phase by construction).
    take_snapshot();
    reset_tags();
    {
      auto scope = arbiter.next_round(ResetMode::kCaller);
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : any_change)
      for (std::int64_t j = 0; j < ecount; ++j) {
        const vertex_t u = edges.src[static_cast<std::size_t>(j)];
        const vertex_t v = edges.dst[static_cast<std::size_t>(j)];
        const vertex_t pu = snapshot[u];
        const vertex_t pv = snapshot[v];
        if (star[u] != 0 && pv > pu && snapshot[pv] == pv) {
          if (scope.acquire(pu)) {
            store_v(parent[pu], pv);
            hook_edge[pu] = static_cast<edge_t>(j);
            any_change = 1;
          }
        }
      }
    }

    // --- 5. pointer jumping -------------------------------------------------
    take_snapshot();
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : any_change)
    for (std::int64_t v = 0; v < vcount; ++v) {
      const vertex_t target = snapshot[snapshot[static_cast<std::size_t>(v)]];
      if (target != parent[static_cast<std::size_t>(v)]) {
        parent[static_cast<std::size_t>(v)] = target;
        any_change = 1;
      }
    }

    changed = any_change != 0;
  }

  result.iterations = iterations;
  result.components = count_labels(result.label);
  // A root is hooked at most once in its lifetime (a hooked root never
  // becomes a root again), so the per-root hook records are final and
  // together form the spanning forest: one edge per merged tree.
  for (std::uint64_t v = 0; v < n; ++v) {
    if (hook_edge[v] != kNoEdge) result.forest_edges.push_back(hook_edge[v]);
  }
  return result;
}

template CcResult cc_kernel<CasLtPolicy>(const Csr&, const CcOptions&);
template CcResult cc_kernel<GatekeeperPolicy>(const Csr&, const CcOptions&);
template CcResult cc_kernel<GatekeeperSkipPolicy>(const Csr&, const CcOptions&);
template CcResult cc_kernel<CriticalPolicy>(const Csr&, const CcOptions&);
// Instrumented variants for the contention-profiling entry points.
template CcResult cc_kernel<InstrumentedPolicy<CasLtPolicy>>(const Csr&, const CcOptions&);
template CcResult cc_kernel<InstrumentedPolicy<GatekeeperPolicy>>(const Csr&, const CcOptions&);
template CcResult cc_kernel<InstrumentedPolicy<GatekeeperSkipPolicy>>(const Csr&,
                                                                      const CcOptions&);

}  // namespace detail

CcResult cc_gatekeeper(const Csr& g, const CcOptions& opts) {
  return detail::cc_kernel<GatekeeperPolicy>(g, opts);
}

CcResult cc_gatekeeper_sparse(const Csr& g, const CcOptions& opts) {
  CcOptions sparse = opts;
  sparse.sparse_reset = true;
  return detail::cc_kernel<GatekeeperPolicy>(g, sparse);
}

CcResult cc_gatekeeper_skip(const Csr& g, const CcOptions& opts) {
  return detail::cc_kernel<GatekeeperSkipPolicy>(g, opts);
}

CcResult cc_caslt(const Csr& g, const CcOptions& opts) {
  return detail::cc_kernel<CasLtPolicy>(g, opts);
}

CcResult cc_critical(const Csr& g, const CcOptions& opts) {
  return detail::cc_kernel<CriticalPolicy>(g, opts);
}

CcResult cc_min_hook(const Csr& g, const CcOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto vcount = static_cast<std::int64_t>(n);

  CcResult result;
  result.label.resize(n);
  if (n == 0) return result;

  const FlatEdges edges(g);
  const auto ecount = static_cast<std::int64_t>(edges.src.size());

  std::vector<vertex_t>& parent = result.label;
  std::vector<vertex_t> snapshot(n);

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < vcount; ++v) {
    parent[static_cast<std::size_t>(v)] = static_cast<vertex_t>(v);
  }

  const auto take_snapshot = [&] {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      snapshot[static_cast<std::size_t>(v)] = parent[static_cast<std::size_t>(v)];
    }
  };

  std::uint64_t max_iters = 16;
  for (std::uint64_t s = 1; s < n; s *= 2) max_iters += 4;

  std::uint64_t iterations = 0;
  bool changed = true;
  while (changed) {
    if (++iterations > max_iters) {
      throw std::runtime_error("cc_min_hook: exceeded iteration bound");
    }
    std::uint8_t any_change = 0;

    // Hooking: offer the smaller endpoint label into the larger label's
    // cell (atomic fetch-min = Priority(min-value) CW). Since the written
    // value is always strictly below the target index, parent[i] <= i is an
    // invariant and the forest can never form a cycle, whatever the
    // interleaving — monotonicity replaces A-S's star machinery.
    take_snapshot();
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : any_change)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const vertex_t pu = snapshot[edges.src[static_cast<std::size_t>(j)]];
      const vertex_t pv = snapshot[edges.dst[static_cast<std::size_t>(j)]];
      if (pu == pv) continue;
      const vertex_t lo = pu < pv ? pu : pv;
      const vertex_t hi = pu < pv ? pv : pu;
      std::atomic_ref<vertex_t> cell(parent[hi]);
      if (atomic_fetch_min(cell, lo)) any_change = 1;
    }

    // Full pointer compression: jump until every pointer is a fixpoint.
    bool compressing = true;
    while (compressing) {
      std::uint8_t jumped = 0;
      take_snapshot();
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : jumped)
      for (std::int64_t v = 0; v < vcount; ++v) {
        const vertex_t target = snapshot[snapshot[static_cast<std::size_t>(v)]];
        if (target != parent[static_cast<std::size_t>(v)]) {
          parent[static_cast<std::size_t>(v)] = target;
          jumped = 1;
        }
      }
      compressing = jumped != 0;
      if (jumped != 0) any_change = 1;
    }

    changed = any_change != 0;
  }

  result.iterations = iterations;
  result.components = count_labels(result.label);
  return result;
}

}  // namespace crcw::algo
