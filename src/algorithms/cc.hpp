// Connected Components — paper §7.2 "Connected Components Algorithm" and
// the Figure 10/11/12 benchmark.
//
// The Awerbuch–Shiloach (1987) algorithm: a Shiloach–Vishkin variant whose
// hooking decisions are simplified by star detection. State is a parent
// forest P[] (roots are self-loops); each iteration:
//
//   1. star detection            (3 common-CW substeps)
//   2. conditional star hooking  for each edge (u,v): a star containing u
//                                hooks its root onto P[v] when P[v] < P[u]
//   3. star detection again
//   4. unconditional star hooking: surviving stars hook onto any adjacent
//                                different tree (guarantees progress)
//   5. pointer jumping           P[v] = P[P[v]]
//
// Hooking is an *arbitrary* concurrent write: many edges compete to set a
// root's parent, and the winning edge must update multiple cells atomically
// as a unit (the new parent AND the hook-edge record) — which is why the
// paper implements no naive CC variant: racing multi-array updates can
// commit a mix of two different hooks (§5). Every level of the CW guard
// (gatekeeper / CAS-LT / critical) is provided; each hooking substep is one
// concurrent-write round.
//
// Requiring P[v] < P[u] in step 2 orients conditional hooks downward, so the
// forest stays acyclic; unconditional hooking is restricted to stars that
// survived step 3, which cannot have been hooked in this iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policies.hpp"
#include "graph/csr.hpp"

namespace crcw::algo {

struct CcOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
  /// Gatekeeper-family only: reset each hooking substep's tags from the
  /// touched lists (O(#hooks-last-substep)) instead of the Θ(N) sweep.
  bool sparse_reset = false;
};

struct CcResult {
  /// Component representative per vertex (a root id; canonicalise with
  /// graph::canonicalize_labels before comparing across runs).
  std::vector<graph::vertex_t> label;
  /// CSR slots whose hooks committed — a spanning forest: exactly
  /// (n − components) edges whose union-find partition equals `label`.
  /// This is the second member of the multi-array hook update (§7.2) and
  /// why CC has no safe naive variant: a racing hook could record an edge
  /// belonging to a different winner. Empty for cc_min_hook (combining
  /// writes carry no payload).
  std::vector<graph::edge_t> forest_edges;
  std::uint64_t iterations = 0;   ///< hook+jump iterations executed
  std::uint64_t components = 0;   ///< number of distinct labels
};

namespace detail {
template <WritePolicy Policy>
CcResult cc_kernel(const graph::Csr& g, const CcOptions& opts);
}

/// One entry point per CW method compared in Figures 10–12 (no naive
/// variant exists — see above).
[[nodiscard]] CcResult cc_gatekeeper(const graph::Csr& g, const CcOptions& opts = {});
/// Gatekeeper with sparse substep resets (opts.sparse_reset forced on) —
/// the ablation partner of cc_gatekeeper's paper-faithful Θ(N) sweeps.
[[nodiscard]] CcResult cc_gatekeeper_sparse(const graph::Csr& g, const CcOptions& opts = {});
[[nodiscard]] CcResult cc_gatekeeper_skip(const graph::Csr& g, const CcOptions& opts = {});
[[nodiscard]] CcResult cc_caslt(const graph::Csr& g, const CcOptions& opts = {});
[[nodiscard]] CcResult cc_critical(const graph::Csr& g, const CcOptions& opts = {});

/// Shiloach–Vishkin-style min-label hooking baseline: every edge offers the
/// smaller endpoint label to the larger label's cell via atomic fetch-min
/// (a Priority(min-value) CW, core/combining.hpp), followed by full pointer
/// compression. Monotone — parent[i] < i always — so it is acyclic under
/// any interleaving, no star/stagnancy machinery needed. This is the
/// formulation modern GPU CC codes derive from SV.
[[nodiscard]] CcResult cc_min_hook(const graph::Csr& g, const CcOptions& opts = {});

}  // namespace crcw::algo
