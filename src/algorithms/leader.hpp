// Leader election — arbitrary CW as a selection primitive.
//
// The smallest useful arbitrary concurrent write: every candidate offers
// its own id into one cell and exactly one is elected, in one O(1)-depth
// step. Three flavours matching the §2 resolution rules:
//
//   elect_any       Arbitrary  — some candidate (scheduling-dependent)
//   elect_min       Priority   — the smallest candidate id (deterministic)
//   elect_min_key   Priority   — the candidate with the smallest key
//
// `elect_any` is the building block kernels use to pick a representative
// ("one thread handles the shared cleanup"), for which arbitrary CW is
// strictly cheaper than a priority reduction.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/policies.hpp"

namespace crcw::algo {

struct LeaderOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Elects an arbitrary i in [0, n) with pred(i); empty when none qualifies.
/// One CAS-LT round; any qualifying index may win.
[[nodiscard]] std::optional<std::uint64_t> elect_any(
    std::uint64_t n, const std::function<bool(std::uint64_t)>& pred,
    const LeaderOptions& opts = {});

/// Elects the smallest qualifying index (Priority min-rank semantics, via
/// combining fetch-min). Deterministic.
[[nodiscard]] std::optional<std::uint64_t> elect_min(
    std::uint64_t n, const std::function<bool(std::uint64_t)>& pred,
    const LeaderOptions& opts = {});

/// Elects the qualifying index with the smallest 32-bit key (ties to the
/// smaller index), one packed priority round. Deterministic.
[[nodiscard]] std::optional<std::uint64_t> elect_min_key(
    std::uint64_t n, const std::function<std::optional<std::uint32_t>(std::uint64_t)>& key,
    const LeaderOptions& opts = {});

}  // namespace crcw::algo
