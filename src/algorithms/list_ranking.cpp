#include "algorithms/list_ranking.hpp"

#include <omp.h>

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace crcw::algo {

std::vector<std::uint64_t> list_rank(std::span<const std::uint64_t> next,
                                     const ListRankOptions& opts) {
  const std::uint64_t n = next.size();
  for (const std::uint64_t s : next) {
    if (s >= n) throw std::invalid_argument("list_rank: successor out of range");
  }

  std::vector<std::uint64_t> rank(n);
  std::vector<std::uint64_t> succ(next.begin(), next.end());
  std::vector<std::uint64_t> rank_new(n);
  std::vector<std::uint64_t> succ_new(n);

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto count = static_cast<std::int64_t>(n);

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    rank[idx] = succ[idx] == idx ? 0 : 1;
  }

  // ceil(log2 n) jumping rounds; double-buffered so every round reads the
  // previous round's state only — pure CREW discipline, no concurrent
  // writes anywhere.
  for (std::uint64_t span = 1; span < n; span *= 2) {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < count; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const std::uint64_t s = succ[idx];
      rank_new[idx] = rank[idx] + (s == idx ? 0 : rank[s]);
      succ_new[idx] = succ[s];
    }
    rank.swap(rank_new);
    succ.swap(succ_new);
  }
  return rank;
}

std::vector<std::uint64_t> list_rank_seq(std::span<const std::uint64_t> next) {
  const std::uint64_t n = next.size();
  std::vector<std::uint64_t> rank(n, 0);
  if (n == 0) return rank;

  // Find the tail, then walk from every node? O(n²) worst case — instead
  // compute by one pass from the head: find head (the node nobody points
  // to), walk the list assigning distance-to-tail afterwards.
  std::vector<std::uint8_t> pointed(n, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (next[i] >= n) throw std::invalid_argument("list_rank_seq: successor out of range");
    if (next[i] != i) pointed[next[i]] = 1;
  }
  std::uint64_t head = n;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (pointed[i] == 0) {
      if (head != n) throw std::invalid_argument("list_rank_seq: multiple heads");
      head = i;
    }
  }
  if (head == n) throw std::invalid_argument("list_rank_seq: no head (cycle)");

  std::vector<std::uint64_t> order;
  order.reserve(n);
  std::uint64_t cur = head;
  while (true) {
    order.push_back(cur);
    if (next[cur] == cur) break;
    cur = next[cur];
    if (order.size() > n) throw std::invalid_argument("list_rank_seq: cycle detected");
  }
  if (order.size() != n) throw std::invalid_argument("list_rank_seq: disconnected list");

  for (std::uint64_t pos = 0; pos < n; ++pos) {
    rank[order[pos]] = n - 1 - pos;
  }
  return rank;
}

RandomList make_random_list(std::uint64_t n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("make_random_list: empty list");
  // Random node order via Fisher-Yates, then chain them.
  std::vector<std::uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.bounded(i + 1)]);
  }

  RandomList out;
  out.next.resize(n);
  for (std::uint64_t pos = 0; pos + 1 < n; ++pos) out.next[order[pos]] = order[pos + 1];
  out.next[order[n - 1]] = order[n - 1];
  out.head = order[0];
  out.tail = order[n - 1];
  return out;
}

}  // namespace crcw::algo
