// Parallel prefix sums (scan) — the substrate the gatekeeper method is
// named after.
//
// The XMT lineage the paper compares against (§3, ref [21]) resolves
// concurrent writes with a *prefix-sum* over gatekeeper variables; on
// commodity hardware that degenerates to the atomic-increment Gatekeeper
// of Figure 2. This module provides the real thing — a work-efficient
// two-pass (reduce-then-scan) parallel prefix sum — both because a PRAM
// library is incomplete without scan, and so tests can show the
// equivalence: `gatekeeper winner == (exclusive scan of request flags)[i]
// == 0` (tests/test_scan.cpp).
//
// Θ(N) work, O(N/P + P) span on P threads (two passes over blocks).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace crcw::algo {

struct ScanOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Exclusive scan: out[i] = op(init, in[0..i)) with out[0] = init.
/// `op` must be associative; `init` its identity.
[[nodiscard]] std::vector<std::uint64_t> exclusive_scan(std::span<const std::uint64_t> in,
                                                        const ScanOptions& opts = {});

/// Inclusive scan: out[i] = in[0] + … + in[i].
[[nodiscard]] std::vector<std::uint64_t> inclusive_scan(std::span<const std::uint64_t> in,
                                                        const ScanOptions& opts = {});

/// Generic exclusive scan over any associative op with identity.
[[nodiscard]] std::vector<std::uint64_t> exclusive_scan_op(
    std::span<const std::uint64_t> in, std::uint64_t identity,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op,
    const ScanOptions& opts = {});

/// Stream compaction built on scan: indices i in [0, n) with flags[i] != 0,
/// in order — the PRAM way to build a frontier without a shared counter.
[[nodiscard]] std::vector<std::uint64_t> pack_indices(std::span<const std::uint8_t> flags,
                                                      const ScanOptions& opts = {});

}  // namespace crcw::algo
