#include "algorithms/bfs.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/arbiter.hpp"
#include "core/instrumented.hpp"
#include "core/slot_alloc.hpp"
#include "obs/metrics.hpp"
#include "util/chunking.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::edge_t;
using graph::kNoVertex;
using graph::vertex_t;

constexpr edge_t kNoEdge = static_cast<edge_t>(-1);

BfsResult make_result(std::uint64_t n, vertex_t source) {
  if (source >= n) throw std::invalid_argument("bfs: source out of range");
  BfsResult r;
  r.level.assign(n, -1);
  r.parent.assign(n, kNoVertex);
  r.sel_edge.assign(n, kNoEdge);
  r.level[source] = 0;
  r.parent[source] = source;
  return r;
}

/// Relaxed atomic views — the arrays are raced by design (checked by one
/// thread while written by another within a level); atomic_ref keeps that
/// defined behaviour without changing the generated x86 loads/stores.
inline std::int64_t load_level(const std::int64_t& cell) noexcept {
  return std::atomic_ref<const std::int64_t>(cell).load(std::memory_order_relaxed);
}
inline void store_level(std::int64_t& cell, std::int64_t v) noexcept {
  std::atomic_ref<std::int64_t>(cell).store(v, std::memory_order_relaxed);
}

/// Folds a run's slot-allocation tallies into a ContentionSite so profile
/// passes see them (attempts = slots handed out, atomics = shared-cursor
/// RMWs). The site is scoped to the call: it detaches immediately and the
/// current MetricsRegistry retains its totals.
void report_slot_counts(std::uint64_t grants, std::uint64_t shared_rmws,
                        std::uint64_t refills) {
  obs::ContentionSite site("frontier-slots");
  site.add_attempts(grants);
  site.add_atomics(shared_rmws);
  // Every slot-cursor fetch_add succeeds, so wins == atomics and the
  // derived failures stays 0 — grants beyond the shared RMWs are the
  // chunking's saving, carried by attempts vs atomics, not by failures.
  site.add_wins(shared_rmws);
  site.add_refills(refills);
}

}  // namespace

namespace detail {

template <WritePolicy Policy>
BfsResult bfs_kernel(const Csr& g, vertex_t source, const BfsOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  BfsResult result = make_result(n, source);

  const auto offsets = g.offsets();
  const auto targets = g.targets();
  auto* level = result.level.data();
  auto* parent = result.parent.data();
  auto* sel_edge = result.sel_edge.data();

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  ArbiterConfig cfg;
  cfg.tracking = opts.sparse_reset ? TouchTracking::kEnabled : TouchTracking::kDisabled;
  cfg.lanes = threads;
  // Tag pages land with the threads that sweep and acquire them.
  cfg.first_touch = util::FirstTouch::kParallel;
  cfg.first_touch_threads = threads;
  WriteArbiter<Policy> arbiter(n, cfg);
  const auto count = static_cast<std::int64_t>(n);

  std::int64_t l = 0;
  bool done = false;
  while (!done) {
    std::uint8_t frontier_empty = 1;
    // Fig 3(b) lines 34-35: re-zero the whole gatekeeper array — the
    // Θ(N)-work-per-level overhead CAS-LT avoids (no-op for policies
    // without per-round reset). The sparse variant sweeps only last
    // level's touched tags instead — O(#discoveries), the §6 cost term
    // this option exists to attack.
    if (opts.sparse_reset) {
      arbiter.reset_tags_sparse(threads);
    } else {
      arbiter.reset_tags_parallel(threads);
    }
    // Round id L+1 (Fig 3(a) line 22): monotone across levels, so CAS-LT
    // tags never need re-initialisation.
    auto scope = arbiter.next_round(ResetMode::kCaller);

#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(&& : frontier_empty)
    for (std::int64_t vi = 0; vi < count; ++vi) {
      const auto v = static_cast<vertex_t>(vi);
      if (load_level(level[vi]) != l) continue;
      for (edge_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        const vertex_t u = targets[j];
        if (load_level(level[u]) != -1) continue;  // Fig 3 "visited" check
        if (scope.acquire(u)) {
          // The multi-word discovery write of Fig 3 lines 23-27. Only the
          // policy winner executes it, so plain stores suffice for the
          // arbitrary-CW members (parent, sel_edge).
          parent[u] = v;
          sel_edge[u] = j;
          store_level(level[u], l + 1);
          frontier_empty = 0;
        }
      }
    }
    // Implicit barrier = the synchronisation point before dependent reads.
    done = frontier_empty != 0;
    ++l;  // Fig 3(a) line 33: "update round ID"
  }

  result.rounds = static_cast<std::uint64_t>(l);
  return result;
}

template BfsResult bfs_kernel<CasLtPolicy>(const Csr&, vertex_t, const BfsOptions&);
template BfsResult bfs_kernel<GatekeeperPolicy>(const Csr&, vertex_t, const BfsOptions&);
template BfsResult bfs_kernel<GatekeeperSkipPolicy>(const Csr&, vertex_t, const BfsOptions&);
template BfsResult bfs_kernel<CriticalPolicy>(const Csr&, vertex_t, const BfsOptions&);
// Instrumented variants for the contention-profiling entry points.
template BfsResult bfs_kernel<InstrumentedPolicy<CasLtPolicy>>(const Csr&, vertex_t,
                                                               const BfsOptions&);
template BfsResult bfs_kernel<InstrumentedPolicy<GatekeeperPolicy>>(const Csr&, vertex_t,
                                                                    const BfsOptions&);
template BfsResult bfs_kernel<InstrumentedPolicy<GatekeeperSkipPolicy>>(const Csr&, vertex_t,
                                                                        const BfsOptions&);

}  // namespace detail

BfsResult bfs_naive(const Csr& g, vertex_t source, const BfsOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  BfsResult result = make_result(n, source);

  const auto offsets = g.offsets();
  const auto targets = g.targets();
  auto* level = result.level.data();
  auto* parent = result.parent.data();
  auto* sel_edge = result.sel_edge.data();

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto count = static_cast<std::int64_t>(n);

  std::int64_t l = 0;
  bool done = false;
  while (!done) {
    std::uint8_t frontier_empty = 1;

#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(&& : frontier_empty)
    for (std::int64_t vi = 0; vi < count; ++vi) {
      const auto v = static_cast<vertex_t>(vi);
      if (load_level(level[vi]) != l) continue;
      for (edge_t j = offsets[v]; j < offsets[v + 1]; ++j) {
        const vertex_t u = targets[j];
        if (load_level(level[u]) != -1) continue;
        // Rodinia's original: no winner selection — every discovering edge
        // performs the whole write. Level is a common CW (same value L+1)
        // and stays correct; parent/sel_edge are arbitrary CWs racing each
        // other, so the committed pair may be MIXED across writers (the §4
        // hazard; tests only validate levels for this variant, and
        // tests/test_bfs.cpp demonstrates the mixed-pair outcome).
        std::atomic_ref<vertex_t>(parent[u]).store(v, std::memory_order_relaxed);
        std::atomic_ref<edge_t>(sel_edge[u]).store(j, std::memory_order_relaxed);
        store_level(level[u], l + 1);
        frontier_empty = 0;
      }
    }
    done = frontier_empty != 0;
    ++l;
  }

  result.rounds = static_cast<std::uint64_t>(l);
  return result;
}

namespace detail {

template <WritePolicy Policy>
BfsResult bfs_frontier_kernel(const Csr& g, vertex_t source, const BfsOptions& opts,
                              SlotMode slot_mode) {
  const std::uint64_t n = g.num_vertices();
  BfsResult result = make_result(n, source);

  const auto offsets = g.offsets();
  const auto targets = g.targets();
  auto* level = result.level.data();
  auto* parent = result.parent.data();
  auto* sel_edge = result.sel_edge.data();

  WriteArbiter<Policy> arbiter(n);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const int chunk = util::frontier_chunk();

  // Double-buffered frontier/next, each sized ONCE: a frontier holds at
  // most n vertices, plus the chunked grants' per-lane slack (holes that
  // compact() squeezes out again). Levels exchange the buffers with
  // std::swap — no O(frontier) copy per level.
  SlotAllocator slots(threads);
  const std::size_t cap = static_cast<std::size_t>(
      slot_mode == SlotMode::kChunked ? slots.capacity_for(n) : n);
  std::vector<vertex_t> frontier(cap);
  std::vector<vertex_t> next(cap);
  frontier[0] = source;
  std::uint64_t fsize = 1;
  std::uint64_t shared_rmws = 0;  // slot RMWs under SlotMode::kShared
  std::int64_t l = 0;

  while (fsize > 0) {
    auto scope = arbiter.next_round(ResetMode::kNone);
    const auto fcount = static_cast<std::int64_t>(fsize);
    auto* next_data = next.data();

    if (slot_mode == SlotMode::kChunked) {
      // Frontier vertices own very different degrees; dynamic chunks keep
      // threads busy on skewed graphs (util/chunking.hpp).
#pragma omp parallel for num_threads(threads) schedule(dynamic, chunk)
      for (std::int64_t fi = 0; fi < fcount; ++fi) {
        const vertex_t v = frontier[static_cast<std::size_t>(fi)];
        const int lane = omp_get_thread_num();
        for (edge_t j = offsets[v]; j < offsets[v + 1]; ++j) {
          const vertex_t u = targets[j];
          if (load_level(level[u]) != -1) continue;
          if (scope.acquire(u)) {
            parent[u] = v;
            sel_edge[u] = j;
            store_level(level[u], l + 1);
            // Slot-allocating CW through the lane's private cursor: one
            // shared fetch_add per chunk of discoveries, not per discovery.
            next_data[slots.grant(lane)] = u;
          }
        }
      }
      fsize = slots.compact(next_data);
    } else {
      std::atomic<std::uint64_t> tail{0};
#pragma omp parallel for num_threads(threads) schedule(dynamic, chunk)
      for (std::int64_t fi = 0; fi < fcount; ++fi) {
        const vertex_t v = frontier[static_cast<std::size_t>(fi)];
        for (edge_t j = offsets[v]; j < offsets[v + 1]; ++j) {
          const vertex_t u = targets[j];
          if (load_level(level[u]) != -1) continue;
          if (scope.acquire(u)) {
            parent[u] = v;
            sel_edge[u] = j;
            store_level(level[u], l + 1);
            // The baseline: fetch_add allocates a unique slot — every
            // discoverer RMWs the one shared tail.
            next_data[tail.fetch_add(1, std::memory_order_relaxed)] = u;
          }
        }
      }
      fsize = tail.load();
      shared_rmws += fsize;
    }

    std::swap(frontier, next);
    ++l;
  }

  if constexpr (InstrumentedWritePolicy<Policy>) {
    if (slot_mode == SlotMode::kChunked) {
      report_slot_counts(slots.grants(), slots.refills(), slots.refills());
    } else {
      report_slot_counts(shared_rmws, shared_rmws, 0);
    }
  }

  result.rounds = static_cast<std::uint64_t>(l);
  return result;
}

template BfsResult bfs_frontier_kernel<CasLtPolicy>(const Csr&, vertex_t,
                                                    const BfsOptions&, SlotMode);
template BfsResult bfs_frontier_kernel<InstrumentedPolicy<CasLtPolicy>>(
    const Csr&, vertex_t, const BfsOptions&, SlotMode);

}  // namespace detail

BfsResult bfs_frontier(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_frontier_kernel<CasLtPolicy>(g, source, opts,
                                                  detail::SlotMode::kChunked);
}

BfsResult bfs_frontier_shared(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_frontier_kernel<CasLtPolicy>(g, source, opts,
                                                  detail::SlotMode::kShared);
}

BfsResult bfs_direction_optimizing(const Csr& g, vertex_t source, const BfsOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  BfsResult result = make_result(n, source);

  const auto offsets = g.offsets();
  const auto targets = g.targets();
  auto* level = result.level.data();
  auto* parent = result.parent.data();
  auto* sel_edge = result.sel_edge.data();

  WriteArbiter<CasLtPolicy> arbiter(n);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const int bu_chunk = util::bottom_up_chunk();
  const auto count = static_cast<std::int64_t>(n);

  // Switch to bottom-up when the frontier's edge volume exceeds this
  // fraction of the graph (Beamer's alpha heuristic, simplified).
  const std::uint64_t dense_threshold = std::max<std::uint64_t>(1, g.num_edges() / 8);

  std::uint64_t frontier_edges = g.degree(source);
  std::int64_t l = 0;
  bool done = false;
  while (!done) {
    auto scope = arbiter.next_round(ResetMode::kNone);
    std::uint8_t frontier_empty = 1;
    std::uint64_t next_edges = 0;

    if (frontier_edges < dense_threshold) {
      // Top-down: the Fig 3(a) step, arbitration by CAS-LT.
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(&& : frontier_empty) reduction(+ : next_edges)
      for (std::int64_t vi = 0; vi < count; ++vi) {
        const auto v = static_cast<vertex_t>(vi);
        if (load_level(level[vi]) != l) continue;
        for (edge_t j = offsets[v]; j < offsets[v + 1]; ++j) {
          const vertex_t u = targets[j];
          if (load_level(level[u]) != -1) continue;
          if (scope.acquire(u)) {
            parent[u] = v;
            sel_edge[u] = j;
            store_level(level[u], l + 1);
            frontier_empty = 0;
            next_edges += g.degree(u);
          }
        }
      }
    } else {
      // Bottom-up: each unvisited vertex claims ITSELF on finding a
      // frontier neighbour. parent/sel_edge/level[u] are written by u's
      // own processor only — exclusive writes, zero CW arbitration.
#pragma omp parallel for num_threads(threads) schedule(dynamic, bu_chunk) \
    reduction(&& : frontier_empty) reduction(+ : next_edges)
      for (std::int64_t ui = 0; ui < count; ++ui) {
        const auto u = static_cast<vertex_t>(ui);
        if (load_level(level[ui]) != -1) continue;
        for (edge_t j = offsets[u]; j < offsets[u + 1]; ++j) {
          const vertex_t v = targets[j];
          if (load_level(level[v]) != l) continue;
          parent[u] = v;
          // Record the (v -> u) slot, like the top-down kernel does. The
          // sorted CSR makes the reverse slot findable by binary search.
          const auto adj_begin = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
          const auto adj_end = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
          const auto it = std::lower_bound(adj_begin, adj_end, u);
          sel_edge[u] = offsets[v] + static_cast<edge_t>(it - adj_begin);
          store_level(level[ui], l + 1);
          frontier_empty = 0;
          next_edges += g.degree(u);
          break;
        }
      }
    }

    done = frontier_empty != 0;
    frontier_edges = next_edges;
    ++l;
  }

  result.rounds = static_cast<std::uint64_t>(l);
  return result;
}

BfsResult bfs_gatekeeper(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_kernel<GatekeeperPolicy>(g, source, opts);
}

BfsResult bfs_gatekeeper_sparse(const Csr& g, vertex_t source, const BfsOptions& opts) {
  BfsOptions sparse = opts;
  sparse.sparse_reset = true;
  return detail::bfs_kernel<GatekeeperPolicy>(g, source, sparse);
}

BfsResult bfs_gatekeeper_skip(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_kernel<GatekeeperSkipPolicy>(g, source, opts);
}

BfsResult bfs_caslt(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_kernel<CasLtPolicy>(g, source, opts);
}

BfsResult bfs_critical(const Csr& g, vertex_t source, const BfsOptions& opts) {
  return detail::bfs_kernel<CriticalPolicy>(g, source, opts);
}

}  // namespace crcw::algo
