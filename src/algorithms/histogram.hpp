// Parallel histograms — combining fetch-adds vs privatized accumulation.
//
// Counting occurrences is the degenerate combining concurrent write (every
// writer offers +1; the "resolution" is addition). Two strategies whose
// trade-off mirrors the paper's contention analysis:
//
//   histogram_atomic      every element fetch_adds its bucket — correct at
//                         any bucket count, serialises on hot buckets
//                         (exactly the gatekeeper failure mode of §6);
//   histogram_privatized  per-thread local histograms merged by a tree-free
//                         reduction — no contention, Θ(threads × buckets)
//                         extra space and merge work.
//
// The crossover (few hot buckets → privatize; many cold buckets → atomics)
// is the same who-collides-where question as Figures 10/11.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crcw::algo {

struct HistogramOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Counts key occurrences; keys must lie in [0, buckets) (throws
/// std::invalid_argument otherwise).
[[nodiscard]] std::vector<std::uint64_t> histogram_atomic(
    std::span<const std::uint64_t> keys, std::uint64_t buckets,
    const HistogramOptions& opts = {});

[[nodiscard]] std::vector<std::uint64_t> histogram_privatized(
    std::span<const std::uint64_t> keys, std::uint64_t buckets,
    const HistogramOptions& opts = {});

}  // namespace crcw::algo
