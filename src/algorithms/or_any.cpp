#include "algorithms/or_any.hpp"

#include <atomic>
#include <vector>

namespace crcw::algo {
namespace {

template <typename Bits>
auto bit_pred(Bits bits) {
  return [bits](std::uint64_t i) { return bits[i] != 0; };
}

}  // namespace

bool parallel_or_naive(std::span<const std::uint8_t> bits, const OrOptions& opts) {
  std::uint8_t result = 0;
  const auto count = static_cast<std::int64_t>(bits.size());
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    if (bits[static_cast<std::size_t>(i)] != 0) {
      // Common CW of the constant 1 — the naive store is legal here (§4).
      std::atomic_ref<std::uint8_t>(result).store(1, std::memory_order_relaxed);
    }
  }
  return result != 0;
}

bool parallel_or_gatekeeper(std::span<const std::uint8_t> bits, const OrOptions& opts) {
  return detail::any_kernel<GatekeeperPolicy>(bits.size(), bit_pred(bits), opts.threads);
}

bool parallel_or_caslt(std::span<const std::uint8_t> bits, const OrOptions& opts) {
  return detail::any_kernel<CasLtPolicy>(bits.size(), bit_pred(bits), opts.threads);
}

bool parallel_or_crew(std::span<const std::uint8_t> bits, const OrOptions& opts) {
  const std::uint64_t n = bits.size();
  if (n == 0) return false;
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();

  // Double-buffered halving: round k combines pairs 2i, 2i+1. Every write
  // goes to a distinct cell — exclusive-write discipline throughout.
  std::vector<std::uint8_t> cur(bits.begin(), bits.end());
  std::vector<std::uint8_t> next((n + 1) / 2);
  std::uint64_t m = n;
  while (m > 1) {
    const std::uint64_t half = (m + 1) / 2;
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(half); ++i) {
      const auto idx = static_cast<std::uint64_t>(i);
      const std::uint8_t a = cur[2 * idx];
      const std::uint8_t b = (2 * idx + 1 < m) ? cur[2 * idx + 1] : 0;
      next[idx] = (a != 0 || b != 0) ? 1 : 0;
    }
    cur.swap(next);
    m = half;
  }
  return cur[0] != 0;
}

}  // namespace crcw::algo
