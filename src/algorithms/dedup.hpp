// Parallel duplicate elimination — the canonical hash-set workload, run
// through the ds/ tables so the insert race is a concurrent write.
//
// Every thread offering key k races the same bucket claim; exactly one
// wins and the rest observe the committed key wait-free (arbitrary-CW, see
// TaggedBucket). The open-addressing variant additionally exercises the
// cooperative resize: inserts proceed in barrier-separated rounds, and
// between rounds the team grows the table whenever occupancy crossed the
// load factor or a probe walk came back kFull (the overflow keys are
// stashed and retried after the grow — the kFull path is reachable, not
// theoretical).
//
//   dedup_caslt    ConcurrentHashSet + cooperative grow rounds
//   dedup_chained  ChainedHashSet (SlotAllocator node grants; no grow —
//                  the arena is sized for the input up front)
//   dedup_sort     serial sort+unique baseline
#pragma once

#include <cstdint>
#include <span>

namespace crcw::algo {

struct DedupOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
  /// Starting key capacity of the open table. Small values (relative to
  /// the input's distinct-key count) force resize storms — deliberately
  /// reachable for tests and the resize-storm bench sweep.
  std::uint64_t initial_capacity = 1024;
  /// Keys each thread inserts per barrier-separated round (the grow check
  /// runs between rounds).
  std::uint64_t round_chunk = 4096;
  /// Load factor of the open table — the storm sweep's probe-length knob
  /// (bench/ext_hash.cpp sweeps it to locate the knee).
  double max_load = 0.5;
  /// Attach ContentionSites to the tables (profile passes only).
  bool telemetry = false;
};

struct DedupResult {
  std::uint64_t distinct = 0;  ///< committed key count
  std::uint64_t grows = 0;     ///< cooperative resizes performed
  std::uint64_t rounds = 0;    ///< barrier-separated insert rounds
};

/// Keys must avoid the all-ones sentinel (throws std::invalid_argument).
[[nodiscard]] DedupResult dedup_caslt(std::span<const std::uint64_t> keys,
                                      const DedupOptions& opts = {});
[[nodiscard]] DedupResult dedup_chained(std::span<const std::uint64_t> keys,
                                        const DedupOptions& opts = {});
[[nodiscard]] DedupResult dedup_sort(std::span<const std::uint64_t> keys,
                                     const DedupOptions& opts = {});

}  // namespace crcw::algo
