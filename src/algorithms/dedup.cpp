#include "algorithms/dedup.hpp"

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/hash_common.hpp"

namespace crcw::algo {
namespace {

[[nodiscard]] int resolve_threads(int threads) {
  return threads > 0 ? threads : omp_get_max_threads();
}

[[nodiscard]] ds::HashConfig table_config(const DedupOptions& opts, const char* site) {
  ds::HashConfig cfg;
  cfg.max_load = opts.max_load;
  cfg.telemetry = opts.telemetry;
  cfg.site_name = site;
  return cfg;
}

}  // namespace

DedupResult dedup_caslt(std::span<const std::uint64_t> keys, const DedupOptions& opts) {
  const int threads = resolve_threads(opts.threads);
  ds::ConcurrentHashSet<> set(opts.initial_capacity, table_config(opts, "dedup-open"));

  const std::uint64_t n = keys.size();
  const std::uint64_t stride =
      std::max<std::uint64_t>(1, opts.round_chunk) * static_cast<std::uint64_t>(threads);
  std::vector<std::vector<std::uint64_t>> pending(static_cast<std::size_t>(threads));

  DedupResult result;
  std::uint64_t offset = 0;
  bool have_pending = false;
  while (offset < n || have_pending) {
    const std::uint64_t stop = std::min(n, offset + stride);
#pragma omp parallel num_threads(threads)
    {
      auto& mine = pending[static_cast<std::size_t>(omp_get_thread_num())];
      // Retry earlier overflow first: the table has grown since it failed.
      std::size_t keep = 0;
      for (const std::uint64_t k : mine) {
        if (set.insert(k) == ds::SetInsert::kFull) mine[keep++] = k;
      }
      mine.resize(keep);
#pragma omp for schedule(static)
      for (std::int64_t i = static_cast<std::int64_t>(offset);
           i < static_cast<std::int64_t>(stop); ++i) {
        const std::uint64_t k = keys[static_cast<std::size_t>(i)];
        if (set.insert(k) == ds::SetInsert::kFull) mine.push_back(k);
      }
    }
    offset = stop;
    ++result.rounds;
    set.flush_round();

    std::uint64_t backlog = 0;
    for (const auto& p : pending) backlog += p.size();
    have_pending = backlog > 0;
    if (set.needs_grow() || have_pending) {
      // One grow sized to absorb the whole backlog (maybe_grow_for_backlog;
      // doubling once per round leaves retry rounds probing a near-full
      // table for keys that cannot fit — quadratic when the backlog dwarfs
      // capacity). The backlog overcounts (cross-thread duplicates), which
      // only makes the grown table roomier.
      if (!set.maybe_grow_for_backlog(backlog, threads)) {
        // Pending kFull keys but the sizing math says the table fits them:
        // still grow ×2 so the retry loop always makes progress.
        set.grow_parallel(threads, 2);
      }
      ++result.grows;
    }
  }
  result.distinct = set.size();
  return result;
}

DedupResult dedup_chained(std::span<const std::uint64_t> keys, const DedupOptions& opts) {
  const int threads = resolve_threads(opts.threads);
  // Nodes spent are bounded by the insert count, so the arena never fills.
  ds::ChainedHashSet<> set(keys.size(), threads, table_config(opts, "dedup-chained"));

  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) {
      (void)set.insert(lane, keys[static_cast<std::size_t>(i)]);
    }
  }
  set.flush_round();
  return {set.size(), 0, 1};
}

DedupResult dedup_sort(std::span<const std::uint64_t> keys, const DedupOptions&) {
  std::vector<std::uint64_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  const auto last = std::unique(sorted.begin(), sorted.end());
  return {static_cast<std::uint64_t>(last - sorted.begin()), 0, 1};
}

}  // namespace crcw::algo
