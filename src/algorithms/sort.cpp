#include "algorithms/sort.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

namespace crcw::algo {
namespace {

/// Shared core: stable permutation that sorts `digit(i)` ascending, where
/// digit values lie in [0, buckets). Blocked (digit, block)-major counting:
/// slot of element i = scan[digit][block(i)] + rank of i within its block
/// and digit — unique by construction, so the scatter is exclusive-write.
template <typename DigitFn>
std::vector<std::uint64_t> stable_perm(std::uint64_t n, std::uint64_t buckets,
                                       DigitFn digit, int threads) {
  std::vector<std::uint64_t> perm(n);
  if (n == 0) return perm;
  if (threads <= 0) threads = omp_get_max_threads();
  const auto num_blocks = static_cast<std::uint64_t>(std::max(threads, 1));
  const std::uint64_t block = (n + num_blocks - 1) / num_blocks;

  // counts[d * num_blocks + b] = #elements with digit d in block b; the
  // exclusive scan of this digit-major array gives every (d, b) group its
  // base output offset, preserving stability (blocks scanned in order
  // within each digit).
  std::vector<std::uint64_t> counts(buckets * num_blocks, 0);

#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::uint64_t>(omp_get_thread_num());
    const auto team = static_cast<std::uint64_t>(omp_get_num_threads());
    for (std::uint64_t b = t; b < num_blocks; b += team) {
      const std::uint64_t lo = std::min(b * block, n);
      const std::uint64_t hi = std::min(lo + block, n);
      for (std::uint64_t i = lo; i < hi; ++i) ++counts[digit(i) * num_blocks + b];
    }

#pragma omp barrier
#pragma omp single
    {
      std::uint64_t running = 0;
      for (auto& c : counts) {
        const std::uint64_t v = c;
        c = running;
        running += v;
      }
    }

    for (std::uint64_t b = t; b < num_blocks; b += team) {
      const std::uint64_t lo = std::min(b * block, n);
      const std::uint64_t hi = std::min(lo + block, n);
      for (std::uint64_t i = lo; i < hi; ++i) {
        perm[counts[digit(i) * num_blocks + b]++] = i;
      }
    }
  }
  return perm;
}

}  // namespace

std::vector<std::uint64_t> counting_sort_perm(std::span<const std::uint64_t> keys,
                                              std::uint64_t buckets,
                                              const SortOptions& opts) {
  if (buckets == 0) throw std::invalid_argument("counting_sort: zero buckets");
  for (const auto k : keys) {
    if (k >= buckets) throw std::invalid_argument("counting_sort: key out of range");
  }
  return stable_perm(keys.size(), buckets, [&](std::uint64_t i) { return keys[i]; },
                     opts.threads);
}

std::vector<std::uint64_t> radix_sort(std::span<const std::uint64_t> keys,
                                      const SortOptions& opts) {
  std::vector<std::uint64_t> values(keys.begin(), keys.end());
  if (values.size() <= 1) return values;

  // Skip passes whose digit never varies (common for small keys).
  std::uint64_t all_or = 0;
  for (const auto k : values) all_or |= k;

  std::vector<std::uint64_t> next(values.size());
  for (int pass = 0; pass < 8; ++pass) {
    const int shift = pass * 8;
    if (((all_or >> shift) & 0xFFu) == 0) continue;  // constant-zero digit
    const auto perm = stable_perm(
        values.size(), 256,
        [&](std::uint64_t i) { return (values[i] >> shift) & 0xFFu; }, opts.threads);
    for (std::uint64_t i = 0; i < values.size(); ++i) next[i] = values[perm[i]];
    values.swap(next);
  }
  return values;
}

}  // namespace crcw::algo
