// Triangle counting via a concurrent edge-hash — the read-heavy table
// workload: one parallel build phase (every undirected edge packed as
// (min << 32 | max) and inserted once into a ds/ set), then a lookup-only
// phase where each vertex tests its neighbor pairs for the closing edge.
// Each triangle is witnessed once per apex, so the pair-count divides by 3.
//
// The build phase races duplicate inserts only on multigraph inputs (the
// set deduplicates them); the counting phase is pure wait-free contains(),
// which is why the ext_hash bench uses this shape for its read-heavy sweep.
//
// Requires a simple undirected graph in both-directions CSR form (as built
// by graph::*): parallel neighbor duplicates would double-count pairs.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace crcw::algo {

struct TriangleOptions {
  int threads = 0;         ///< OpenMP threads; 0 = ambient setting
  bool telemetry = false;  ///< attach a ContentionSite (profile passes only)
};

/// Triangle count using ConcurrentHashSet for the edge membership test.
[[nodiscard]] std::uint64_t triangle_count_caslt(const graph::Csr& g,
                                                 const TriangleOptions& opts = {});

/// Same, with the chained (SlotAllocator-backed) set.
[[nodiscard]] std::uint64_t triangle_count_chained(const graph::Csr& g,
                                                   const TriangleOptions& opts = {});

/// Serial std::unordered_set baseline (same pair-enumeration algorithm).
[[nodiscard]] std::uint64_t triangle_count_serial(const graph::Csr& g,
                                                  const TriangleOptions& opts = {});

}  // namespace crcw::algo
