#include "algorithms/semijoin.hpp"

#include <omp.h>

#include <cstddef>
#include <unordered_map>

#include "core/slot_alloc.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"

namespace crcw::algo {

std::vector<SemijoinMatch> semijoin_caslt(std::span<const std::uint64_t> probe_keys,
                                          std::span<const std::uint64_t> build_keys,
                                          const SemijoinOptions& opts) {
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  ds::HashConfig cfg;
  cfg.telemetry = opts.telemetry;
  cfg.site_name = "semijoin-build";
  ds::ConcurrentHashMap<std::uint64_t, std::uint64_t> table(build_keys.size(), cfg);

  // Build: first-claimer-wins upsert; duplicate build keys resolve to an
  // arbitrary witness index (the claim winner's).
  const auto build_n = static_cast<std::int64_t>(build_keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < build_n; ++i) {
    (void)table.insert_first(build_keys[static_cast<std::size_t>(i)],
                             static_cast<std::uint64_t>(i));
  }
  table.flush_round();
  // The parallel region's barrier published the build values; probes below
  // read them through find() per the post-barrier contract.

  SlotAllocator slots(threads);
  util::AlignedBuffer<SemijoinMatch> out(slots.capacity_for(probe_keys.size()));
  const auto probe_n = static_cast<std::int64_t>(probe_keys.size());
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < probe_n; ++i) {
      const std::uint64_t* hit = table.find(probe_keys[static_cast<std::size_t>(i)]);
      if (hit != nullptr) {
        out[slots.grant(lane)] = {static_cast<std::uint64_t>(i), *hit};
      }
    }
  }

  const std::uint64_t dense = slots.compact(out.data());
  return {out.data(), out.data() + dense};
}

std::vector<SemijoinMatch> semijoin_serial(std::span<const std::uint64_t> probe_keys,
                                           std::span<const std::uint64_t> build_keys,
                                           const SemijoinOptions&) {
  std::unordered_map<std::uint64_t, std::uint64_t> table;
  table.reserve(build_keys.size());
  for (std::uint64_t i = 0; i < build_keys.size(); ++i) {
    table.emplace(build_keys[static_cast<std::size_t>(i)], i);  // first wins
  }
  std::vector<SemijoinMatch> matches;
  for (std::uint64_t i = 0; i < probe_keys.size(); ++i) {
    const auto it = table.find(probe_keys[static_cast<std::size_t>(i)]);
    if (it != table.end()) matches.push_back({i, it->second});
  }
  return matches;
}

}  // namespace crcw::algo
