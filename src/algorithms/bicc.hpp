// Tarjan–Vishkin biconnected components — the flagship CRCW extension.
//
// The XMT line of work the paper builds on (refs [6], [22]) repeatedly
// showcases connectivity AND biconnectivity as the algorithms PRAM-style
// programming wins on; this module composes them from this library's own
// substrate, with a concurrent write at every parallel-selection point:
//
//   1. spanning tree        = the hook forest recorded by the arbitrary-CW
//                             guarded Awerbuch–Shiloach kernel (cc.hpp)
//   2. root + Euler tour    = tree_ops (list ranking; CREW phases)
//   3. low/high per subtree = range min/max over tour segments
//                             (util::SparseTableRmq)
//   4. auxiliary graph G′   = Tarjan–Vishkin rules over tree edges; two
//                             tree edges share a biconnected component of
//                             G iff they are connected in G′
//   5. components of G′     = the CAS-LT CC kernel again
//
// Works with ANY spanning tree (not just DFS trees) — the property that
// makes the algorithm parallelisable, and why the `high` rule exists: an
// arbitrary tree has cross edges, which a DFS tree never has.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::algo {

struct BiccOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

struct BiccResult {
  /// Biconnected-component label per input edge: the smallest input-edge
  /// id inside the component (canonical, comparable across runs).
  std::vector<std::uint64_t> edge_label;
  std::uint64_t components = 0;
  /// True for cut vertices (incident to ≥ 2 distinct components).
  std::vector<std::uint8_t> is_articulation;
  /// Input edge ids that are bridges (singleton components).
  std::vector<std::uint64_t> bridges;
};

/// Biconnected components of a CONNECTED simple undirected graph on
/// vertices [0, n): no self-loops, no duplicate undirected edges, one
/// connected component (throws std::invalid_argument otherwise; n >= 1).
[[nodiscard]] BiccResult biconnected_components(std::uint64_t n,
                                                const graph::EdgeList& edges,
                                                const BiccOptions& opts = {});

}  // namespace crcw::algo
