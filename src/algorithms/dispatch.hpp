// String-keyed dispatch over the concurrent-write methods — the seam the
// examples and figure benches use to select a variant at runtime
// (`--method caslt|gatekeeper|gatekeeper-skip|naive|critical`).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/dedup.hpp"
#include "algorithms/max.hpp"
#include "algorithms/semijoin.hpp"
#include "algorithms/triangle_count.hpp"
#include "obs/metrics.hpp"

namespace crcw::algo {

/// Methods available per kernel, in the order the paper discusses them.
[[nodiscard]] std::vector<std::string> max_methods();
[[nodiscard]] std::vector<std::string> bfs_methods();
[[nodiscard]] std::vector<std::string> cc_methods();  ///< no "naive": unsafe (§7.2)
// The ds/-table workloads (PR 4): hash-arbitrated concurrent writes.
[[nodiscard]] std::vector<std::string> dedup_methods();
[[nodiscard]] std::vector<std::string> semijoin_methods();
[[nodiscard]] std::vector<std::string> triangle_methods();

/// Dispatchers; throw std::invalid_argument for an unknown method name.
[[nodiscard]] std::uint64_t run_max(std::string_view method,
                                    std::span<const std::uint32_t> list,
                                    const MaxOptions& opts = {});
[[nodiscard]] BfsResult run_bfs(std::string_view method, const graph::Csr& g,
                                graph::vertex_t source, const BfsOptions& opts = {});
[[nodiscard]] CcResult run_cc(std::string_view method, const graph::Csr& g,
                              const CcOptions& opts = {});
[[nodiscard]] DedupResult run_dedup(std::string_view method,
                                    std::span<const std::uint64_t> keys,
                                    const DedupOptions& opts = {});
[[nodiscard]] std::vector<SemijoinMatch> run_semijoin(
    std::string_view method, std::span<const std::uint64_t> probe_keys,
    std::span<const std::uint64_t> build_keys, const SemijoinOptions& opts = {});
[[nodiscard]] std::uint64_t run_triangles(std::string_view method, const graph::Csr& g,
                                          const TriangleOptions& opts = {});

/// Contention profiles: run the method's kernel with instrumented tags
/// (InstrumentedPolicy<...>) under a private MetricsRegistry and return the
/// aggregated attempt/atomic/win counts. Untimed companions to run_* — the
/// counting itself costs RMWs, so never profile inside a timing loop.
/// Returns nullopt for methods without an instrumentable arbiter ("naive",
/// "critical", "reduce", "min-hook", "direction-optimizing"). The BFS
/// "frontier"/"frontier-shared" pair is profiled — including a
/// "frontier-slots" site whose atomics count the slot-allocation RMWs the
/// chunked SlotAllocator exists to shrink; "gatekeeper-sparse" reports
/// reset_tags = O(#writes) against "gatekeeper"'s Θ(N)·levels.
[[nodiscard]] std::optional<obs::ContentionTotals> profile_max(
    std::string_view method, std::span<const std::uint32_t> list,
    const MaxOptions& opts = {});
[[nodiscard]] std::optional<obs::ContentionTotals> profile_bfs(
    std::string_view method, const graph::Csr& g, graph::vertex_t source,
    const BfsOptions& opts = {});
[[nodiscard]] std::optional<obs::ContentionTotals> profile_cc(
    std::string_view method, const graph::Csr& g, const CcOptions& opts = {});

/// Table-workload profiles: rerun the method with the ds/ table's telemetry
/// attached (probe counts land in `attempts`, claim/tag CASes in `atomics`,
/// committed keys in `wins`, chunk claims in `refills`, migrated buckets in
/// `reset_tags` — docs/architecture.md "ds layer"). nullopt for the serial
/// baselines, which have no table to instrument.
[[nodiscard]] std::optional<obs::ContentionTotals> profile_dedup(
    std::string_view method, std::span<const std::uint64_t> keys,
    const DedupOptions& opts = {});
[[nodiscard]] std::optional<obs::ContentionTotals> profile_semijoin(
    std::string_view method, std::span<const std::uint64_t> probe_keys,
    std::span<const std::uint64_t> build_keys, const SemijoinOptions& opts = {});
[[nodiscard]] std::optional<obs::ContentionTotals> profile_triangles(
    std::string_view method, const graph::Csr& g, const TriangleOptions& opts = {});

}  // namespace crcw::algo
