// Parallel integer sorting — counting sort and LSD radix sort on the scan
// substrate.
//
// Rounding out the PRAM toolbox: radix sort is the standard way PRAM
// algorithms materialise "sort the processors by key" steps, and it
// exercises scan/stream-compaction exactly the way the gatekeeper's
// prefix-sum lineage intends (§3). Each digit pass is three lock-step
// phases: per-block histogram → exclusive scan of (digit, block) counts →
// stable scatter into unique slots (exclusive writes guaranteed by the
// scan, the same trick as scan-based frontier packing).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crcw::algo {

struct SortOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Stable parallel counting sort by key(x) in [0, buckets).
/// Returns the sorted PERMUTATION (indices into `keys`), so callers can
/// reorder satellite data; throws std::invalid_argument if a key is out of
/// range or buckets == 0.
[[nodiscard]] std::vector<std::uint64_t> counting_sort_perm(
    std::span<const std::uint64_t> keys, std::uint64_t buckets,
    const SortOptions& opts = {});

/// Stable LSD radix sort of 64-bit keys (8-bit digits, 8 passes, skipping
/// passes whose digit is constant). Returns the sorted values.
[[nodiscard]] std::vector<std::uint64_t> radix_sort(std::span<const std::uint64_t> keys,
                                                    const SortOptions& opts = {});

}  // namespace crcw::algo
