// Single-source shortest paths — priority concurrent writes as edge
// relaxation.
//
// Round-synchronous Bellman–Ford: in each round every improvable edge
// offers `dist[u] + w(u,v)` into vertex v's cell. That offer IS a
// Priority(min-value) concurrent write (§2's strongest rule), and the
// shortest-path tree needs the matching parent recorded with it — another
// instance of the paper's multi-word-update problem (§4): a naive
// implementation can pair one writer's distance with another's parent.
// Two resolutions are provided:
//
//   sssp_two_phase   the general PriorityCell protocol: phase 1 all offers
//                    fetch-min the distance; barrier; phase 2 the winner
//                    re-presents its key and commits the parent — the
//                    classical O(1)-round Priority CW simulation.
//   sssp_fetch_min   combining-only: distances via atomic fetch-min,
//                    parents reconstructed afterwards from the distance
//                    field (parent = any neighbour with dist[v] - w(u,v)
//                    == dist[u]). One phase per round, more re-scanning.
//
// Both run at most n-1 rounds (longest simple path) and stop at the first
// quiescent round; negative weights are rejected (unsigned weights).
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/boruvka.hpp"  // WeightedEdge
#include "graph/csr.hpp"

namespace crcw::algo {

struct SsspOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

inline constexpr std::uint64_t kUnreachable = static_cast<std::uint64_t>(-1);

struct SsspResult {
  std::vector<std::uint64_t> dist;     ///< kUnreachable if not reachable
  std::vector<graph::vertex_t> parent; ///< kNoVertex at source/unreachable
  std::uint64_t rounds = 0;
};

/// Two-phase priority-CW Bellman–Ford over an undirected weighted edge
/// list on vertices [0, n). Throws std::invalid_argument on bad endpoints.
[[nodiscard]] SsspResult sssp_two_phase(std::uint64_t n,
                                        std::span<const WeightedEdge> edges,
                                        graph::vertex_t source,
                                        const SsspOptions& opts = {});

/// Combining-write Bellman–Ford (fetch-min distances, parents recovered).
[[nodiscard]] SsspResult sssp_fetch_min(std::uint64_t n,
                                        std::span<const WeightedEdge> edges,
                                        graph::vertex_t source,
                                        const SsspOptions& opts = {});

/// Sequential Dijkstra reference.
[[nodiscard]] std::vector<std::uint64_t> sssp_dijkstra(std::uint64_t n,
                                                       std::span<const WeightedEdge> edges,
                                                       graph::vertex_t source);

/// Structural check: distances equal the reference AND every parent edge
/// exists with dist[v] == dist[parent] + weight.
[[nodiscard]] bool validate_sssp(std::uint64_t n, std::span<const WeightedEdge> edges,
                                 graph::vertex_t source, const SsspResult& result);

}  // namespace crcw::algo
