#include "algorithms/boruvka.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "core/priority.hpp"
#include "graph/reference.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

using graph::vertex_t;

void check_input(std::uint64_t n, std::span<const WeightedEdge> edges) {
  if (edges.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("boruvka: edge ids must fit 32 bits");
  }
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) throw std::invalid_argument("boruvka: endpoint out of range");
  }
}

}  // namespace

MsfResult boruvka_msf(std::uint64_t n, std::span<const WeightedEdge> edges,
                      const MsfOptions& opts) {
  check_input(n, edges);

  MsfResult result;
  if (n == 0) return result;

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto vcount = static_cast<std::int64_t>(n);
  const auto ecount = static_cast<std::int64_t>(edges.size());

  std::vector<vertex_t> comp(n);
  std::vector<vertex_t> comp_next(n);
  std::vector<std::uint8_t> selected(edges.size(), 0);
  // One priority cell per vertex id; only cells of current component
  // representatives are used each round.
  util::AlignedBuffer<PackedPriorityCell> cells(n);

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < vcount; ++v) {
    comp[static_cast<std::size_t>(v)] = static_cast<vertex_t>(v);
  }

  std::uint64_t max_rounds = 8;
  for (std::uint64_t s = 1; s < n; s *= 2) ++max_rounds;

  bool merged = true;
  while (merged) {
    if (++result.rounds > max_rounds) {
      throw std::runtime_error("boruvka_msf: exceeded round bound");
    }

    // Reset the representatives' cells (priority cells are round-stateful,
    // like gatekeepers — the cost §6 attributes to reset-requiring schemes).
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      cells[static_cast<std::size_t>(v)].reset();
    }

    // Priority CW round: every external edge offers (weight, id) to both
    // endpoint components; fetch-min resolves the per-component minimum.
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto& e = edges[static_cast<std::size_t>(j)];
      const vertex_t cu = comp[e.u];
      const vertex_t cv = comp[e.v];
      if (cu == cv) continue;
      const auto id = static_cast<std::uint32_t>(j);
      cells[cu].offer(e.weight, id);
      cells[cv].offer(e.weight, id);
    }

    // Merge phase: each representative hooks onto the component across its
    // chosen edge; mutual selections share one edge (total order), so the
    // only cycles are 2-cycles broken toward the smaller id.
    std::uint8_t any_merge = 0;
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : any_merge)
    for (std::int64_t v = 0; v < vcount; ++v) {
      const auto rep = static_cast<vertex_t>(v);
      comp_next[rep] = comp[rep];
      if (comp[rep] != rep) continue;  // not a representative
      const auto& cell = cells[rep];
      if (cell.untouched()) continue;
      const std::uint64_t j = cell.payload();
      const auto& e = edges[j];
      const vertex_t other = comp[e.u] == rep ? comp[e.v] : comp[e.u];
      std::atomic_ref<std::uint8_t>(selected[j]).store(1, std::memory_order_relaxed);
      comp_next[rep] = other;
      any_merge = 1;
    }

    merged = any_merge != 0;
    if (!merged) break;

    // Break 2-cycles: if rep and its target selected each other, the
    // smaller id stays root. Relaxed atomics: a neighbour may be breaking
    // its own cycle concurrently, and either observed value yields the
    // same fixpoint (see tests/test_boruvka.cpp).
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      const auto rep = static_cast<vertex_t>(v);
      const vertex_t t =
          std::atomic_ref<vertex_t>(comp_next[rep]).load(std::memory_order_relaxed);
      const vertex_t back =
          std::atomic_ref<vertex_t>(comp_next[t]).load(std::memory_order_relaxed);
      if (back == rep && rep < t) {
        std::atomic_ref<vertex_t>(comp_next[rep]).store(rep, std::memory_order_relaxed);
      }
    }

    // Compress the merge forest to roots (pointer jumping to fixpoint),
    // then relabel every vertex through its old representative. Racy jumps
    // are monotone along the path to the root, so any interleaving
    // converges.
    bool compressing = true;
    while (compressing) {
      std::uint8_t jumped = 0;
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : jumped)
      for (std::int64_t v = 0; v < vcount; ++v) {
        const auto idx = static_cast<std::size_t>(v);
        const vertex_t t =
            std::atomic_ref<vertex_t>(comp_next[idx]).load(std::memory_order_relaxed);
        const vertex_t tt =
            std::atomic_ref<vertex_t>(comp_next[t]).load(std::memory_order_relaxed);
        if (tt != t) {
          std::atomic_ref<vertex_t>(comp_next[idx]).store(tt, std::memory_order_relaxed);
          jumped = 1;
        }
      }
      compressing = jumped != 0;
    }

#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      comp[idx] = comp_next[comp[idx]];
    }
  }

  for (std::uint64_t j = 0; j < edges.size(); ++j) {
    if (selected[j] != 0) {
      result.edge_ids.push_back(j);
      result.total_weight += edges[j].weight;
    }
  }
  std::vector<std::uint8_t> is_root(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) is_root[comp[v]] = 1;
  result.components = static_cast<std::uint64_t>(
      std::count(is_root.begin(), is_root.end(), std::uint8_t{1}));
  return result;
}

std::uint64_t msf_weight_kruskal(std::uint64_t n, std::span<const WeightedEdge> edges) {
  check_input(n, edges);
  std::vector<std::uint64_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint64_t a, std::uint64_t b) {
    if (edges[a].weight != edges[b].weight) return edges[a].weight < edges[b].weight;
    return a < b;  // same total order as the packed priority cells
  });

  graph::UnionFind uf(n);
  std::uint64_t total = 0;
  for (const std::uint64_t j : order) {
    const auto& e = edges[j];
    if (e.u != e.v && uf.unite(e.u, e.v)) total += e.weight;
  }
  return total;
}

std::vector<WeightedEdge> random_weighted_edges(std::uint64_t n, std::uint64_t m,
                                                std::uint32_t max_weight,
                                                std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("random_weighted_edges: need n >= 2");
  util::Xoshiro256 rng(seed);
  std::vector<WeightedEdge> out;
  out.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const auto u = static_cast<vertex_t>(rng.bounded(n));
    auto v = static_cast<vertex_t>(rng.bounded(n - 1));
    if (v >= u) ++v;
    out.push_back({u, v, static_cast<std::uint32_t>(
                             rng.bounded(std::uint64_t{max_weight} + 1))});
  }
  return out;
}

}  // namespace crcw::algo
