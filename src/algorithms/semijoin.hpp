// Hash semijoin (probe ⋉ build) — the map workload where arbitrary-CW is
// the *semantics*, not just the mechanism.
//
// Build phase: every build-side row upserts (key → row index) with
// insert_first; when the build side carries duplicate keys, the committed
// index is whichever racing thread won the bucket claim — a genuinely
// arbitrary pick, exactly the paper's arbitrary-CW contract, and exactly
// what a semijoin is allowed to do (any witness serves).
//
// Probe phase (after the barrier that publishes the build values): each
// probe-side row looks its key up wait-free and, on a hit, emits a
// (probe index, build index) match through a SlotAllocator — chunked slot
// grants instead of one shared fetch_add per match — then a serial
// compact() squeezes the lane holes out, so callers get a dense match
// array in unspecified order.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crcw::algo {

struct SemijoinOptions {
  int threads = 0;       ///< OpenMP threads; 0 = ambient setting
  bool telemetry = false;  ///< attach a ContentionSite (profile passes only)
};

/// One probe-side hit: which probe row matched, and the (arbitrarily
/// chosen) build row that witnessed the key.
struct SemijoinMatch {
  std::uint64_t probe_index = 0;
  std::uint64_t build_index = 0;

  friend bool operator==(const SemijoinMatch&, const SemijoinMatch&) = default;
  friend auto operator<=>(const SemijoinMatch&, const SemijoinMatch&) = default;
};

/// Matches in unspecified order (slot-allocating CWs promise none). Keys
/// must avoid the all-ones sentinel (throws std::invalid_argument).
[[nodiscard]] std::vector<SemijoinMatch> semijoin_caslt(
    std::span<const std::uint64_t> probe_keys, std::span<const std::uint64_t> build_keys,
    const SemijoinOptions& opts = {});

/// Serial std::unordered_map baseline; first build occurrence wins (one
/// valid resolution of the same arbitrary choice), matches in probe order.
[[nodiscard]] std::vector<SemijoinMatch> semijoin_serial(
    std::span<const std::uint64_t> probe_keys, std::span<const std::uint64_t> build_keys,
    const SemijoinOptions& opts = {});

}  // namespace crcw::algo
