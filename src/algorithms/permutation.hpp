// Parallel random permutation by dart throwing — arbitrary CW as an
// allocation protocol.
//
// The classic PRAM recipe: every element repeatedly "throws a dart" at a
// random slot of an array of size c·n; the slot's arbitrary concurrent
// write decides who lands; losers rethrow in the next round. With c ≥ 2,
// each round places a constant fraction of the remaining elements, so all
// land in O(log n) rounds w.h.p.; compacting the slot array (scan) yields
// the permutation. Every piece is this library's vocabulary: per-slot
// CAS-LT tags for the darts, round ids shared across rounds, stream
// compaction for the readout.
//
// The result is a uniformly random permutation when the dart RNG is
// unbiased per round (we use per-element splitmix streams); tests check
// validity exactly and uniformity statistically.
#pragma once

#include <cstdint>
#include <vector>

namespace crcw::algo {

struct PermutationOptions {
  int threads = 0;          ///< OpenMP threads; 0 = ambient setting
  std::uint64_t seed = 42;  ///< dart stream seed
  /// Slot-array expansion factor; larger = fewer rounds, more memory.
  std::uint64_t expansion = 2;
};

struct PermutationResult {
  std::vector<std::uint64_t> perm;  ///< perm[i] = element at output position i
  std::uint64_t rounds = 0;         ///< dart rounds until everyone landed
};

/// Random permutation of [0, n). Throws std::invalid_argument on
/// expansion < 2 (the constant-fraction argument needs slack).
[[nodiscard]] PermutationResult random_permutation(std::uint64_t n,
                                                   const PermutationOptions& opts = {});

}  // namespace crcw::algo
