#include "algorithms/matching.hpp"

#include <omp.h>

#include <atomic>
#include <limits>
#include <stdexcept>

#include "core/priority.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace crcw::algo {
namespace {

using graph::kNoVertex;
using graph::vertex_t;

/// Deterministic per-(edge, round) key: a hash, so each round re-randomises
/// priorities without a shared RNG (every virtual processor derives its own
/// stream — standard PRAM practice).
std::uint32_t edge_key(std::uint64_t seed, std::uint64_t round, std::uint64_t edge) {
  util::SplitMix64 sm(seed ^ (round * 0x9e3779b97f4a7c15ull) ^ edge);
  return static_cast<std::uint32_t>(sm.next() >> 32);
}

}  // namespace

MatchingResult maximal_matching(std::uint64_t n, const graph::EdgeList& edges,
                                const MatchingOptions& opts) {
  if (edges.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("maximal_matching: edge ids must fit 32 bits");
  }
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("maximal_matching: endpoint out of range");
    }
  }

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto ecount = static_cast<std::int64_t>(edges.size());
  const auto vcount = static_cast<std::int64_t>(n);

  MatchingResult result;
  result.mate.assign(n, kNoVertex);
  if (n == 0 || edges.empty()) return result;

  util::AlignedBuffer<PackedPriorityCell> cells(n);
  std::vector<std::uint8_t> edge_live(edges.size(), 1);
  std::vector<std::uint8_t> selected(edges.size(), 0);
  auto* mate = result.mate.data();

  // Generous convergence cap: expected rounds are O(log m) w.h.p.
  std::uint64_t max_rounds = 64;
  for (std::uint64_t s = 1; s < edges.size(); s *= 2) max_rounds += 8;

  bool any_live = true;
  while (any_live) {
    if (++result.rounds > max_rounds) {
      throw std::runtime_error("maximal_matching: exceeded round bound");
    }

    // Phase 0: reset this round's priority cells (only unmatched vertices
    // matter, but resetting all keeps the step uniform).
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      cells[static_cast<std::size_t>(v)].reset();
    }

    // Phase 1: live edges bid at both endpoints (priority CW round).
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      if (edge_live[idx] == 0) continue;
      const auto& e = edges[idx];
      if (e.u == e.v) continue;  // self-loops can never match
      const std::uint32_t key =
          edge_key(opts.seed, result.rounds, static_cast<std::uint64_t>(j));
      const auto id = static_cast<std::uint32_t>(j);
      cells[e.u].offer(key, id);
      cells[e.v].offer(key, id);
    }
    // Implicit barrier: winners are now stable (the PRAM sync point).

    // Phase 2: an edge that won BOTH endpoints enters the matching. Each
    // such edge writes mate[u], mate[v] exclusively (no two matched edges
    // share an endpoint: sharing would mean the cell chose two ids).
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      if (edge_live[idx] == 0) continue;
      const auto& e = edges[idx];
      if (e.u == e.v) continue;
      const auto id = static_cast<std::uint32_t>(j);
      if (!cells[e.u].untouched() && cells[e.u].payload() == id &&
          cells[e.v].payload() == id) {
        selected[idx] = 1;
        mate[e.u] = e.v;
        mate[e.v] = e.u;
      }
    }

    // Phase 3: kill edges with a matched endpoint; detect liveness.
    std::uint8_t live_flag = 0;
#pragma omp parallel for num_threads(threads) schedule(static) \
    reduction(| : live_flag)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto idx = static_cast<std::size_t>(j);
      if (edge_live[idx] == 0) continue;
      const auto& e = edges[idx];
      if (e.u == e.v || mate[e.u] != kNoVertex || mate[e.v] != kNoVertex) {
        edge_live[idx] = 0;
      } else {
        live_flag = 1;
      }
    }
    any_live = live_flag != 0;
  }

  for (std::uint64_t j = 0; j < edges.size(); ++j) {
    if (selected[j] != 0) result.edges.push_back(j);
  }
  return result;
}

bool validate_matching(std::uint64_t n, const graph::EdgeList& edges,
                       const MatchingResult& result) {
  if (result.mate.size() != n) return false;

  // 1. mate[] is an involution over real matched edges.
  std::vector<std::uint8_t> matched(n, 0);
  for (const std::uint64_t j : result.edges) {
    if (j >= edges.size()) return false;
    const auto& e = edges[j];
    if (e.u == e.v) return false;
    if (result.mate[e.u] != e.v || result.mate[e.v] != e.u) return false;
    if (matched[e.u] != 0 || matched[e.v] != 0) return false;  // endpoint reuse
    matched[e.u] = matched[e.v] = 1;
  }
  for (vertex_t v = 0; v < n; ++v) {
    const vertex_t m = result.mate[v];
    if (m == kNoVertex) continue;
    if (matched[v] == 0) return false;  // mate set but no selected edge covers v
    if (m >= n || result.mate[m] != v) return false;
  }

  // 2. maximality: no edge joins two unmatched vertices.
  for (const auto& e : edges) {
    if (e.u == e.v) continue;
    if (result.mate[e.u] == kNoVertex && result.mate[e.v] == kNoVertex) return false;
  }
  return true;
}

}  // namespace crcw::algo
