#include "algorithms/permutation.hpp"

#include <omp.h>

#include <atomic>
#include <stdexcept>
#include <utility>

#include "core/arbiter.hpp"
#include "core/slot_alloc.hpp"
#include "util/rng.hpp"

namespace crcw::algo {

PermutationResult random_permutation(std::uint64_t n, const PermutationOptions& opts) {
  if (opts.expansion < 2) {
    throw std::invalid_argument("random_permutation: expansion must be >= 2");
  }
  PermutationResult result;
  result.perm.reserve(n);
  if (n == 0) return result;

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const std::uint64_t slots = n * opts.expansion;

  constexpr std::uint64_t kEmpty = static_cast<std::uint64_t>(-1);
  std::vector<std::uint64_t> slot_owner(slots, kEmpty);
  WriteArbiter<CasLtPolicy> arbiter(slots);

  // Misses re-enqueue through per-thread chunked slot grants (one shared
  // RMW per chunk, core/slot_alloc.hpp); rounds re-dart every survivor, so
  // the compaction's unspecified order is immaterial. Both buffers carry
  // the grants' per-lane slack and swap between rounds.
  SlotAllocator slot_alloc(threads);
  const auto cap = static_cast<std::size_t>(slot_alloc.capacity_for(n));
  std::vector<std::uint64_t> pending(cap);
  std::vector<std::uint64_t> still_pending(cap);
  for (std::uint64_t i = 0; i < n; ++i) pending[i] = i;
  std::uint64_t pcount_u = n;

  // Safety bound: expected O(log n) rounds w.h.p. with expansion >= 2.
  std::uint64_t max_rounds = 64;
  for (std::uint64_t s = 1; s < n; s *= 2) max_rounds += 8;

  while (pcount_u > 0) {
    if (++result.rounds > max_rounds) {
      throw std::runtime_error("random_permutation: exceeded round bound");
    }
    auto scope = arbiter.next_round(ResetMode::kNone);  // CAS-LT: no sweep
    const auto pcount = static_cast<std::int64_t>(pcount_u);
    auto* still_data = still_pending.data();

#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t pi = 0; pi < pcount; ++pi) {
      const std::uint64_t element = pending[static_cast<std::size_t>(pi)];
      // Per-(element, round) deterministic dart — every virtual processor
      // derives its own stream, PRAM style.
      util::SplitMix64 sm(opts.seed ^ (element * 0x9e3779b97f4a7c15ull) ^
                          (result.rounds << 32));
      const std::uint64_t target = sm.next() % slots;
      // The dart: an arbitrary concurrent write into the slot. Note the
      // round id makes previously WON slots stay won (their tag is from an
      // older round, but their owner is recorded) — so a slot is
      // re-contestable only if it was never claimed, checked below.
      const std::uint64_t seen =
          std::atomic_ref<const std::uint64_t>(slot_owner[target])
              .load(std::memory_order_relaxed);
      if (seen == kEmpty && scope.acquire(target)) {
        std::atomic_ref<std::uint64_t>(slot_owner[target])
            .store(element, std::memory_order_relaxed);
      } else {
        still_data[slot_alloc.grant(omp_get_thread_num())] = element;
      }
    }

    pcount_u = slot_alloc.compact(still_data);
    std::swap(pending, still_pending);
  }

  // Readout: occupied slots in slot order give the permutation.
  for (std::uint64_t s = 0; s < slots; ++s) {
    if (slot_owner[s] != kEmpty) result.perm.push_back(slot_owner[s]);
  }
  return result;
}

}  // namespace crcw::algo
