// Borůvka Minimum Spanning Forest via priority concurrent writes.
//
// Awerbuch–Shiloach's 1987 paper — the source of the CC kernel — is titled
// "New Connectivity and *MSF* Algorithms…"; this module implements the MSF
// half as the library's showcase for Priority CRCW writes (§2's strongest
// rule): in every Borůvka round, all edges incident to a component
// concurrently write their (weight, edge-id) into the component's cell and
// the minimum wins — a Priority(min-value) CW realised in one phase by
// core::PackedPriorityCell's 64-bit packed fetch-min.
//
// Ties are broken by edge id, which makes the (weight, id) order total; a
// total order guarantees that two components selecting each other always
// selected the *same* edge, so merge cycles are only ever 2-cycles on one
// shared edge and are broken by keeping the smaller component id as root.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::algo {

struct WeightedEdge {
  graph::vertex_t u = 0;
  graph::vertex_t v = 0;
  std::uint32_t weight = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

struct MsfOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

struct MsfResult {
  std::vector<std::uint64_t> edge_ids;  ///< indices into the input edge span
  std::uint64_t total_weight = 0;
  std::uint64_t components = 0;  ///< forest components after completion
  std::uint64_t rounds = 0;      ///< Borůvka rounds executed
};

/// Parallel Borůvka MSF over vertices [0, n). Edges are undirected (each
/// listed once); self-loops are ignored. Edge count must fit 32 bits (the
/// packed priority payload). Throws std::invalid_argument on bad input.
[[nodiscard]] MsfResult boruvka_msf(std::uint64_t n, std::span<const WeightedEdge> edges,
                                    const MsfOptions& opts = {});

/// Sequential Kruskal reference: returns the total MSF weight under the
/// same (weight, edge-id) total order.
[[nodiscard]] std::uint64_t msf_weight_kruskal(std::uint64_t n,
                                               std::span<const WeightedEdge> edges);

/// Deterministic random weighted graph for tests/benches: G(n, m) topology
/// with weights drawn in [0, max_weight].
[[nodiscard]] std::vector<WeightedEdge> random_weighted_edges(std::uint64_t n,
                                                              std::uint64_t m,
                                                              std::uint32_t max_weight,
                                                              std::uint64_t seed);

}  // namespace crcw::algo
