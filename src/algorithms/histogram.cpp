#include "algorithms/histogram.hpp"

#include <omp.h>

#include <atomic>
#include <stdexcept>

namespace crcw::algo {
namespace {

void check_keys(std::span<const std::uint64_t> keys, std::uint64_t buckets) {
  if (buckets == 0) throw std::invalid_argument("histogram: zero buckets");
  for (const auto k : keys) {
    if (k >= buckets) throw std::invalid_argument("histogram: key out of range");
  }
}

}  // namespace

std::vector<std::uint64_t> histogram_atomic(std::span<const std::uint64_t> keys,
                                            std::uint64_t buckets,
                                            const HistogramOptions& opts) {
  check_keys(keys, buckets);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  std::vector<std::uint64_t> counts(buckets, 0);
  const auto n = static_cast<std::int64_t>(keys.size());
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    std::atomic_ref<std::uint64_t>(counts[keys[static_cast<std::size_t>(i)]])
        .fetch_add(1, std::memory_order_relaxed);
  }
  return counts;
}

std::vector<std::uint64_t> histogram_privatized(std::span<const std::uint64_t> keys,
                                                std::uint64_t buckets,
                                                const HistogramOptions& opts) {
  check_keys(keys, buckets);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  std::vector<std::uint64_t> counts(buckets, 0);
  const auto n = static_cast<std::int64_t>(keys.size());

#pragma omp parallel num_threads(threads)
  {
    std::vector<std::uint64_t> local(buckets, 0);
#pragma omp for nowait
    for (std::int64_t i = 0; i < n; ++i) ++local[keys[static_cast<std::size_t>(i)]];

    // Merge: each thread owns a contiguous stripe of buckets per rotation
    // turn would need coordination; atomics on the (cold) merge path are
    // simpler and touch each bucket at most `threads` times.
    for (std::uint64_t b = 0; b < buckets; ++b) {
      if (local[b] != 0) {
        std::atomic_ref<std::uint64_t>(counts[b]).fetch_add(local[b],
                                                            std::memory_order_relaxed);
      }
    }
  }
  return counts;
}

}  // namespace crcw::algo
