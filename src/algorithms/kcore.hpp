// k-core decomposition — parallel peeling with combining decrements.
//
// core(v) = the largest k such that v belongs to a subgraph of minimum
// degree k. The parallel peeling loop exercises two more concurrent-write
// shapes from this library's vocabulary:
//   * `fetch_sub` on neighbour degrees is a combining CW whose RETURN
//     VALUE carries the resolution: among many concurrent decrements of
//     deg[u], exactly one observes the threshold crossing (old == k), so
//     the crossing thread — and only it — enqueues u. No tag needed; the
//     RMW itself elects the winner.
//   * the wavefront queue is allocated through an atomic tail counter
//     (the slot-allocating CW of bfs_frontier), and first-removal is
//     guarded by util::AtomicBitset::test_and_set.
//
// Degrees are CSR slot counts (parallel edges count separately; a
// self-loop counts once), and the sequential reference peels the same CSR.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::algo {

struct KcoreOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

struct KcoreResult {
  std::vector<std::uint32_t> core;  ///< coreness per vertex
  std::uint32_t degeneracy = 0;     ///< max coreness
  std::uint64_t peel_rounds = 0;    ///< parallel wavefronts processed
};

/// Parallel peeling k-core decomposition.
[[nodiscard]] KcoreResult kcore(const graph::Csr& g, const KcoreOptions& opts = {});

/// Sequential bucket-peeling reference.
[[nodiscard]] std::vector<std::uint32_t> kcore_seq(const graph::Csr& g);

}  // namespace crcw::algo
