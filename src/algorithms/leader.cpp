#include "algorithms/leader.hpp"

#include <omp.h>

#include <atomic>
#include <limits>

#include "core/cell.hpp"
#include "core/combining.hpp"
#include "core/priority.hpp"

namespace crcw::algo {
namespace {

constexpr std::uint64_t kNone = std::numeric_limits<std::uint64_t>::max();

int resolve_threads(const LeaderOptions& opts) {
  return opts.threads > 0 ? opts.threads : omp_get_max_threads();
}

}  // namespace

std::optional<std::uint64_t> elect_any(std::uint64_t n,
                                       const std::function<bool(std::uint64_t)>& pred,
                                       const LeaderOptions& opts) {
  ConWriteCell<std::uint64_t> cell(kNone);
  const int threads = resolve_threads(opts);
  const auto count = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if (pred(idx)) (void)cell.try_write(kInitialRound + 1, idx);
  }
  if (cell.read() == kNone) return std::nullopt;
  return cell.read();
}

std::optional<std::uint64_t> elect_min(std::uint64_t n,
                                       const std::function<bool(std::uint64_t)>& pred,
                                       const LeaderOptions& opts) {
  std::atomic<std::uint64_t> best{kNone};
  const int threads = resolve_threads(opts);
  const auto count = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if (pred(idx)) atomic_fetch_min(best, idx);
  }
  if (best.load() == kNone) return std::nullopt;
  return best.load();
}

std::optional<std::uint64_t> elect_min_key(
    std::uint64_t n,
    const std::function<std::optional<std::uint32_t>(std::uint64_t)>& key,
    const LeaderOptions& opts) {
  if (n > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  PackedPriorityCell cell;
  const int threads = resolve_threads(opts);
  const auto count = static_cast<std::int64_t>(n);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if (const auto k = key(idx); k.has_value()) {
      cell.offer(*k, static_cast<std::uint32_t>(idx));
    }
  }
  if (cell.untouched()) return std::nullopt;
  return cell.payload();
}

}  // namespace crcw::algo
