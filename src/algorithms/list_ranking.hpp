// Pointer-jumping list ranking — the classic CREW PRAM routine, included as
// the EREW/CREW counterpoint the paper's future work proposes comparing
// against (§8): it needs no concurrent writes at all, only concurrent reads
// (every node reads its successor's cells while owning its writes).
//
// Input: next[i] = successor in a linked list (tail points to itself).
// Output: rank[i] = #nodes from i to the tail (tail rank 0), in O(log n)
// lock-step rounds of rank[i] += rank[next[i]]; next[i] = next[next[i]].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crcw::algo {

struct ListRankOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// Parallel pointer jumping; validates that `next` is a proper list (each
/// index in range; exactly one self-loop tail reachable from every node is
/// NOT checked — cycles other than the tail self-loop make the result
/// meaningless, and the sequential checker below exists for tests).
/// Throws std::invalid_argument on out-of-range successors.
[[nodiscard]] std::vector<std::uint64_t> list_rank(std::span<const std::uint64_t> next,
                                                   const ListRankOptions& opts = {});

/// Sequential reference.
[[nodiscard]] std::vector<std::uint64_t> list_rank_seq(std::span<const std::uint64_t> next);

/// Builds a random permutation list over n nodes: returns (next, head);
/// the tail self-loops. Deterministic per seed.
struct RandomList {
  std::vector<std::uint64_t> next;
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
};
[[nodiscard]] RandomList make_random_list(std::uint64_t n, std::uint64_t seed);

}  // namespace crcw::algo
