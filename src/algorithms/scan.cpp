#include "algorithms/scan.hpp"

#include <omp.h>

#include <algorithm>

namespace crcw::algo {
namespace {

/// Two-pass blocked scan core: per-thread block reductions, serial scan of
/// the P block sums, per-thread rescan with the block offset.
template <typename Op>
std::vector<std::uint64_t> blocked_exclusive_scan(std::span<const std::uint64_t> in,
                                                  std::uint64_t identity, Op op,
                                                  int threads) {
  const std::uint64_t n = in.size();
  std::vector<std::uint64_t> out(n);
  if (n == 0) return out;
  if (threads <= 0) threads = omp_get_max_threads();

  // Fixed block count from the *requested* parallelism; threads each own a
  // strided set of blocks, so the result is correct whatever team size the
  // runtime actually grants.
  const auto num_blocks = static_cast<std::uint64_t>(std::max(threads, 1));
  const std::uint64_t block = (n + num_blocks - 1) / num_blocks;
  std::vector<std::uint64_t> block_sum(num_blocks, identity);

#pragma omp parallel num_threads(threads)
  {
    const auto t = static_cast<std::uint64_t>(omp_get_thread_num());
    const auto team = static_cast<std::uint64_t>(omp_get_num_threads());

    for (std::uint64_t b = t; b < num_blocks; b += team) {
      const std::uint64_t lo = std::min(b * block, n);
      const std::uint64_t hi = std::min(lo + block, n);
      std::uint64_t acc = identity;
      for (std::uint64_t i = lo; i < hi; ++i) acc = op(acc, in[i]);
      block_sum[b] = acc;
    }

#pragma omp barrier
#pragma omp single
    {
      // Exclusive scan of the block sums (serial: the count is tiny).
      std::uint64_t running = identity;
      for (std::uint64_t b = 0; b < num_blocks; ++b) {
        const std::uint64_t s = block_sum[b];
        block_sum[b] = running;
        running = op(running, s);
      }
    }
    // Implicit barrier after single.

    for (std::uint64_t b = t; b < num_blocks; b += team) {
      const std::uint64_t lo = std::min(b * block, n);
      const std::uint64_t hi = std::min(lo + block, n);
      std::uint64_t acc = block_sum[b];
      for (std::uint64_t i = lo; i < hi; ++i) {
        out[i] = acc;
        acc = op(acc, in[i]);
      }
    }
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> exclusive_scan(std::span<const std::uint64_t> in,
                                          const ScanOptions& opts) {
  return blocked_exclusive_scan(
      in, 0, [](std::uint64_t a, std::uint64_t b) { return a + b; }, opts.threads);
}

std::vector<std::uint64_t> inclusive_scan(std::span<const std::uint64_t> in,
                                          const ScanOptions& opts) {
  auto out = exclusive_scan(in, opts);
  const auto n = static_cast<std::int64_t>(in.size());
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    out[static_cast<std::size_t>(i)] += in[static_cast<std::size_t>(i)];
  }
  return out;
}

std::vector<std::uint64_t> exclusive_scan_op(
    std::span<const std::uint64_t> in, std::uint64_t identity,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& op,
    const ScanOptions& opts) {
  return blocked_exclusive_scan(in, identity, op, opts.threads);
}

std::vector<std::uint64_t> pack_indices(std::span<const std::uint8_t> flags,
                                        const ScanOptions& opts) {
  const std::uint64_t n = flags.size();
  std::vector<std::uint64_t> ones(n);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    ones[static_cast<std::size_t>(i)] = flags[static_cast<std::size_t>(i)] != 0 ? 1 : 0;
  }
  const auto offsets = exclusive_scan(ones, opts);
  const std::uint64_t total =
      n == 0 ? 0 : offsets[n - 1] + (flags[n - 1] != 0 ? 1 : 0);

  std::vector<std::uint64_t> out(total);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (flags[idx] != 0) out[offsets[idx]] = idx;  // exclusive writes by scan
  }
  return out;
}

}  // namespace crcw::algo
