#include "algorithms/sssp.hpp"

#include <omp.h>

#include <atomic>
#include <queue>
#include <stdexcept>

#include "core/arbiter.hpp"
#include "core/combining.hpp"
#include "core/priority.hpp"
#include "util/aligned_buffer.hpp"

namespace crcw::algo {
namespace {

using graph::kNoVertex;
using graph::vertex_t;

void check_input(std::uint64_t n, std::span<const WeightedEdge> edges, vertex_t source) {
  if (source >= n) throw std::invalid_argument("sssp: source out of range");
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) throw std::invalid_argument("sssp: endpoint out of range");
  }
}

}  // namespace

SsspResult sssp_two_phase(std::uint64_t n, std::span<const WeightedEdge> edges,
                          vertex_t source, const SsspOptions& opts) {
  check_input(n, edges, source);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto ecount = static_cast<std::int64_t>(edges.size());
  const auto vcount = static_cast<std::int64_t>(n);

  SsspResult result;
  result.dist.assign(n, kUnreachable);
  result.parent.assign(n, kNoVertex);
  result.dist[source] = 0;

  std::vector<std::uint64_t> snapshot(n);
  util::AlignedBuffer<PriorityCell<std::uint64_t, vertex_t>> cells(n);
  WriteArbiter<CasLtPolicy> ties(n);
  auto* dist = result.dist.data();
  auto* parent = result.parent.data();

  bool changed = true;
  while (changed) {
    if (++result.rounds > n) {
      throw std::runtime_error("sssp_two_phase: exceeded round bound");
    }
    std::uint8_t any = 0;

#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      snapshot[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(v)];
      cells[static_cast<std::size_t>(v)].reset();
    }

    // Phase 1: every improving relaxation offers its candidate distance —
    // a Priority(min-value) concurrent write per target vertex.
    const auto offer = [&](vertex_t u, vertex_t v, std::uint32_t w) {
      const std::uint64_t du = snapshot[u];
      if (du == kUnreachable) return;
      const std::uint64_t cand = du + w;
      if (cand < snapshot[v]) cells[v].offer(cand);
    };
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto& e = edges[static_cast<std::size_t>(j)];
      offer(e.u, e.v, e.weight);
      offer(e.v, e.u, e.weight);
    }

    // Phase 2 (after the barrier): holders of the winning key commit the
    // multi-word (dist, parent) update. Equal-key ties are arbitrated by a
    // CAS-LT tag so exactly one writer touches the pair — priority CW
    // selects the value, arbitrary CW selects the writer.
    auto tie_scope = ties.next_round(ResetMode::kNone);
    const auto commit = [&](vertex_t u, vertex_t v, std::uint32_t w,
                            std::uint8_t& any_flag) {
      const std::uint64_t du = snapshot[u];
      if (du == kUnreachable) return;
      const std::uint64_t cand = du + w;
      if (cand >= snapshot[v]) return;
      const auto& cell = cells[v];
      if (cell.untouched() || cell.best_key() != cand) return;
      if (tie_scope.acquire(v)) {
        dist[v] = cand;
        parent[v] = u;
        any_flag = 1;
      }
    };
#pragma omp parallel for num_threads(threads) schedule(static) reduction(| : any)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto& e = edges[static_cast<std::size_t>(j)];
      commit(e.u, e.v, e.weight, any);
      commit(e.v, e.u, e.weight, any);
    }

    changed = any != 0;
  }
  return result;
}

SsspResult sssp_fetch_min(std::uint64_t n, std::span<const WeightedEdge> edges,
                          vertex_t source, const SsspOptions& opts) {
  check_input(n, edges, source);
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const auto ecount = static_cast<std::int64_t>(edges.size());
  const auto vcount = static_cast<std::int64_t>(n);

  SsspResult result;
  result.dist.assign(n, kUnreachable);
  result.parent.assign(n, kNoVertex);
  result.dist[source] = 0;

  std::vector<std::uint64_t> snapshot(n);
  auto* dist = result.dist.data();

  bool changed = true;
  while (changed) {
    if (++result.rounds > n) {
      throw std::runtime_error("sssp_fetch_min: exceeded round bound");
    }
    std::uint8_t any = 0;

#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t v = 0; v < vcount; ++v) {
      snapshot[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(v)];
    }

    const auto relax = [&](vertex_t u, vertex_t v, std::uint32_t w,
                           std::uint8_t& any_flag) {
      const std::uint64_t du = snapshot[u];
      if (du == kUnreachable) return;
      const std::uint64_t cand = du + w;
      if (cand < snapshot[v]) {
        if (atomic_fetch_min(std::atomic_ref<std::uint64_t>(dist[v]), cand)) any_flag = 1;
      }
    };
#pragma omp parallel for num_threads(threads) schedule(static) reduction(| : any)
    for (std::int64_t j = 0; j < ecount; ++j) {
      const auto& e = edges[static_cast<std::size_t>(j)];
      relax(e.u, e.v, e.weight, any);
      relax(e.v, e.u, e.weight, any);
    }
    changed = any != 0;
  }

  // Parent recovery: any tight incident edge is a valid parent — an
  // arbitrary CW per vertex, guarded so the write happens exactly once.
  WriteArbiter<CasLtPolicy> arbiter(n);
  auto scope = arbiter.next_round(ResetMode::kNone);
  auto* parent = result.parent.data();
  const auto adopt = [&](vertex_t u, vertex_t v, std::uint32_t w) {
    if (v == source) return;
    const std::uint64_t du = result.dist[u];
    if (du == kUnreachable || result.dist[v] != du + w) return;
    if (scope.acquire(v)) parent[v] = u;
  };
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t j = 0; j < ecount; ++j) {
    const auto& e = edges[static_cast<std::size_t>(j)];
    adopt(e.u, e.v, e.weight);
    adopt(e.v, e.u, e.weight);
  }
  return result;
}

std::vector<std::uint64_t> sssp_dijkstra(std::uint64_t n,
                                         std::span<const WeightedEdge> edges,
                                         vertex_t source) {
  check_input(n, edges, source);
  std::vector<std::vector<std::pair<vertex_t, std::uint32_t>>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back({e.v, e.weight});
    adj[e.v].push_back({e.u, e.weight});
  }
  std::vector<std::uint64_t> dist(n, kUnreachable);
  dist[source] = 0;
  using Item = std::pair<std::uint64_t, vertex_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d != dist[v]) continue;
    for (const auto& [u, w] : adj[v]) {
      if (d + w < dist[u]) {
        dist[u] = d + w;
        heap.push({dist[u], u});
      }
    }
  }
  return dist;
}

bool validate_sssp(std::uint64_t n, std::span<const WeightedEdge> edges, vertex_t source,
                   const SsspResult& result) {
  if (result.dist.size() != n || result.parent.size() != n) return false;
  const auto expected = sssp_dijkstra(n, edges, source);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (result.dist[v] != expected[v]) return false;
  }

  // Tight-parent check needs edge weights per pair; build a min-weight map
  // through adjacency scanning (sequential: this is a test-support path).
  std::vector<std::vector<std::pair<vertex_t, std::uint32_t>>> adj(n);
  for (const auto& e : edges) {
    adj[e.u].push_back({e.v, e.weight});
    adj[e.v].push_back({e.u, e.weight});
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    const vertex_t p = result.parent[v];
    if (v == source) {
      if (p != kNoVertex) return false;
      continue;
    }
    if (result.dist[v] == kUnreachable) {
      if (p != kNoVertex) return false;
      continue;
    }
    if (p == kNoVertex || p >= n) return false;
    bool tight = false;
    for (const auto& [u, w] : adj[p]) {
      if (u == v && result.dist[p] + w == result.dist[v]) tight = true;
    }
    if (!tight) return false;
  }
  return true;
}

}  // namespace crcw::algo
