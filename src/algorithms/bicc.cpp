#include "algorithms/bicc.hpp"

#include <omp.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "algorithms/cc.hpp"
#include "algorithms/tree_ops.hpp"
#include "graph/builder.hpp"
#include "util/rmq.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::Edge;
using graph::EdgeList;
using graph::edge_t;
using graph::vertex_t;

constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

std::uint64_t pair_key(vertex_t a, vertex_t b) {
  const auto lo = std::min(a, b);
  const auto hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

void check_simple(std::uint64_t n, const EdgeList& edges) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) throw std::invalid_argument("bicc: endpoint out of range");
    if (e.u == e.v) throw std::invalid_argument("bicc: self-loops not allowed");
    if (!seen.insert(pair_key(e.u, e.v)).second) {
      throw std::invalid_argument("bicc: duplicate undirected edge");
    }
  }
}

}  // namespace

BiccResult biconnected_components(std::uint64_t n, const EdgeList& edges,
                                  const BiccOptions& opts) {
  if (n == 0) throw std::invalid_argument("bicc: empty vertex set");
  check_simple(n, edges);

  BiccResult result;
  result.edge_label.assign(edges.size(), kInf);
  result.is_articulation.assign(n, 0);
  if (edges.empty()) {
    if (n > 1) throw std::invalid_argument("bicc: graph not connected");
    return result;
  }

  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const Csr g = graph::build_csr(n, edges);

  // --- 1. spanning tree from the CC hook forest ----------------------------
  const CcResult cc = cc_caslt(g, {.threads = opts.threads});
  if (cc.components != 1) throw std::invalid_argument("bicc: graph not connected");

  EdgeList tree_edges;
  tree_edges.reserve(n - 1);
  {
    // forest_edges are CSR slots; recover (source, target) pairs.
    std::vector<vertex_t> slot_src(g.num_edges());
    for (vertex_t u = 0; u < n; ++u) {
      for (edge_t j = g.offset(u); j < g.offset(u) + g.degree(u); ++j) slot_src[j] = u;
    }
    for (const edge_t j : cc.forest_edges) {
      tree_edges.push_back({slot_src[j], g.targets()[j]});
    }
  }
  const Csr tree = graph::build_csr(n, tree_edges);

  // --- 2. root the tree (Euler tour, preorder, subtree segments) ----------
  const RootedTree rt = root_tree(tree, 0, {.threads = opts.threads});
  const auto& pre = rt.preorder;
  const auto& nd = rt.subtree;
  const auto& parent = rt.parent;
  const auto& entry = rt.entry_pos;
  const auto& exit_p = rt.exit_pos;
  const std::uint64_t m_tour = tree.num_edges();  // 2(n-1)

  // Ancestor test via tour segments (u is an ancestor of w, inclusive).
  const auto in_subtree = [&](vertex_t u, vertex_t w) {
    return entry[u] <= entry[w] && exit_p[w] <= exit_p[u];
  };

  // --- 3. low/high: per-vertex extremes, then subtree range queries -------
  // f_low(u) = min(pre[u], min pre over NON-TREE neighbours of u);
  // the tree membership test is parent-based (the tree is exactly the
  // parent relation).
  std::vector<std::uint64_t> tour_low(m_tour, kInf);
  std::vector<std::uint64_t> tour_high(m_tour, 0);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
    const auto u = static_cast<vertex_t>(vi);
    std::uint64_t lo = pre[u];
    std::uint64_t hi = pre[u];
    for (const vertex_t w : g.neighbors(u)) {
      if (parent[w] == u || parent[u] == w) continue;  // tree edge
      lo = std::min(lo, pre[w]);
      hi = std::max(hi, pre[w]);
    }
    if (u != 0) {
      tour_low[entry[u]] = lo;
      tour_high[entry[u]] = hi;
    } else {
      // The root's own value sits at tour position 0 only implicitly; the
      // root never appears inside another subtree query, so no slot needed.
    }
  }

  const util::SparseTableRmq<std::uint64_t> rmq_low(tour_low, threads);
  const util::SparseTableRmq<std::uint64_t, std::greater<std::uint64_t>> rmq_high(
      tour_high, threads);

  const auto low = [&](vertex_t v) { return rmq_low.best(entry[v], exit_p[v]); };
  const auto high = [&](vertex_t v) { return rmq_high.best(entry[v], exit_p[v]); };

  // --- 4. auxiliary graph over tree edges (vertex w ≙ edge (p(w), w)) -----
  // Tree-edge lookup for classifying input edges.
  std::unordered_set<std::uint64_t> tree_set;
  tree_set.reserve(tree_edges.size() * 2);
  for (const auto& e : tree_edges) tree_set.insert(pair_key(e.u, e.v));

  EdgeList aux;
  aux.reserve(edges.size());
  // Rule 1: non-tree edge between unrelated subtrees links both tree edges.
  for (const auto& e : edges) {
    if (tree_set.contains(pair_key(e.u, e.v))) continue;
    if (!in_subtree(e.u, e.v) && !in_subtree(e.v, e.u)) aux.push_back({e.u, e.v});
  }
  // Rule 2: tree edge (v, w), w child of non-root v, links to (p(v), v)
  // when w's subtree escapes v's subtree (via a back edge above v, or a
  // cross edge past it).
  for (vertex_t w = 0; w < n; ++w) {
    if (w == 0) continue;
    const vertex_t v = parent[w];
    if (v == 0) continue;
    if (low(w) < pre[v] || high(w) >= pre[v] + nd[v]) aux.push_back({v, w});
  }

  const Csr aux_csr = graph::build_csr(n, aux);
  const CcResult aux_cc = cc_caslt(aux_csr, {.threads = opts.threads});
  const auto& comp = aux_cc.label;  // component per non-root vertex ≙ tree edge

  // --- 5. label input edges -------------------------------------------------
  const auto count = static_cast<std::int64_t>(edges.size());
  std::vector<vertex_t> edge_rep(edges.size());  // aux-graph representative
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    const auto& e = edges[static_cast<std::size_t>(i)];
    vertex_t carrier;
    if (tree_set.contains(pair_key(e.u, e.v))) {
      carrier = parent[e.v] == e.u ? e.v : e.u;  // the child endpoint
    } else if (in_subtree(e.u, e.v)) {
      carrier = e.v;  // descendant side of a back edge
    } else if (in_subtree(e.v, e.u)) {
      carrier = e.u;
    } else {
      carrier = e.u;  // unrelated: both sides share a component (rule 1)
    }
    edge_rep[static_cast<std::size_t>(i)] = comp[carrier];
  }

  // Canonicalise: component representative → smallest member edge id.
  std::unordered_map<vertex_t, std::uint64_t> smallest;
  smallest.reserve(edges.size());
  for (std::uint64_t i = 0; i < edges.size(); ++i) {
    auto [it, inserted] = smallest.emplace(edge_rep[i], i);
    if (!inserted) it->second = std::min(it->second, i);
  }
  for (std::uint64_t i = 0; i < edges.size(); ++i) {
    result.edge_label[i] = smallest[edge_rep[i]];
  }
  result.components = smallest.size();

  // --- 6. articulation points and bridges ----------------------------------
  // v is a cut vertex iff its incident edges span >= 2 components.
  {
    std::vector<std::uint64_t> first_label(n, kInf);
    for (std::uint64_t i = 0; i < edges.size(); ++i) {
      for (const vertex_t v : {edges[i].u, edges[i].v}) {
        if (first_label[v] == kInf) {
          first_label[v] = result.edge_label[i];
        } else if (first_label[v] != result.edge_label[i]) {
          result.is_articulation[v] = 1;
        }
      }
    }
  }
  {
    std::unordered_map<std::uint64_t, std::uint64_t> size_of;
    for (const auto l : result.edge_label) ++size_of[l];
    for (std::uint64_t i = 0; i < edges.size(); ++i) {
      if (size_of[result.edge_label[i]] == 1) result.bridges.push_back(i);
    }
  }
  return result;
}

}  // namespace crcw::algo
