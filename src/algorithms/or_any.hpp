// Parallel OR / ANY — the canonical O(1) CRCW primitive.
//
// Computing the OR of N bits takes Ω(log N) steps on CREW PRAM but exactly
// one step on CRCW (every set bit performs a common concurrent write of 1
// into the result cell) — the textbook separation between the models, and
// the smallest possible exhibit of the paper's CW methods. `any_of` is the
// predicate form used by other kernels (e.g. "is any vertex still active?").
#pragma once

#include <omp.h>

#include <concepts>
#include <cstdint>
#include <span>

#include "core/policies.hpp"

namespace crcw::algo {

struct OrOptions {
  int threads = 0;  ///< OpenMP threads; 0 = ambient setting
};

/// OR of all flags, one CRCW step, selectable CW method.
[[nodiscard]] bool parallel_or_naive(std::span<const std::uint8_t> bits,
                                     const OrOptions& opts = {});
[[nodiscard]] bool parallel_or_gatekeeper(std::span<const std::uint8_t> bits,
                                          const OrOptions& opts = {});
[[nodiscard]] bool parallel_or_caslt(std::span<const std::uint8_t> bits,
                                     const OrOptions& opts = {});

/// The CREW counterpart: a binary reduction tree — Θ(log N) lock-step
/// rounds, no concurrent writes anywhere (each round writes disjoint
/// cells). This is the §8 future-work comparison made concrete: CRCW OR is
/// O(1) depth, CREW OR is Ω(log N); bench/ext_crew_vs_crcw.cpp measures
/// where the asymptotic gap shows up on real hardware.
[[nodiscard]] bool parallel_or_crew(std::span<const std::uint8_t> bits,
                                    const OrOptions& opts = {});

namespace detail {

/// Generic predicate ANY over [0, n): one common-CW round under Policy.
/// A single result cell guarded by a single tag; all writers offer `1`.
template <WritePolicy Policy, typename Pred>
  requires std::predicate<Pred, std::uint64_t>
bool any_kernel(std::uint64_t n, Pred pred, int threads) {
  typename Policy::tag_type tag{};
  std::uint8_t result = 0;
  const auto count = static_cast<std::int64_t>(n);
  if (threads <= 0) threads = omp_get_max_threads();
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t i = 0; i < count; ++i) {
    if (pred(static_cast<std::uint64_t>(i)) &&
        Policy::try_acquire(tag, kInitialRound + 1)) {
      result = 1;  // single winner: plain store, published by the barrier
    }
  }
  return result != 0;
}

}  // namespace detail

/// ANY with the paper's CAS-LT method: true iff pred(i) for some i < n.
template <typename Pred>
  requires std::predicate<Pred, std::uint64_t>
[[nodiscard]] bool any_of_caslt(std::uint64_t n, Pred pred, const OrOptions& opts = {}) {
  return detail::any_kernel<CasLtPolicy>(n, pred, opts.threads);
}

}  // namespace crcw::algo
