#include "algorithms/tree_ops.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>

#include "algorithms/list_ranking.hpp"
#include "algorithms/scan.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::edge_t;
using graph::vertex_t;

void check_tree_shape(const Csr& tree) {
  const std::uint64_t n = tree.num_vertices();
  if (n == 0) throw std::invalid_argument("tree_ops: empty tree");
  if (tree.num_edges() != 2 * (n - 1)) {
    throw std::invalid_argument("tree_ops: expected exactly 2(n-1) directed slots");
  }
  for (vertex_t v = 0; v < n; ++v) {
    const auto adj = tree.neighbors(v);
    if (!std::is_sorted(adj.begin(), adj.end())) {
      throw std::invalid_argument("tree_ops: adjacency must be sorted (build_csr default)");
    }
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] == v) throw std::invalid_argument("tree_ops: self-loop");
      if (i > 0 && adj[i] == adj[i - 1]) {
        throw std::invalid_argument("tree_ops: parallel edge");
      }
    }
  }
}

/// Slot of (v→u) given slot j = (u→v); binary search in v's sorted list.
edge_t find_twin(const Csr& tree, vertex_t u, vertex_t v) {
  const auto adj = tree.neighbors(v);
  const auto it = std::lower_bound(adj.begin(), adj.end(), u);
  return tree.offset(v) + static_cast<edge_t>(it - adj.begin());
}

}  // namespace

EulerTour euler_tour(const Csr& tree, const TreeOpsOptions& opts) {
  check_tree_shape(tree);
  const std::uint64_t n = tree.num_vertices();
  const std::uint64_t m = tree.num_edges();
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();

  EulerTour tour;
  tour.twin.resize(m);
  tour.next.resize(m);

  // Both maps are per-slot independent — one exclusive-write step each.
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
    const auto u = static_cast<vertex_t>(vi);
    for (edge_t j = tree.offset(u); j < tree.offset(u) + tree.degree(u); ++j) {
      tour.twin[j] = find_twin(tree, u, tree.targets()[j]);
    }
  }

#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t ji = 0; ji < static_cast<std::int64_t>(m); ++ji) {
    const auto j = static_cast<edge_t>(ji);
    // j = (u→v); successor = v's next slot after the twin, cyclically.
    const vertex_t v = tree.targets()[j];
    const edge_t t = tour.twin[j];
    const edge_t pos = t - tree.offset(v);
    const edge_t next_pos = (pos + 1) % tree.degree(v);
    tour.next[j] = tree.offset(v) + next_pos;
  }

  return tour;
}

RootedTree root_tree(const Csr& tree, vertex_t root, const TreeOpsOptions& opts) {
  const std::uint64_t n = tree.num_vertices();
  if (root >= n) throw std::invalid_argument("tree_ops: root out of range");

  RootedTree out;
  out.parent.assign(n, graph::kNoVertex);
  out.subtree.assign(n, 1);
  out.depth.assign(n, 0);
  out.preorder.assign(n, 0);
  out.entry_pos.assign(n, 0);
  out.exit_pos.assign(n, 0);
  out.parent[root] = root;
  if (n == 1) {
    // check_tree_shape accepts a single vertex (0 slots) through this path.
    if (tree.num_edges() != 0) throw std::invalid_argument("tree_ops: bad singleton");
    return out;
  }

  const EulerTour tour = euler_tour(tree, opts);
  const std::uint64_t m = tree.num_edges();
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();

  // Break the Euler cycle at the root's first outgoing slot: the slot
  // whose successor is `head` becomes the self-looping tail.
  const edge_t head = tree.offset(root);
  std::vector<std::uint64_t> succ(m);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t ji = 0; ji < static_cast<std::int64_t>(m); ++ji) {
    const auto j = static_cast<std::size_t>(ji);
    succ[j] = tour.next[j] == head ? j : tour.next[j];
  }

  // rank = hops to the tail; position in the tour = (m-1) - rank.
  const auto rank = list_rank(succ, {.threads = opts.threads});
  std::vector<std::uint64_t> pos(m);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t ji = 0; ji < static_cast<std::int64_t>(m); ++ji) {
    const auto j = static_cast<std::size_t>(ji);
    pos[j] = (m - 1) - rank[j];
  }

  // The down direction of each tree edge is the one visited first. For a
  // down slot (u→v): parent[v] = u (exclusive write: one down slot enters
  // each non-root vertex), subtree size from the twin distance.
  auto* parent = out.parent.data();
  auto* subtree = out.subtree.data();
  auto* entry = out.entry_pos.data();
  auto* exit_p = out.exit_pos.data();
  // Marks the tour position of every down edge, for preorder numbering.
  std::vector<std::uint64_t> is_down_at_pos(m, 0);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
    const auto u = static_cast<vertex_t>(vi);
    for (edge_t j = tree.offset(u); j < tree.offset(u) + tree.degree(u); ++j) {
      const vertex_t v = tree.targets()[j];
      if (v == root) continue;
      const edge_t t = tour.twin[j];
      if (pos[j] < pos[t]) {  // (u→v) is the downward traversal
        parent[v] = u;
        subtree[v] = (pos[t] - pos[j] + 1) / 2;
        entry[v] = pos[j];
        exit_p[v] = pos[t];
        is_down_at_pos[pos[j]] = 1;
      }
    }
  }
  out.subtree[root] = n;
  out.entry_pos[root] = 0;
  out.exit_pos[root] = m - 1;

  // Preorder = 1 + number of earlier down edges on the tour (root is 0).
  const auto down_before = exclusive_scan(is_down_at_pos, {.threads = opts.threads});
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
    const auto v = static_cast<std::size_t>(vi);
    if (static_cast<vertex_t>(v) != root) out.preorder[v] = 1 + down_before[entry[v]];
  }

  // Depths by pointer-jumping accumulation: O(log n) doubling rounds.
  std::vector<std::uint64_t> depth(n, 1);
  depth[root] = 0;
  std::vector<vertex_t> anc(out.parent);
  std::vector<std::uint64_t> depth_next(n);
  std::vector<vertex_t> anc_next(n);
  for (std::uint64_t span = 1; span < n; span *= 2) {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
      const auto v = static_cast<std::size_t>(vi);
      const vertex_t a = anc[v];
      depth_next[v] = depth[v] + (static_cast<std::size_t>(a) == v ? 0 : depth[a]);
      anc_next[v] = anc[a];
    }
    depth.swap(depth_next);
    anc.swap(anc_next);
  }
  out.depth = std::move(depth);
  return out;
}

}  // namespace crcw::algo
