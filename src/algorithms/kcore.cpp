#include "algorithms/kcore.hpp"

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <numeric>

#include "core/slot_alloc.hpp"
#include "util/atomic_bitset.hpp"
#include "util/chunking.hpp"

namespace crcw::algo {
namespace {

using graph::Csr;
using graph::vertex_t;

}  // namespace

KcoreResult kcore(const Csr& g, const KcoreOptions& opts) {
  const std::uint64_t n = g.num_vertices();
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();

  KcoreResult result;
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<std::uint64_t> deg(n);
#pragma omp parallel for num_threads(threads) schedule(static)
  for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(static_cast<vertex_t>(v));
  }

  util::AtomicBitset removed(n);
  // Peel wavefronts allocate their successor slots through per-thread
  // chunked grants (one shared RMW per chunk, core/slot_alloc.hpp); the
  // next buffer carries the grants' per-lane slack on top of n.
  SlotAllocator slots(threads);
  const int chunk = util::frontier_chunk();
  std::vector<vertex_t> frontier;
  std::vector<vertex_t> next(static_cast<std::size_t>(slots.capacity_for(n)));
  frontier.reserve(n);
  std::uint64_t removed_total = 0;

  std::uint32_t k = 0;
  while (removed_total < n) {
    ++k;
    // Seed this k's wavefront: still-active vertices now under the
    // threshold. test_and_set makes first-removal exclusive.
    frontier.clear();
    for (std::uint64_t v = 0; v < n; ++v) {
      if (!removed.test(v) && deg[v] < k) {
        if (removed.test_and_set(v)) frontier.push_back(static_cast<vertex_t>(v));
      }
    }

    while (!frontier.empty()) {
      ++result.peel_rounds;
      removed_total += frontier.size();
      const auto fsize = static_cast<std::int64_t>(frontier.size());
      auto* next_data = next.data();

#pragma omp parallel for num_threads(threads) schedule(dynamic, chunk)
      for (std::int64_t fi = 0; fi < fsize; ++fi) {
        const vertex_t v = frontier[static_cast<std::size_t>(fi)];
        const int lane = omp_get_thread_num();
        result.core[v] = k - 1;
        for (const vertex_t u : g.neighbors(v)) {
          if (u == v || removed.test(u)) continue;
          // Combining decrement; the thread that observes the crossing
          // from k to k-1 owns u's removal.
          const std::uint64_t old =
              std::atomic_ref<std::uint64_t>(deg[u]).fetch_sub(1, std::memory_order_acq_rel);
          if (old == k) {
            if (removed.test_and_set(u)) {
              next_data[slots.grant(lane)] = u;
            }
          }
        }
      }

      const auto dense = static_cast<std::ptrdiff_t>(slots.compact(next_data));
      frontier.assign(next.begin(), next.begin() + dense);
    }
  }

  result.degeneracy =
      n == 0 ? 0 : *std::max_element(result.core.begin(), result.core.end());
  return result;
}

std::vector<std::uint32_t> kcore_seq(const Csr& g) {
  const std::uint64_t n = g.num_vertices();
  std::vector<std::uint32_t> core(n, 0);
  if (n == 0) return core;

  // Bucket peeling (Batagelj–Zaversnik): process vertices in increasing
  // current-degree order.
  std::vector<std::uint64_t> deg(n);
  std::uint64_t max_deg = 0;
  for (vertex_t v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }

  std::vector<std::vector<vertex_t>> buckets(max_deg + 1);
  for (vertex_t v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<std::uint8_t> done(n, 0);

  std::uint64_t processed = 0;
  std::uint64_t current = 0;
  std::uint64_t scan = 0;
  while (processed < n) {
    // Find the next vertex with the minimal current degree.
    while (scan <= max_deg && buckets[scan].empty()) {
      ++scan;
    }
    vertex_t v = buckets[scan].back();
    buckets[scan].pop_back();
    if (done[v] != 0 || deg[v] != scan) {
      // Stale bucket entry (degree changed since insertion): skip. Reset
      // the scan floor only when the real degree is lower.
      if (done[v] == 0) {
        buckets[deg[v]].push_back(v);
        scan = std::min(scan, deg[v]);
      }
      continue;
    }
    done[v] = 1;
    ++processed;
    current = std::max(current, scan);
    core[v] = static_cast<std::uint32_t>(current);
    for (const vertex_t u : g.neighbors(v)) {
      if (u == v || done[u] != 0) continue;
      if (deg[u] > 0) {
        --deg[u];
        buckets[deg[u]].push_back(u);
        scan = std::min(scan, deg[u]);
      }
    }
  }
  return core;
}

}  // namespace crcw::algo
