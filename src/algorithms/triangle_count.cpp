#include "algorithms/triangle_count.hpp"

#include <omp.h>

#include <cstddef>
#include <unordered_set>

#include "ds/chained_hash_set.hpp"
#include "ds/concurrent_hash_set.hpp"
#include "ds/hash_common.hpp"

namespace crcw::algo {
namespace {

using graph::vertex_t;

/// Canonical undirected edge key: the smaller endpoint in the high half, so
/// (u,v) and (v,u) collapse to one key and the all-ones sentinel is
/// unreachable for valid vertex ids.
[[nodiscard]] constexpr std::uint64_t pack_edge(vertex_t a, vertex_t b) noexcept {
  const vertex_t lo = a < b ? a : b;
  const vertex_t hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

[[nodiscard]] ds::HashConfig table_config(const TriangleOptions& opts) {
  ds::HashConfig cfg;
  cfg.telemetry = opts.telemetry;
  cfg.site_name = "triangle-edges";
  return cfg;
}

/// Build + count over any set with insert/contains. `insert` and `lookup`
/// adapt the two table APIs (the chained set threads a lane through).
template <typename Insert, typename Lookup>
std::uint64_t count_triangles(const graph::Csr& g, int threads, Insert&& insert,
                              Lookup&& lookup) {
  const auto n = static_cast<std::int64_t>(g.num_vertices());

  // Build: each undirected edge inserted once, by its smaller endpoint.
#pragma omp parallel num_threads(threads)
  {
    const int lane = omp_get_thread_num();
#pragma omp for schedule(static)
    for (std::int64_t v = 0; v < n; ++v) {
      const auto u = static_cast<vertex_t>(v);
      for (const vertex_t w : g.neighbors(u)) {
        if (u < w) insert(lane, pack_edge(u, w));
      }
    }
  }
  // The region's barrier publishes the edge set; counting below is
  // lookup-only.

  std::uint64_t total = 0;
#pragma omp parallel for num_threads(threads) schedule(dynamic, 64) reduction(+ : total)
  for (std::int64_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(static_cast<vertex_t>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const vertex_t a = nbrs[i];
        const vertex_t b = nbrs[j];
        if (a != b && lookup(pack_edge(a, b))) ++total;
      }
    }
  }
  return total / 3;  // one witness per apex
}

}  // namespace

std::uint64_t triangle_count_caslt(const graph::Csr& g, const TriangleOptions& opts) {
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  // num_edges() counts directed slots, an upper bound on undirected edges.
  ds::ConcurrentHashSet<> edges(g.num_edges(), table_config(opts));
  const std::uint64_t count = count_triangles(
      g, threads, [&](int, std::uint64_t key) { (void)edges.insert(key); },
      [&](std::uint64_t key) { return edges.contains(key); });
  edges.flush_round();
  return count;
}

std::uint64_t triangle_count_chained(const graph::Csr& g, const TriangleOptions& opts) {
  const int threads = opts.threads > 0 ? opts.threads : omp_get_max_threads();
  ds::ChainedHashSet<> edges(g.num_edges(), threads, table_config(opts));
  const std::uint64_t count = count_triangles(
      g, threads, [&](int lane, std::uint64_t key) { (void)edges.insert(lane, key); },
      [&](std::uint64_t key) { return edges.contains(key); });
  edges.flush_round();
  return count;
}

std::uint64_t triangle_count_serial(const graph::Csr& g, const TriangleOptions&) {
  std::unordered_set<std::uint64_t> edges;
  edges.reserve(g.num_edges());
  const auto n = static_cast<std::int64_t>(g.num_vertices());
  for (std::int64_t v = 0; v < n; ++v) {
    const auto u = static_cast<vertex_t>(v);
    for (const vertex_t w : g.neighbors(u)) {
      if (u < w) edges.insert(pack_edge(u, w));
    }
  }
  std::uint64_t total = 0;
  for (std::int64_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(static_cast<vertex_t>(v));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[i] != nbrs[j] && edges.contains(pack_edge(nbrs[i], nbrs[j]))) ++total;
      }
    }
  }
  return total / 3;
}

}  // namespace crcw::algo
