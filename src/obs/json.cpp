#include "obs/json.hpp"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace crcw::obs::json {
namespace {

[[noreturn]] void type_error(const char* want) {
  throw std::logic_error(std::string("json::Value: not a ") + want);
}

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; emit null so documents always parse.
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  assert(ec == std::errc());
  out.append(buf, ptr);
  // Shortest-round-trip of an integral double has no '.' or exponent; add
  // ".0" so the value parses back as a double, keeping types stable.
  std::string_view written(buf, static_cast<std::size_t>(ptr - buf));
  if (written.find('.') == std::string_view::npos &&
      written.find('e') == std::string_view::npos &&
      written.find("inf") == std::string_view::npos) {
    out += ".0";
  }
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (type_ == Type::kInt) return int_;
  if (type_ == Type::kUint && uint_ <= static_cast<std::uint64_t>(INT64_MAX)) {
    return static_cast<std::int64_t>(uint_);
  }
  type_error("int");
}

std::uint64_t Value::as_uint() const {
  if (type_ == Type::kUint) return uint_;
  if (type_ == Type::kInt && int_ >= 0) return static_cast<std::uint64_t>(int_);
  type_error("uint");
}

double Value::as_double() const {
  switch (type_) {
    case Type::kDouble:
      return double_;
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    default:
      type_error("number");
  }
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) type_error("array");
  return items_;
}

const std::vector<Member>& Value::members() const {
  if (type_ != Type::kObject) type_error("object");
  return members_;
}

void Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array");
  items_.push_back(std::move(v));
}

void Value::add(std::string key, Value v) {
  if (type_ != Type::kObject) type_error("object");
  members_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Value::size() const noexcept {
  if (type_ == Type::kArray) return items_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

void Value::dump_to(std::string& out, int indent) const {
  const auto pad = [&out](int n) { out.append(static_cast<std::size_t>(n) * 2, ' '); };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      append_double(out, double_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        pad(indent + 1);
        items_[i].dump_to(out, indent + 1);
        if (i + 1 < items_.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(indent);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        pad(indent + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.dump_to(out, indent + 1);
        if (i + 1 < members_.size()) out.push_back(',');
        out.push_back('\n');
      }
      pad(indent);
      out.push_back('}');
      break;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out, 0);
  out.push_back('\n');
  return out;
}

// ---------------------------------------------------------------------------
// Parser — recursive descent over a string_view with a cursor.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::invalid_argument("json parse error at byte " + std::to_string(pos_) + ": " +
                                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("short \\u escape");
            unsigned code = 0;
            const auto [p, ec] =
                std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc() || p != text_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            // The emitter only escapes control characters; decode the
            // Basic-Latin range and pass anything else through as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty()) fail("expected number");
    const bool integral = tok.find('.') == std::string_view::npos &&
                          tok.find('e') == std::string_view::npos &&
                          tok.find('E') == std::string_view::npos;
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (ec == std::errc() && p == tok.data() + tok.size()) return Value(i);
      } else {
        std::uint64_t u = 0;
        const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (ec == std::errc() && p == tok.data() + tok.size()) {
          if (u <= static_cast<std::uint64_t>(INT64_MAX)) {
            return Value(static_cast<std::int64_t>(u));
          }
          return Value(u);
        }
      }
      fail("bad integer");
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) fail("bad number");
    return Value(d);
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.add(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace crcw::obs::json
