#include "obs/bench_report.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/env.hpp"
#include "util/stats.hpp"

namespace crcw::obs {
namespace {

bool same_key(const BenchRow& a, const BenchRow& b) {
  return a.series == b.series && a.threads == b.threads && a.n == b.n && a.m == b.m;
}

json::Value counters_json(const ContentionTotals& t) {
  json::Value c = json::Value::object();
  c.add("attempts", t.attempts);
  c.add("atomics", t.atomics);
  c.add("failures", t.failures());
  c.add("wins", t.wins);
  c.add("rounds", t.rounds);
  c.add("refills", t.refills);
  c.add("reset_tags", t.reset_tags);
  c.add("tombstones", t.tombstones);
  c.add("reclaimed", t.reclaimed);
  c.add("group_loads", t.group_loads);
  c.add("fingerprint_false_positives", t.fingerprint_fps);
  c.add("probe_p50", t.probe_p50);
  c.add("probe_p99", t.probe_p99);
  return c;
}

}  // namespace

const std::vector<std::string>& bench_timing_fields() {
  static const std::vector<std::string> fields = {
      "median_ns", "mean_ns",    "stddev_ns",
      "min_ns",    "max_ns",     "samples_ns",
      "speedup_vs_baseline"};
  return fields;
}

BenchReport::BenchReport(std::string bench_name) : name_(std::move(bench_name)) {}

void BenchReport::add_row(BenchRow row) {
  for (auto& existing : rows_) {
    if (same_key(existing, row)) {
      // Keep an earlier profile: harnesses record counters once per point,
      // while timing re-runs replace the samples.
      if (!row.counters.has_value()) row.counters = existing.counters;
      existing = std::move(row);
      return;
    }
  }
  rows_.push_back(std::move(row));
}

bool BenchReport::has_counters(const BenchRow& key) const {
  for (const auto& row : rows_) {
    if (same_key(row, key)) return row.counters.has_value();
  }
  return false;
}

json::Value BenchReport::to_json() const {
  json::Value doc = json::Value::object();
  doc.add("schema", kBenchSchemaName);
  doc.add("schema_version", kBenchSchemaVersion);
  doc.add("bench", name_);

  json::Value env = json::Value::object();
  env.add("hardware_threads", util::hardware_threads());
  env.add("omp_max_threads", util::omp_max_threads());
  doc.add("environment", std::move(env));

  const auto median_of = [](const BenchRow& row) {
    return util::summarize(row.samples_ns).median;
  };

  json::Value rows = json::Value::array();
  for (const auto& row : rows_) {
    const util::Summary s = util::summarize(row.samples_ns);

    json::Value r = json::Value::object();
    r.add("series", row.series);
    r.add("policy", row.policy);
    r.add("baseline", row.baseline.empty() ? json::Value(nullptr) : json::Value(row.baseline));
    r.add("threads", row.threads);
    r.add("n", row.n);
    r.add("m", row.m);
    r.add("reps", static_cast<std::uint64_t>(row.samples_ns.size()));
    r.add("median_ns", s.median);
    r.add("mean_ns", s.mean);
    r.add("stddev_ns", s.stddev);
    r.add("min_ns", s.min);
    r.add("max_ns", s.max);
    json::Value samples = json::Value::array();
    for (const double x : row.samples_ns) samples.push_back(x);
    r.add("samples_ns", std::move(samples));

    json::Value speedup(nullptr);
    if (!row.baseline.empty() && s.median > 0.0) {
      if (row.policy == row.baseline) {
        speedup = json::Value(1.0);
      } else {
        for (const auto& other : rows_) {
          if (other.policy == row.baseline && other.threads == row.threads &&
              other.n == row.n && other.m == row.m && !other.samples_ns.empty()) {
            speedup = json::Value(median_of(other) / s.median);
            break;
          }
        }
      }
    }
    r.add("speedup_vs_baseline", std::move(speedup));
    r.add("counters",
          row.counters.has_value() ? counters_json(*row.counters) : json::Value(nullptr));
    rows.push_back(std::move(r));
  }
  doc.add("rows", std::move(rows));
  return doc;
}

void BenchReport::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(p, std::ios::trunc);
  if (!out) throw std::runtime_error("BenchReport: cannot open " + path);
  out << to_json().dump();
}

std::string BenchReport::default_path() const {
  const char* dir = std::getenv("CRCW_BENCH_JSON_DIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : "bench_results";
  return base + "/BENCH_" + name_ + ".json";
}

}  // namespace crcw::obs
