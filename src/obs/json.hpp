// Minimal JSON document model for the observability subsystem.
//
// The bench harness needs a writer whose output is byte-deterministic
// (object fields keep insertion order, numbers use shortest round-trip
// formatting) so that schema and determinism tests can compare dumps
// directly, plus a parser for round-trip tests and for reading committed
// baselines. Deliberately tiny — no external dependency, no SAX layer,
// no UTF-16 surrogate handling beyond pass-through escapes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace crcw::obs::json {

class Value;

/// Object member list; a vector (not a map) so field order is exactly
/// insertion order — the emitted schema is position-stable.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(std::int64_t i) noexcept : type_(Type::kInt), int_(i) {}  // NOLINT
  Value(std::uint64_t u) noexcept : type_(Type::kUint), uint_(u) {}  // NOLINT
  Value(int i) noexcept : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) noexcept : type_(Type::kDouble), double_(d) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUint || type_ == Type::kDouble;
  }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  /// Any numeric type widened to double.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Value>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// Array append (value must be an array).
  void push_back(Value v);
  /// Object append — does NOT deduplicate keys; emit-side code owns that.
  void add(std::string key, Value v);
  /// Object lookup; nullptr when the key is absent or value is not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialises with 2-space indentation and '\n' separators; deterministic
  /// byte-for-byte for equal documents.
  [[nodiscard]] std::string dump() const;

 private:
  friend Value parse(std::string_view text);
  void dump_to(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Parses a complete JSON document; throws std::invalid_argument with a
/// byte offset on malformed input. Numbers parse to kInt when integral and
/// in range, kUint for large positive integers, else kDouble.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace crcw::obs::json
