// Machine-readable benchmark results: the schema-stable BENCH_<name>.json
// emitter every bench binary feeds, and scripts/bench_compare.py consumes.
//
// Schema contract (version bumps REQUIRE updating scripts/bench_schema.json
// and tests/test_bench_report.cpp together):
//
//   {
//     "schema": "crcw-bench",
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "environment": {"hardware_threads": H, "omp_max_threads": T},
//     "rows": [{
//       "series":              string   unique point id, e.g. "fig5/caslt"
//       "policy":              string   write policy / method ("" if n/a)
//       "baseline":            string|null  policy this row's speedup is against
//       "threads":             int      worker threads of the measurement
//       "n":                   int      problem size (vertices / list length)
//       "m":                   int      secondary size (edges; 0 if n/a)
//       "reps":                int      timing samples taken
//       "median_ns" "mean_ns" "stddev_ns" "min_ns" "max_ns":  number
//       "samples_ns":          array    raw per-rep times
//       "speedup_vs_baseline": number|null  baseline_median / median
//       "counters":            object|null  {"attempts","atomics","failures",
//                                            "wins","rounds","refills",
//                                            "reset_tags","tombstones",
//                                            "reclaimed","group_loads",
//                                            "fingerprint_false_positives",
//                                            "probe_p50","probe_p99"} from an
//                                            instrumented (untimed) run.
//                                            Everything after failures is
//                                            additive in schema_version 1
//                                            (older baselines may lack them;
//                                            the gate compares a counter only
//                                            when both sides carry it).
//                                            probe_p50/p99 are pow2-bucket
//                                            upper bounds of the probe-length
//                                            histogram — diagnostic, not
//                                            gated.
//     }]
//   }
//
// Timing-derived fields (the set bench_compare.py treats as noisy and the
// determinism test strips) are exactly: median_ns, mean_ns, stddev_ns,
// min_ns, max_ns, samples_ns, speedup_vs_baseline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace crcw::obs {

inline constexpr std::string_view kBenchSchemaName = "crcw-bench";
inline constexpr int kBenchSchemaVersion = 1;

/// The timing-derived row fields, in schema order.
[[nodiscard]] const std::vector<std::string>& bench_timing_fields();

struct BenchRow {
  std::string series;
  std::string policy;
  std::string baseline;  ///< "" = this figure has no baseline series
  int threads = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::vector<double> samples_ns = {};
  std::optional<ContentionTotals> counters = {};
};

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Adds a measured point; a row with the same (series, threads, n, m)
  /// replaces the previous one (google-benchmark may re-run a benchmark
  /// while tuning iteration counts — last result wins). A replacement
  /// without counters inherits the previous row's counters, so one profile
  /// pass per point survives timing re-runs.
  void add_row(BenchRow row);

  /// Existing counters for the row key, if a prior add_row recorded them
  /// (lets harnesses skip re-profiling on google-benchmark re-runs).
  [[nodiscard]] bool has_counters(const BenchRow& key) const;

  /// Full document. Speedups are derived here: a row with baseline B gets
  /// baseline_median / median against the B row with equal (threads, n, m);
  /// the B row itself reports 1; no match reports null.
  [[nodiscard]] json::Value to_json() const;

  /// Writes to_json() to `path`, creating parent directories.
  void write_file(const std::string& path) const;

  /// "$CRCW_BENCH_JSON_DIR/BENCH_<name>.json" (dir defaults to
  /// "bench_results").
  [[nodiscard]] std::string default_path() const;

 private:
  std::string name_;
  std::vector<BenchRow> rows_;
};

}  // namespace crcw::obs
