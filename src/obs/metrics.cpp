#include "obs/metrics.hpp"

#include <algorithm>

namespace crcw::obs {
namespace {

/// Dense thread index for shard selection. Distinct from
/// omp_get_thread_num so raw-std::thread users (the stress tier) shard
/// too; indices recycle across kShards only after kShards distinct
/// threads, at which point the relaxed fetch_add stays correct, merely
/// shared.
std::size_t this_thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

thread_local MetricsRegistry* t_registry_override = nullptr;

}  // namespace

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Histogram::quantile_upper_bound(double p) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) return bucket_upper(i);
  }
  return bucket_upper(kBuckets - 1);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

ContentionSite::ContentionSite(std::string name)
    : name_(std::move(name)), registry_(&current_registry()) {
  registry_->attach(*this);
}

ContentionSite::~ContentionSite() { registry_->detach(*this); }

ContentionSite::Shard& ContentionSite::shard() noexcept {
  return shards_[this_thread_index() % kShards];
}

ContentionTotals ContentionSite::totals() const noexcept {
  ContentionTotals t;
  for (const auto& s : shards_) {
    t.attempts += s.attempts.load(std::memory_order_relaxed);
    t.atomics += s.atomics.load(std::memory_order_relaxed);
    t.wins += s.wins.load(std::memory_order_relaxed);
    t.refills += s.refills.load(std::memory_order_relaxed);
    t.reset_tags += s.reset_tags.load(std::memory_order_relaxed);
    t.tombstones += s.tombstones.load(std::memory_order_relaxed);
    t.reclaimed += s.reclaimed.load(std::memory_order_relaxed);
    t.group_loads += s.group_loads.load(std::memory_order_relaxed);
    t.fingerprint_fps += s.fingerprint_fps.load(std::memory_order_relaxed);
  }
  t.rounds = rounds_.load(std::memory_order_relaxed);
  t.probe_p50 = probe_lengths_.quantile_upper_bound(0.5);
  t.probe_p99 = probe_lengths_.quantile_upper_bound(0.99);
  return t;
}

void ContentionSite::flush_round() noexcept {
  rounds_.fetch_add(1, std::memory_order_relaxed);
  ContentionTotals now = totals();
  attempts_per_round_.record(now.attempts - last_flush_.attempts);
  atomics_per_round_.record(now.atomics - last_flush_.atomics);
  last_flush_ = now;
}

void ContentionSite::reset() noexcept {
  for (auto& s : shards_) {
    s.attempts.store(0, std::memory_order_relaxed);
    s.atomics.store(0, std::memory_order_relaxed);
    s.wins.store(0, std::memory_order_relaxed);
    s.refills.store(0, std::memory_order_relaxed);
    s.reset_tags.store(0, std::memory_order_relaxed);
    s.tombstones.store(0, std::memory_order_relaxed);
    s.reclaimed.store(0, std::memory_order_relaxed);
    s.group_loads.store(0, std::memory_order_relaxed);
    s.fingerprint_fps.store(0, std::memory_order_relaxed);
  }
  rounds_.store(0, std::memory_order_relaxed);
  last_flush_ = {};
  attempts_per_round_.reset();
  atomics_per_round_.reset();
  probe_lengths_.reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

void MetricsRegistry::attach(ContentionSite& site) {
  const std::lock_guard<std::mutex> lock(mu_);
  sites_.push_back(&site);
}

void MetricsRegistry::detach(ContentionSite& site) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find(sites_.begin(), sites_.end(), &site);
  if (it != sites_.end()) {
    sites_.erase(it);
    retained_.emplace_back(site.name(), site.totals());
  }
}

ContentionTotals MetricsRegistry::totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  ContentionTotals t;
  for (const auto& [name, folded] : retained_) t += folded;
  for (const ContentionSite* site : sites_) t += site->totals();
  return t;
}

std::vector<std::pair<std::string, ContentionTotals>> MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, ContentionTotals>> out;
  const auto merge = [&out](const std::string& name, const ContentionTotals& t) {
    for (auto& [n, sum] : out) {
      if (n == name) {
        sum += t;
        return;
      }
    }
    out.emplace_back(name, t);
  };
  for (const auto& [name, folded] : retained_) merge(name, folded);
  for (const ContentionSite* site : sites_) merge(site->name(), site->totals());
  return out;
}

std::size_t MetricsRegistry::live_sites() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sites_.size();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  retained_.clear();
  for (ContentionSite* site : sites_) site->reset();
}

MetricsRegistry& current_registry() noexcept {
  return t_registry_override != nullptr ? *t_registry_override : MetricsRegistry::global();
}

ScopedRegistry::ScopedRegistry(MetricsRegistry& r) noexcept : prev_(t_registry_override) {
  t_registry_override = &r;
}

ScopedRegistry::~ScopedRegistry() { t_registry_override = prev_; }

}  // namespace crcw::obs
