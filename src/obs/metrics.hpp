// Contention telemetry: per-thread sharded counters, aggregated at round
// boundaries — the observability layer the §6 cost argument is measured
// with.
//
// Design constraints, in order:
//   * the hot path (one try_acquire) must not touch a shared cache line —
//     each thread increments its own padded shard, so instrumentation
//     perturbs the contention pattern it measures as little as possible;
//   * counters are INSTANCE-owned (one ContentionSite per WriteArbiter),
//     never static per policy type — two instrumented arbiters in one
//     process count independently and tests cannot leak into each other;
//   * every live site is discoverable through a MetricsRegistry so a
//     harness can snapshot "everything this kernel did" without plumbing
//     references through call chains. Destroyed sites fold their totals
//     into the registry, so short-lived arbiters inside a kernel still
//     report.
//
// Related work: "Lightweight Contention Management for Efficient
// Compare-and-Swap Operations" (PAPERS.md) identifies CAS failure/retry
// counts as the throughput-collapse predictor; ContentionSite counts
// exactly those (attempts / atomics issued / wins; failures = atomics -
// wins).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"

namespace crcw::obs {

/// Aggregated view of one contention site (or a whole registry).
struct ContentionTotals {
  std::uint64_t attempts = 0;  ///< try_acquire calls (contenders arriving)
  std::uint64_t atomics = 0;   ///< atomic RMWs actually issued
  std::uint64_t wins = 0;      ///< writes admitted
  std::uint64_t rounds = 0;    ///< round boundaries flushed through the site
  /// SlotAllocator shared-cursor refills (one fetch_add granting a chunk).
  /// atomics counts the same events for slot sites, so refills/atomics
  /// separates "RMWs on the shared line" from per-slot work.
  std::uint64_t refills = 0;
  /// Tags re-initialised by round-reset sweeps — Θ(N)·rounds for the full
  /// gatekeeper sweep, Σ(#writes-last-round) for the sparse one (§6 cost).
  std::uint64_t reset_tags = 0;
  /// Erase commits (ds tables): each is one CAS-LT tombstone write, so
  /// tombstones == erase wins and tombstones ≤ atomics for a table site.
  std::uint64_t tombstones = 0;
  /// Dead entries dropped by reclaim/shrink sweeps (ds tables).
  std::uint64_t reclaimed = 0;
  /// Control-byte groups scanned by SIMD probe walks (ds tables): one per
  /// 16-bucket step, so group_loads·16 bounds the buckets *filtered* while
  /// attempts counts the buckets actually *verified* — their ratio is the
  /// probe-bandwidth saving the sidecar buys.
  std::uint64_t group_loads = 0;
  /// H2 fingerprint hits whose bucket verification found a different key —
  /// the filter's false positives (expected ≈ occupancy/128 per group).
  std::uint64_t fingerprint_fps = 0;
  /// Probe-length quantile upper bounds (buckets verified per table
  /// operation; power-of-two bucketed). NOT additive: operator+= keeps the
  /// max, so a registry merge reports the worst site's distribution tail.
  std::uint64_t probe_p50 = 0;
  std::uint64_t probe_p99 = 0;

  /// Atomic RMWs that did not admit a write — the paper's "failed races"
  /// and the gatekeeper's serialised losers. Saturates at 0: sites whose
  /// wins are tallied elsewhere than their RMWs (registry-level merges of
  /// tag sites with slot sites) must not wrap to 2^64-ish garbage.
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return atomics >= wins ? atomics - wins : 0;
  }

  ContentionTotals& operator+=(const ContentionTotals& o) noexcept {
    attempts += o.attempts;
    atomics += o.atomics;
    wins += o.wins;
    rounds += o.rounds;
    refills += o.refills;
    reset_tags += o.reset_tags;
    tombstones += o.tombstones;
    reclaimed += o.reclaimed;
    group_loads += o.group_loads;
    fingerprint_fps += o.fingerprint_fps;
    probe_p50 = probe_p50 > o.probe_p50 ? probe_p50 : o.probe_p50;
    probe_p99 = probe_p99 > o.probe_p99 ? probe_p99 : o.probe_p99;
    return *this;
  }
  friend bool operator==(const ContentionTotals&, const ContentionTotals&) = default;
};

/// Power-of-two-bucketed histogram of uint64 samples (bucket 0 holds value
/// 0, bucket k holds [2^(k-1), 2^k)). Recording is a relaxed increment of
/// one bucket — safe from any thread; readers race benignly with writers
/// and see a consistent-enough view for reporting.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket i (the largest value it can hold).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// 0 when empty.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double p) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

class MetricsRegistry;

/// Returns the registry new ContentionSites attach to: the innermost live
/// ScopedRegistry on this thread, else the process-global registry.
[[nodiscard]] MetricsRegistry& current_registry() noexcept;

/// One instrumented contention domain — typically owned by one
/// WriteArbiter. Hot-path counting lands in a per-thread shard (padded, no
/// shared lines up to kShards concurrent threads); totals() sums shards on
/// demand; flush_round() aggregates the round's deltas at the PRAM step
/// boundary, feeding the per-round attempt/atomic histograms.
class ContentionSite {
 public:
  static constexpr std::size_t kShards = 32;

  explicit ContentionSite(std::string name);
  ~ContentionSite();

  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // -- hot path (any thread) ------------------------------------------------
  void count_attempt() noexcept {
    shard().attempts.fetch_add(1, std::memory_order_relaxed);
  }
  void count_atomic() noexcept { shard().atomics.fetch_add(1, std::memory_order_relaxed); }
  void count_win() noexcept { shard().wins.fetch_add(1, std::memory_order_relaxed); }

  // -- bulk adders (any thread) ---------------------------------------------
  // For code that keeps private tallies on its own hot path (SlotAllocator
  // lanes, reset sweeps) and folds them in once per run/round.
  void add_attempts(std::uint64_t k) noexcept {
    shard().attempts.fetch_add(k, std::memory_order_relaxed);
  }
  void add_atomics(std::uint64_t k) noexcept {
    shard().atomics.fetch_add(k, std::memory_order_relaxed);
  }
  void add_wins(std::uint64_t k) noexcept {
    shard().wins.fetch_add(k, std::memory_order_relaxed);
  }
  void add_refills(std::uint64_t k) noexcept {
    shard().refills.fetch_add(k, std::memory_order_relaxed);
  }
  void add_reset_tags(std::uint64_t k) noexcept {
    shard().reset_tags.fetch_add(k, std::memory_order_relaxed);
  }
  void add_tombstones(std::uint64_t k) noexcept {
    shard().tombstones.fetch_add(k, std::memory_order_relaxed);
  }
  void add_reclaimed(std::uint64_t k) noexcept {
    shard().reclaimed.fetch_add(k, std::memory_order_relaxed);
  }
  void add_group_loads(std::uint64_t k) noexcept {
    shard().group_loads.fetch_add(k, std::memory_order_relaxed);
  }
  void add_fingerprint_fps(std::uint64_t k) noexcept {
    shard().fingerprint_fps.fetch_add(k, std::memory_order_relaxed);
  }
  /// One table operation's probe length (buckets verified) — feeds the
  /// probe_lengths() histogram and the p50/p99 fields of totals().
  void record_probe_length(std::uint64_t probes) noexcept { probe_lengths_.record(probes); }

  /// Probe-length sampling stride for record_walk(): the histogram sees
  /// one op in 64, which keeps its (shared, unsharded) buckets off the
  /// table hot path entirely in the steady state.
  static constexpr std::uint64_t kProbeSampleEvery = 64;

  /// Batched flush of one table operation's probe walk: a single RMW on
  /// the caller's shard covers the attempt count, and its returned
  /// pre-value decides 1-in-64 probe-length sampling — the decision
  /// depends only on *prior* attempts, never on this walk's own length,
  /// so ops are sampled uniformly (no length bias) and the histogram's
  /// quantiles stay unbiased; quantiles are scale-invariant, so no
  /// count rescaling is needed anywhere. A site's first op always
  /// samples (prior == 0), keeping small serial workloads visible.
  /// Zero-valued group/fingerprint tallies skip their RMWs.
  void record_walk(std::uint64_t probes, std::uint64_t group_loads,
                   std::uint64_t fingerprint_fps) noexcept {
    Shard& sh = shard();
    const std::uint64_t prior = sh.attempts.fetch_add(probes, std::memory_order_relaxed);
    if (group_loads > 0) sh.group_loads.fetch_add(group_loads, std::memory_order_relaxed);
    if (fingerprint_fps > 0) {
      sh.fingerprint_fps.fetch_add(fingerprint_fps, std::memory_order_relaxed);
    }
    if ((prior & (kProbeSampleEvery - 1)) == 0) probe_lengths_.record(probes);
  }

  // -- round boundary (serial code between parallel regions) ---------------
  /// Sums the deltas since the previous flush into the per-round
  /// histograms and advances the round count. Call between parallel
  /// regions — the same place the round counter itself advances.
  void flush_round() noexcept;

  // -- reporting ------------------------------------------------------------
  [[nodiscard]] ContentionTotals totals() const noexcept;
  [[nodiscard]] const Histogram& attempts_per_round() const noexcept {
    return attempts_per_round_;
  }
  [[nodiscard]] const Histogram& atomics_per_round() const noexcept {
    return atomics_per_round_;
  }
  [[nodiscard]] const Histogram& probe_lengths() const noexcept { return probe_lengths_; }

  /// Zeroes counters, histograms and the flush cursor. Not safe
  /// concurrently with the hot path.
  void reset() noexcept;

 private:
  struct alignas(util::kCacheLineSize) Shard {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> atomics{0};
    std::atomic<std::uint64_t> wins{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> reset_tags{0};
    std::atomic<std::uint64_t> tombstones{0};
    std::atomic<std::uint64_t> reclaimed{0};
    std::atomic<std::uint64_t> group_loads{0};
    std::atomic<std::uint64_t> fingerprint_fps{0};
  };
  // Nine counters outgrew one line; what matters is that shards never
  // SHARE a line, which alignas keeps true at any padded multiple.
  static_assert(sizeof(Shard) % util::kCacheLineSize == 0);
  static_assert(alignof(Shard) == util::kCacheLineSize);

  [[nodiscard]] Shard& shard() noexcept;

  Shard shards_[kShards];
  std::atomic<std::uint64_t> rounds_{0};
  ContentionTotals last_flush_;  // serial: only flush_round/reset touch it
  Histogram attempts_per_round_;
  Histogram atomics_per_round_;
  Histogram probe_lengths_;
  std::string name_;
  MetricsRegistry* registry_;
};

/// Tracks every live ContentionSite plus the folded totals of destroyed
/// ones, so `totals()` answers "all contention this registry has seen".
/// Thread-safe; sites attach in their constructor and detach (folding
/// their totals) in their destructor.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry (default attach target).
  [[nodiscard]] static MetricsRegistry& global();

  void attach(ContentionSite& site);
  void detach(ContentionSite& site);

  /// Sum over live sites and retained totals of destroyed sites.
  [[nodiscard]] ContentionTotals totals() const;

  /// Per-name totals (same-named sites merged), retained first, then live,
  /// in attach order — deterministic for a deterministic program.
  [[nodiscard]] std::vector<std::pair<std::string, ContentionTotals>> snapshot() const;

  [[nodiscard]] std::size_t live_sites() const;

  /// Resets live sites and drops retained totals.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<ContentionSite*> sites_;
  std::vector<std::pair<std::string, ContentionTotals>> retained_;
};

/// Redirects ContentionSites constructed on this thread to `r` for the
/// scope's lifetime; nests. Lets a harness profile one kernel run into a
/// private registry without disturbing the global one.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry& r) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace crcw::obs
