// Contention telemetry: per-thread sharded counters, aggregated at round
// boundaries — the observability layer the §6 cost argument is measured
// with.
//
// Design constraints, in order:
//   * the hot path (one try_acquire) must not touch a shared cache line —
//     each thread increments its own padded shard, so instrumentation
//     perturbs the contention pattern it measures as little as possible;
//   * counters are INSTANCE-owned (one ContentionSite per WriteArbiter),
//     never static per policy type — two instrumented arbiters in one
//     process count independently and tests cannot leak into each other;
//   * every live site is discoverable through a MetricsRegistry so a
//     harness can snapshot "everything this kernel did" without plumbing
//     references through call chains. Destroyed sites fold their totals
//     into the registry, so short-lived arbiters inside a kernel still
//     report.
//
// Related work: "Lightweight Contention Management for Efficient
// Compare-and-Swap Operations" (PAPERS.md) identifies CAS failure/retry
// counts as the throughput-collapse predictor; ContentionSite counts
// exactly those (attempts / atomics issued / wins; failures = atomics -
// wins).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/cacheline.hpp"

namespace crcw::obs {

/// Aggregated view of one contention site (or a whole registry).
struct ContentionTotals {
  std::uint64_t attempts = 0;  ///< try_acquire calls (contenders arriving)
  std::uint64_t atomics = 0;   ///< atomic RMWs actually issued
  std::uint64_t wins = 0;      ///< writes admitted
  std::uint64_t rounds = 0;    ///< round boundaries flushed through the site
  /// SlotAllocator shared-cursor refills (one fetch_add granting a chunk).
  /// atomics counts the same events for slot sites, so refills/atomics
  /// separates "RMWs on the shared line" from per-slot work.
  std::uint64_t refills = 0;
  /// Tags re-initialised by round-reset sweeps — Θ(N)·rounds for the full
  /// gatekeeper sweep, Σ(#writes-last-round) for the sparse one (§6 cost).
  std::uint64_t reset_tags = 0;
  /// Erase commits (ds tables): each is one CAS-LT tombstone write, so
  /// tombstones == erase wins and tombstones ≤ atomics for a table site.
  std::uint64_t tombstones = 0;
  /// Dead entries dropped by reclaim/shrink sweeps (ds tables).
  std::uint64_t reclaimed = 0;

  /// Atomic RMWs that did not admit a write — the paper's "failed races"
  /// and the gatekeeper's serialised losers. Saturates at 0: sites whose
  /// wins are tallied elsewhere than their RMWs (registry-level merges of
  /// tag sites with slot sites) must not wrap to 2^64-ish garbage.
  [[nodiscard]] std::uint64_t failures() const noexcept {
    return atomics >= wins ? atomics - wins : 0;
  }

  ContentionTotals& operator+=(const ContentionTotals& o) noexcept {
    attempts += o.attempts;
    atomics += o.atomics;
    wins += o.wins;
    rounds += o.rounds;
    refills += o.refills;
    reset_tags += o.reset_tags;
    tombstones += o.tombstones;
    reclaimed += o.reclaimed;
    return *this;
  }
  friend bool operator==(const ContentionTotals&, const ContentionTotals&) = default;
};

/// Power-of-two-bucketed histogram of uint64 samples (bucket 0 holds value
/// 0, bucket k holds [2^(k-1), 2^k)). Recording is a relaxed increment of
/// one bucket — safe from any thread; readers race benignly with writers
/// and see a consistent-enough view for reporting.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket i (the largest value it can hold).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Upper bound of the bucket containing the p-quantile (p in [0,1]);
  /// 0 when empty.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double p) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

class MetricsRegistry;

/// Returns the registry new ContentionSites attach to: the innermost live
/// ScopedRegistry on this thread, else the process-global registry.
[[nodiscard]] MetricsRegistry& current_registry() noexcept;

/// One instrumented contention domain — typically owned by one
/// WriteArbiter. Hot-path counting lands in a per-thread shard (padded, no
/// shared lines up to kShards concurrent threads); totals() sums shards on
/// demand; flush_round() aggregates the round's deltas at the PRAM step
/// boundary, feeding the per-round attempt/atomic histograms.
class ContentionSite {
 public:
  static constexpr std::size_t kShards = 32;

  explicit ContentionSite(std::string name);
  ~ContentionSite();

  ContentionSite(const ContentionSite&) = delete;
  ContentionSite& operator=(const ContentionSite&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  // -- hot path (any thread) ------------------------------------------------
  void count_attempt() noexcept {
    shard().attempts.fetch_add(1, std::memory_order_relaxed);
  }
  void count_atomic() noexcept { shard().atomics.fetch_add(1, std::memory_order_relaxed); }
  void count_win() noexcept { shard().wins.fetch_add(1, std::memory_order_relaxed); }

  // -- bulk adders (any thread) ---------------------------------------------
  // For code that keeps private tallies on its own hot path (SlotAllocator
  // lanes, reset sweeps) and folds them in once per run/round.
  void add_attempts(std::uint64_t k) noexcept {
    shard().attempts.fetch_add(k, std::memory_order_relaxed);
  }
  void add_atomics(std::uint64_t k) noexcept {
    shard().atomics.fetch_add(k, std::memory_order_relaxed);
  }
  void add_wins(std::uint64_t k) noexcept {
    shard().wins.fetch_add(k, std::memory_order_relaxed);
  }
  void add_refills(std::uint64_t k) noexcept {
    shard().refills.fetch_add(k, std::memory_order_relaxed);
  }
  void add_reset_tags(std::uint64_t k) noexcept {
    shard().reset_tags.fetch_add(k, std::memory_order_relaxed);
  }
  void add_tombstones(std::uint64_t k) noexcept {
    shard().tombstones.fetch_add(k, std::memory_order_relaxed);
  }
  void add_reclaimed(std::uint64_t k) noexcept {
    shard().reclaimed.fetch_add(k, std::memory_order_relaxed);
  }

  // -- round boundary (serial code between parallel regions) ---------------
  /// Sums the deltas since the previous flush into the per-round
  /// histograms and advances the round count. Call between parallel
  /// regions — the same place the round counter itself advances.
  void flush_round() noexcept;

  // -- reporting ------------------------------------------------------------
  [[nodiscard]] ContentionTotals totals() const noexcept;
  [[nodiscard]] const Histogram& attempts_per_round() const noexcept {
    return attempts_per_round_;
  }
  [[nodiscard]] const Histogram& atomics_per_round() const noexcept {
    return atomics_per_round_;
  }

  /// Zeroes counters, histograms and the flush cursor. Not safe
  /// concurrently with the hot path.
  void reset() noexcept;

 private:
  struct alignas(util::kCacheLineSize) Shard {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> atomics{0};
    std::atomic<std::uint64_t> wins{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> reset_tags{0};
    std::atomic<std::uint64_t> tombstones{0};
    std::atomic<std::uint64_t> reclaimed{0};
  };
  static_assert(sizeof(Shard) == util::kCacheLineSize);

  [[nodiscard]] Shard& shard() noexcept;

  Shard shards_[kShards];
  std::atomic<std::uint64_t> rounds_{0};
  ContentionTotals last_flush_;  // serial: only flush_round/reset touch it
  Histogram attempts_per_round_;
  Histogram atomics_per_round_;
  std::string name_;
  MetricsRegistry* registry_;
};

/// Tracks every live ContentionSite plus the folded totals of destroyed
/// ones, so `totals()` answers "all contention this registry has seen".
/// Thread-safe; sites attach in their constructor and detach (folding
/// their totals) in their destructor.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry (default attach target).
  [[nodiscard]] static MetricsRegistry& global();

  void attach(ContentionSite& site);
  void detach(ContentionSite& site);

  /// Sum over live sites and retained totals of destroyed sites.
  [[nodiscard]] ContentionTotals totals() const;

  /// Per-name totals (same-named sites merged), retained first, then live,
  /// in attach order — deterministic for a deterministic program.
  [[nodiscard]] std::vector<std::pair<std::string, ContentionTotals>> snapshot() const;

  [[nodiscard]] std::size_t live_sites() const;

  /// Resets live sites and drops retained totals.
  void reset();

 private:
  mutable std::mutex mu_;
  std::vector<ContentionSite*> sites_;
  std::vector<std::pair<std::string, ContentionTotals>> retained_;
};

/// Redirects ContentionSites constructed on this thread to `r` for the
/// scope's lifetime; nests. Lets a harness profile one kernel run into a
/// private registry without disturbing the global one.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(MetricsRegistry& r) noexcept;
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

}  // namespace crcw::obs
