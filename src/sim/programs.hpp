// Classic PRAM programs expressed against the model simulator.
//
// These are the textbook forms of the algorithms whose OpenMP
// implementations live in src/algorithms; tests cross-validate the two.
// Each routine owns its memory layout inside the provided simulator and
// returns the model-level answer together with the work–depth profile the
// paper's §6 analysis predicts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/simulator.hpp"

namespace crcw::sim::programs {

/// Constant-time Maximum (paper Figure 4) on the Common CRCW model:
/// N² processors compare all pairs; losers' isMax flags receive a common
/// concurrent write of 0. Depth O(1) parallel steps, work Θ(N²).
/// Returns the index of the maximum (ties: smallest index, matching Fig 4's
/// tie-break). Requires sim.mode() == kCommon (or stronger); throws
/// std::invalid_argument on empty input.
std::uint64_t max_constant_time(Simulator& sim, std::span<const word_t> values);

/// O(1) parallel OR: processor i writes 1 into the result cell iff bits[i]
/// is nonzero — the canonical example separating CRCW from CREW. Common CW
/// (every writer offers the same 1). Returns the OR.
bool parallel_or(Simulator& sim, std::span<const word_t> bits);

/// Priority-CW "first one": every processor holding a 1 writes its index;
/// min-value resolution yields the position of the first set bit.
/// Returns bits.size() when no bit is set. Requires kPriorityMinValue.
std::uint64_t first_one(Simulator& sim, std::span<const word_t> bits);

/// Pointer jumping to forest roots: parent[i] is a parent pointer (roots
/// are self-loops). O(log n) steps of parent[i] = parent[parent[i]].
/// Concurrent reads, exclusive writes — runs under CREW (and anything
/// stronger). Returns the root of every node.
std::vector<std::uint64_t> pointer_jump_roots(Simulator& sim,
                                              std::span<const std::uint64_t> parent);

/// Level-synchronous BFS on a CSR graph under Arbitrary CW: all frontier
/// edges into an unvisited vertex concurrently write their origin as the
/// parent; an arbitrary one wins. Returns (level, parent) per vertex with
/// level == -1 for unreachable vertices. Requires kArbitrary (or priority).
struct BfsResult {
  std::vector<word_t> level;
  std::vector<word_t> parent;
};
BfsResult bfs(Simulator& sim, std::span<const std::uint64_t> offsets,
              std::span<const std::uint32_t> edges, std::uint64_t source);

/// Work-efficient Blelloch scan at the model level: up-sweep + down-sweep
/// over a power-of-two-padded tree, 2·log2(n) + O(1) steps, every write
/// exclusive — runs under EREW. Returns the exclusive prefix sums.
std::vector<word_t> exclusive_scan(Simulator& sim, std::span<const word_t> values);

/// Doubly-logarithmic maximum at the model level: groups of 2, 4, 16, …
/// resolved by the constant-time kernel, O(log log n) CRCW-Common steps
/// of O(n) work each (the accelerated-cascading schedule). Returns the
/// index of the maximum (last occurrence on ties, as Fig 4).
std::uint64_t max_doubly_log(Simulator& sim, std::span<const word_t> values);

/// Awerbuch–Shiloach connected components at the model level: star
/// detection (common CWs), conditional + unconditional star hooking
/// (arbitrary CWs on the roots), pointer jumping — each phase one lock-step
/// round, exactly the structure of the OpenMP kernel in
/// src/algorithms/cc.cpp. Returns the root label per vertex. Requires
/// kArbitrary (or priority). The CSR must be symmetrised.
std::vector<std::uint64_t> connected_components(Simulator& sim,
                                                std::span<const std::uint64_t> offsets,
                                                std::span<const std::uint32_t> edges);

}  // namespace crcw::sim::programs
