// Memory is header-only; this TU anchors the library and checks the header
// compiles standalone.
#include "sim/memory.hpp"

namespace crcw::sim {

static_assert(sizeof(Memory) > 0);

}  // namespace crcw::sim
