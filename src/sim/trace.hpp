// Event records produced by the PRAM model simulator.
#pragma once

#include <cstdint>
#include <string>

namespace crcw::sim {

using addr_t = std::uint64_t;
using word_t = std::int64_t;
using proc_t = std::uint64_t;

/// One logged memory access within a step.
struct Access {
  proc_t proc = 0;
  addr_t addr = 0;
  word_t value = 0;  ///< value read (for reads) or offered (for writes)
};

/// Outcome of conflict resolution at one address at the end of a step.
struct Resolution {
  addr_t addr = 0;
  proc_t winner = 0;        ///< processor whose write committed
  word_t value = 0;         ///< committed value
  std::uint64_t contenders = 0;  ///< writes offered at this address this step
};

/// Per-step statistics, useful for asserting contention profiles in tests.
struct StepStats {
  std::uint64_t step = 0;
  std::uint64_t processors = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;          ///< writes offered
  std::uint64_t cells_written = 0;   ///< distinct addresses committed
  std::uint64_t max_contention = 0;  ///< max writes offered at one address

  friend bool operator==(const StepStats&, const StepStats&) = default;
};

}  // namespace crcw::sim
