#include "sim/programs.hpp"

#include <stdexcept>

namespace crcw::sim::programs {
namespace {

/// Serial initialisation helper: pokes a block of memory without logging.
void poke_block(Memory& mem, addr_t base, std::span<const word_t> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    mem.poke(base + i, values[i]);
  }
}

}  // namespace

std::uint64_t max_constant_time(Simulator& sim, std::span<const word_t> values) {
  if (values.empty()) throw std::invalid_argument("max of empty list");
  const std::uint64_t n = values.size();

  // Layout: [0, n) the list, [n, 2n) the isMax flags.
  const addr_t list = 0;
  const addr_t is_max = n;
  sim.memory().resize(2 * n);
  poke_block(sim.memory(), list, values);
  for (std::uint64_t i = 0; i < n; ++i) sim.memory().poke(is_max + i, 1);

  // One CRCW step, n² processors: processor (i,j) marks the loser of the
  // pair. All writes offer the same value 0 → legal Common CW.
  sim.step(n * n, [&](Simulator::Proc& p) {
    const std::uint64_t i = p.id() / n;
    const std::uint64_t j = p.id() % n;
    if (i == j) return;
    const word_t vi = p.read(list + i);
    const word_t vj = p.read(list + j);
    // Fig 4 tie-break: equal values lose to the larger index.
    const std::uint64_t loser = (vi < vj || (vi == vj && i < j)) ? i : j;
    p.write(is_max + loser, 0);
  });

  for (std::uint64_t i = 0; i < n; ++i) {
    if (sim.memory().peek(is_max + i) != 0) return i;
  }
  throw std::logic_error("constant-time max: no survivor flag");
}

bool parallel_or(Simulator& sim, std::span<const word_t> bits) {
  const std::uint64_t n = bits.size();
  const addr_t input = 0;
  const addr_t result = n;
  sim.memory().resize(n + 1);
  poke_block(sim.memory(), input, bits);
  sim.memory().poke(result, 0);

  sim.step(n, [&](Simulator::Proc& p) {
    if (p.read(input + p.id()) != 0) p.write(result, 1);
  });
  return sim.memory().peek(result) != 0;
}

std::uint64_t first_one(Simulator& sim, std::span<const word_t> bits) {
  if (sim.mode() != AccessMode::kPriorityMinValue) {
    throw std::invalid_argument("first_one requires Priority(min-value) mode");
  }
  const std::uint64_t n = bits.size();
  const addr_t input = 0;
  const addr_t result = n;
  sim.memory().resize(n + 1);
  poke_block(sim.memory(), input, bits);
  sim.memory().poke(result, static_cast<word_t>(n));

  sim.step(n, [&](Simulator::Proc& p) {
    if (p.read(input + p.id()) != 0) p.write(result, static_cast<word_t>(p.id()));
  });
  return static_cast<std::uint64_t>(sim.memory().peek(result));
}

std::vector<std::uint64_t> pointer_jump_roots(Simulator& sim,
                                              std::span<const std::uint64_t> parent) {
  const std::uint64_t n = parent.size();
  const addr_t par = 0;
  sim.memory().resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (parent[i] >= n) throw std::invalid_argument("parent pointer out of range");
    sim.memory().poke(par + i, static_cast<word_t>(parent[i]));
  }

  // ceil(log2(n)) + 1 jumps suffice for any forest of height <= n.
  std::uint64_t jumps = 1;
  for (std::uint64_t span = 1; span < n; span *= 2) ++jumps;

  for (std::uint64_t it = 0; it < jumps; ++it) {
    sim.step(n, [&](Simulator::Proc& p) {
      const auto pi = static_cast<addr_t>(p.read(par + p.id()));
      const word_t grand = p.read(par + pi);  // concurrent read (CREW-legal)
      p.write(par + p.id(), grand);           // exclusive write: own cell only
    });
  }

  std::vector<std::uint64_t> roots(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    roots[i] = static_cast<std::uint64_t>(sim.memory().peek(par + i));
  }
  return roots;
}

BfsResult bfs(Simulator& sim, std::span<const std::uint64_t> offsets,
              std::span<const std::uint32_t> edges, std::uint64_t source) {
  if (offsets.empty()) throw std::invalid_argument("CSR offsets empty");
  const std::uint64_t n = offsets.size() - 1;
  if (source >= n) throw std::invalid_argument("BFS source out of range");

  // Layout: level[n] | parent[n] | done flag.
  const addr_t level = 0;
  const addr_t parent = n;
  const addr_t done = 2 * n;
  sim.memory().resize(2 * n + 1);
  for (std::uint64_t v = 0; v < n; ++v) {
    sim.memory().poke(level + v, -1);
    sim.memory().poke(parent + v, -1);
  }
  sim.memory().poke(level + source, 0);
  sim.memory().poke(parent + source, static_cast<word_t>(source));

  for (word_t l = 0;; ++l) {
    sim.memory().poke(done, 1);
    // One step per frontier expansion: a processor per vertex scans its
    // adjacency and offers arbitrary CWs into unvisited neighbours. The
    // model charges one time step; per-processor work here is its degree.
    sim.step(n, [&](Simulator::Proc& p) {
      const std::uint64_t v = p.id();
      if (p.read(level + v) != l) return;
      for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const std::uint32_t u = edges[e];
        if (p.read(level + u) == -1) {
          p.write(level + u, l + 1);          // common value, arbitrary winner
          p.write(parent + u, static_cast<word_t>(v));  // arbitrary CW
          p.write(done, 0);
        }
      }
    });
    if (sim.memory().peek(done) != 0) break;
  }

  BfsResult out;
  out.level.resize(n);
  out.parent.resize(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    out.level[v] = sim.memory().peek(level + v);
    out.parent[v] = sim.memory().peek(parent + v);
  }
  return out;
}

std::vector<word_t> exclusive_scan(Simulator& sim, std::span<const word_t> values) {
  const std::uint64_t n = values.size();
  if (n == 0) return {};

  // Pad to a power of two; the tree lives in one array of size `size`.
  std::uint64_t size = 1;
  while (size < n) size *= 2;
  sim.memory().resize(size);
  for (std::uint64_t i = 0; i < n; ++i) sim.memory().poke(i, values[i]);
  for (std::uint64_t i = n; i < size; ++i) sim.memory().poke(i, 0);

  // Up-sweep: a[i + 2d - 1] += a[i + d - 1] for stride-2d blocks. Each
  // step's reads and writes touch disjoint cells per processor — EREW.
  for (std::uint64_t d = 1; d < size; d *= 2) {
    const std::uint64_t procs = size / (2 * d);
    sim.step(procs, [&](Simulator::Proc& p) {
      const addr_t base = p.id() * 2 * d;
      const word_t left = p.read(base + d - 1);
      const word_t right = p.read(base + 2 * d - 1);
      p.write(base + 2 * d - 1, left + right);
    });
  }

  // Clear the root, then down-sweep.
  sim.step(1, [&](Simulator::Proc& p) { p.write(size - 1, 0); });
  for (std::uint64_t d = size / 2; d >= 1; d /= 2) {
    const std::uint64_t procs = size / (2 * d);
    sim.step(procs, [&](Simulator::Proc& p) {
      const addr_t base = p.id() * 2 * d;
      const word_t left = p.read(base + d - 1);
      const word_t node = p.read(base + 2 * d - 1);
      p.write(base + d - 1, node);
      p.write(base + 2 * d - 1, left + node);
    });
    if (d == 1) break;
  }

  std::vector<word_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = sim.memory().peek(i);
  return out;
}

std::uint64_t max_doubly_log(Simulator& sim, std::span<const word_t> values) {
  if (values.empty()) throw std::invalid_argument("max of empty list");
  const std::uint64_t n = values.size();

  // Layout: [0, n) values | [n, 2n) candidate indices | [2n, 3n) isMax.
  const addr_t list = 0;
  const addr_t cand = n;
  const addr_t flags = 2 * n;
  sim.memory().resize(3 * n);
  poke_block(sim.memory(), list, values);
  for (std::uint64_t i = 0; i < n; ++i) {
    sim.memory().poke(cand + i, static_cast<word_t>(i));
    sim.memory().poke(flags + i, 1);
  }

  std::uint64_t m = n;
  std::uint64_t group = 2;
  while (m > 1) {
    const std::uint64_t g = std::min(group, m);
    const std::uint64_t groups = (m + g - 1) / g;

    // One Common-CW step: each in-group pair marks its loser.
    sim.step(groups * g * g, [&](Simulator::Proc& p) {
      const std::uint64_t grp = p.id() / (g * g);
      const std::uint64_t i = grp * g + (p.id() % (g * g)) / g;
      const std::uint64_t j = grp * g + (p.id() % g);
      if (i >= m || j >= m || i == j) return;
      const auto ci = static_cast<addr_t>(p.read(cand + i));
      const auto cj = static_cast<addr_t>(p.read(cand + j));
      const word_t vi = p.read(list + ci);
      const word_t vj = p.read(list + cj);
      const std::uint64_t loser = (vi < vj || (vi == vj && ci < cj)) ? i : j;
      p.write(flags + loser, 0);
    });

    // Gather survivors into the candidate prefix (exclusive writes), and
    // re-arm the flags for the next round.
    sim.step(groups, [&](Simulator::Proc& p) {
      const std::uint64_t grp = p.id();
      word_t winner = p.read(cand + grp * g);
      for (std::uint64_t i = grp * g; i < std::min(m, (grp + 1) * g); ++i) {
        if (p.read(flags + i) != 0) winner = p.read(cand + i);
      }
      p.write(cand + grp, winner);
    });
    sim.step(groups, [&](Simulator::Proc& p) { p.write(flags + p.id(), 1); });

    m = groups;
    if (group <= (std::uint64_t{1} << 16)) group = group * group;
  }
  return static_cast<std::uint64_t>(sim.memory().peek(cand));
}

std::vector<std::uint64_t> connected_components(Simulator& sim,
                                                std::span<const std::uint64_t> offsets,
                                                std::span<const std::uint32_t> edges) {
  if (offsets.empty()) throw std::invalid_argument("CSR offsets empty");
  const std::uint64_t n = offsets.size() - 1;
  const std::uint64_t m = edges.size();

  // Layout: P[n] | star[n] | change flag.
  const addr_t par = 0;
  const addr_t star = n;
  const addr_t change = 2 * n;
  sim.memory().resize(2 * n + 1);
  for (std::uint64_t v = 0; v < n; ++v) {
    sim.memory().poke(par + v, static_cast<word_t>(v));
    sim.memory().poke(star + v, 1);
  }

  // Edge processor id → (source vertex, edge slot). Precomputed serially;
  // the model charges the parallel steps only.
  std::vector<std::uint32_t> src(m);
  for (std::uint64_t v = 0; v < n; ++v) {
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      src[e] = static_cast<std::uint32_t>(v);
    }
  }

  const auto detect_stars = [&] {
    sim.step(n, [&](Simulator::Proc& p) { p.write(star + p.id(), 1); });
    sim.step(n, [&](Simulator::Proc& p) {
      const auto pv = static_cast<addr_t>(p.read(par + p.id()));
      const auto gp = static_cast<addr_t>(p.read(par + pv));
      if (pv != gp) {  // depth >= 2: self, parent and grandparent non-star
        p.write(star + p.id(), 0);
        p.write(star + pv, 0);
        p.write(star + gp, 0);
      }
    });
    sim.step(n, [&](Simulator::Proc& p) {
      const auto pv = static_cast<addr_t>(p.read(par + p.id()));
      p.write(star + p.id(), p.read(star + pv));
    });
  };

  // PRAM lock-step makes the hooking phases read a consistent pre-step
  // forest automatically — the snapshot the OpenMP kernel must take by
  // hand. One arbitrary winner per root per phase comes from the model's
  // conflict resolution instead of a CAS-LT tag.
  const auto hook = [&](bool conditional) {
    sim.memory().poke(change, 0);
    sim.step(m, [&](Simulator::Proc& p) {
      const std::uint64_t j = p.id();
      const std::uint32_t u = src[j];
      const std::uint32_t v = edges[j];
      if (p.read(star + u) == 0) return;
      const word_t pu = p.read(par + u);
      const word_t pv = p.read(par + v);
      const bool eligible = conditional ? pv < pu : pv != pu;
      if (eligible) {
        p.write(par + static_cast<addr_t>(pu), pv);
        p.write(change, 1);
      }
    });
    return sim.memory().peek(change) != 0;
  };

  const auto jump = [&] {
    sim.memory().poke(change, 0);
    sim.step(n, [&](Simulator::Proc& p) {
      const auto pv = static_cast<addr_t>(p.read(par + p.id()));
      const word_t gp = p.read(par + pv);
      if (gp != static_cast<word_t>(pv)) {
        p.write(par + p.id(), gp);
        p.write(change, 1);
      }
    });
    return sim.memory().peek(change) != 0;
  };

  std::uint64_t max_iters = 16;
  for (std::uint64_t s = 1; s < n; s *= 2) max_iters += 4;

  bool changed = true;
  std::uint64_t iters = 0;
  while (changed) {
    if (++iters > max_iters) {
      throw std::logic_error("sim CC: exceeded iteration bound");
    }
    changed = false;
    detect_stars();
    changed |= hook(/*conditional=*/true);
    detect_stars();
    changed |= hook(/*conditional=*/false);
    changed |= jump();
  }

  std::vector<std::uint64_t> labels(n);
  for (std::uint64_t v = 0; v < n; ++v) {
    labels[v] = static_cast<std::uint64_t>(sim.memory().peek(par + v));
  }
  return labels;
}

}  // namespace crcw::sim::programs
