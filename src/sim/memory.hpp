// sim::Memory — word-addressed shared memory with per-step access logging.
//
// Within a PRAM time step every read observes the pre-step contents; writes
// are buffered and committed at the step boundary after conflict resolution.
// Memory implements exactly that: reads go to `words_`, writes append to a
// log that the Simulator resolves and commits in `commit_step`.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/trace.hpp"

namespace crcw::sim {

class Memory {
 public:
  Memory() = default;
  explicit Memory(std::size_t words, word_t fill = 0) : words_(words, fill) {}

  [[nodiscard]] std::size_t size() const noexcept { return words_.size(); }

  /// Grows to at least `words` cells, filling new cells with `fill`.
  void resize(std::size_t words, word_t fill = 0) {
    if (words > words_.size()) words_.resize(words, fill);
  }

  /// Direct (non-logged) access for initialisation and verification.
  [[nodiscard]] word_t peek(addr_t addr) const { return words_.at(addr); }
  void poke(addr_t addr, word_t value) { words_.at(addr) = value; }

  /// Logged read: returns the pre-step value. Bounds-checked; out-of-range
  /// access is a program bug the simulator reports via std::out_of_range.
  word_t read(proc_t proc, addr_t addr) {
    const word_t v = words_.at(addr);
    read_log_.push_back({proc, addr, v});
    return v;
  }

  /// Logged write: buffered until commit, invisible to same-step reads.
  void write(proc_t proc, addr_t addr, word_t value) {
    if (addr >= words_.size()) words_.at(addr) = 0;  // throws, uniform error path
    write_log_.push_back({proc, addr, value});
  }

  [[nodiscard]] const std::vector<Access>& read_log() const noexcept { return read_log_; }
  [[nodiscard]] const std::vector<Access>& write_log() const noexcept { return write_log_; }

  /// Applies resolved writes and clears both logs. The Simulator decides the
  /// winners; Memory just commits them.
  void commit(const std::vector<Resolution>& resolutions) {
    for (const auto& r : resolutions) words_.at(r.addr) = r.value;
    clear_logs();
  }

  void clear_logs() noexcept {
    read_log_.clear();
    write_log_.clear();
  }

  /// Snapshot of all words (for test assertions).
  [[nodiscard]] const std::vector<word_t>& contents() const noexcept { return words_; }

 private:
  std::vector<word_t> words_;
  std::vector<Access> read_log_;
  std::vector<Access> write_log_;
};

}  // namespace crcw::sim
