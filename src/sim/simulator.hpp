// sim::Simulator — a deterministic executable semantics for PRAM.
//
// The OpenMP kernels in src/algorithms are *implementations*; this simulator
// is the *model*. It executes a step's virtual processors sequentially,
// logging every access, then resolves write conflicts at the step boundary
// under the selected memory-access mode:
//
//   EREW / CREW        exclusivity violations throw ModelViolation — "if a
//                      concurrent read/write is attempted in an exclusive
//                      mode, the algorithm fails" (§2).
//   Common             all offered values must be equal, else it throws.
//   Arbitrary          a seeded-random offered write commits (deterministic
//                      per seed, adversarial across seeds).
//   Priority           minimum rank or minimum value wins (§2).
//
// Tests run each algorithm on this engine and on the OpenMP machine and
// require identical observable results; property suites re-run Arbitrary
// resolutions across seeds to check algorithm correctness does not depend
// on *which* write wins — the defining obligation of arbitrary CW.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "pram/work_depth.hpp"
#include "sim/memory.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace crcw::sim {

enum class AccessMode {
  kEREW,
  kCREW,
  kCommon,
  kArbitrary,
  kPriorityMinRank,
  kPriorityMinValue,
};

[[nodiscard]] constexpr std::string_view to_string(AccessMode m) noexcept {
  switch (m) {
    case AccessMode::kEREW: return "EREW";
    case AccessMode::kCREW: return "CREW";
    case AccessMode::kCommon: return "CRCW-Common";
    case AccessMode::kArbitrary: return "CRCW-Arbitrary";
    case AccessMode::kPriorityMinRank: return "CRCW-Priority(min-rank)";
    case AccessMode::kPriorityMinValue: return "CRCW-Priority(min-value)";
  }
  return "unknown";
}

/// Thrown when a program violates the selected memory-access mode.
class ModelViolation : public std::runtime_error {
 public:
  enum class Kind { kConcurrentRead, kConcurrentWrite, kCommonMismatch };

  ModelViolation(Kind kind, std::uint64_t step, addr_t addr, std::string what)
      : std::runtime_error(std::move(what)), kind_(kind), step_(step), addr_(addr) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }
  [[nodiscard]] addr_t addr() const noexcept { return addr_; }

 private:
  Kind kind_;
  std::uint64_t step_;
  addr_t addr_;
};

class Simulator {
 public:
  /// Handle through which a virtual processor touches shared memory.
  class Proc {
   public:
    [[nodiscard]] proc_t id() const noexcept { return id_; }

    /// Reads pre-step memory (PRAM: reads precede writes within a step).
    word_t read(addr_t addr) { return mem_->read(id_, addr); }

    /// Offers a write, committed at the step boundary if it wins.
    void write(addr_t addr, word_t value) { mem_->write(id_, addr, value); }

   private:
    friend class Simulator;
    Proc(Memory* mem, proc_t id) : mem_(mem), id_(id) {}
    Memory* mem_;
    proc_t id_;
  };

  explicit Simulator(AccessMode mode, std::size_t words, std::uint64_t seed = 42)
      : mode_(mode), mem_(words), rng_(seed) {}

  [[nodiscard]] AccessMode mode() const noexcept { return mode_; }
  [[nodiscard]] Memory& memory() noexcept { return mem_; }
  [[nodiscard]] const Memory& memory() const noexcept { return mem_; }
  [[nodiscard]] const pram::WorkDepth& counters() const noexcept { return counters_; }
  [[nodiscard]] const std::vector<StepStats>& history() const noexcept { return history_; }

  /// Executes one PRAM time step with `n` virtual processors; body receives
  /// a Proc handle. Resolves and commits writes before returning.
  template <typename Body>
  StepStats step(proc_t n, Body&& body) {
    for (proc_t i = 0; i < n; ++i) {
      Proc p(&mem_, i);
      body(p);
    }
    return finish_step(n);
  }

  /// Resets counters, history and the RNG stream (memory is left as-is).
  void reset_accounting(std::uint64_t seed = 42) {
    counters_.reset();
    history_.clear();
    rng_ = util::Xoshiro256(seed);
  }

  /// What a trace stream receives per step.
  struct TraceOptions {
    bool accesses = false;     ///< every logged read/write
    bool resolutions = true;   ///< per-cell conflict outcomes
    bool summary = true;       ///< one StepStats line per step
  };

  /// Streams a human-readable execution trace (teaching / debugging).
  /// Pass nullptr to stop tracing. The stream must outlive the simulator's
  /// tracing use; tracing costs a pass over the logs per step.
  void set_trace(std::ostream* os, TraceOptions options) {
    trace_ = os;
    trace_options_ = options;
  }

  /// Default options: step summaries + per-cell resolutions.
  void set_trace(std::ostream* os) { set_trace(os, TraceOptions{}); }

 private:
  /// Resolves the logged accesses of the step just executed.
  StepStats finish_step(proc_t n);

  void emit_trace(const StepStats& stats, const std::vector<Resolution>& resolved);

  AccessMode mode_;
  Memory mem_;
  util::Xoshiro256 rng_;
  pram::WorkDepth counters_{};
  std::vector<StepStats> history_;
  std::ostream* trace_ = nullptr;
  TraceOptions trace_options_{};
};

}  // namespace crcw::sim
