#include "sim/simulator.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

namespace crcw::sim {
namespace {

std::string describe(std::string_view what, std::uint64_t step, addr_t addr) {
  std::ostringstream ss;
  ss << what << " at address " << addr << " in step " << step;
  return ss.str();
}

}  // namespace

StepStats Simulator::finish_step(proc_t n) {
  const std::uint64_t step_id = counters_.depth + 1;

  StepStats stats;
  stats.step = step_id;
  stats.processors = n;
  stats.reads = mem_.read_log().size();
  stats.writes = mem_.write_log().size();

  // Exclusive-read check: EREW forbids two reads of one cell in one step.
  if (mode_ == AccessMode::kEREW) {
    std::map<addr_t, proc_t> readers;
    for (const auto& a : mem_.read_log()) {
      const auto [it, inserted] = readers.emplace(a.addr, a.proc);
      if (!inserted && it->second != a.proc) {
        throw ModelViolation(ModelViolation::Kind::kConcurrentRead, step_id, a.addr,
                             describe("concurrent read under EREW", step_id, a.addr));
      }
    }
  }

  // Group offered writes by address (stable: log order preserved per cell).
  std::map<addr_t, std::vector<Access>> by_addr;
  for (const auto& w : mem_.write_log()) by_addr[w.addr].push_back(w);

  const bool exclusive_write = mode_ == AccessMode::kEREW || mode_ == AccessMode::kCREW;

  std::vector<Resolution> resolved;
  resolved.reserve(by_addr.size());
  for (auto& [addr, offers] : by_addr) {
    stats.max_contention = std::max<std::uint64_t>(stats.max_contention, offers.size());

    if (exclusive_write && offers.size() > 1) {
      throw ModelViolation(
          ModelViolation::Kind::kConcurrentWrite, step_id, addr,
          describe("concurrent write under exclusive-write mode", step_id, addr));
    }

    const Access* winner = &offers.front();
    switch (mode_) {
      case AccessMode::kEREW:
      case AccessMode::kCREW:
        winner = &offers.front();
        break;
      case AccessMode::kCommon: {
        for (const auto& o : offers) {
          if (o.value != offers.front().value) {
            throw ModelViolation(
                ModelViolation::Kind::kCommonMismatch, step_id, addr,
                describe("common CW with differing values", step_id, addr));
          }
        }
        winner = &offers.front();
        break;
      }
      case AccessMode::kArbitrary:
        // Deterministic per seed; varying the seed varies the adversary.
        winner = &offers[rng_.bounded(offers.size())];
        break;
      case AccessMode::kPriorityMinRank:
        winner = &*std::min_element(offers.begin(), offers.end(),
                                    [](const Access& a, const Access& b) {
                                      return a.proc < b.proc;
                                    });
        break;
      case AccessMode::kPriorityMinValue:
        winner = &*std::min_element(offers.begin(), offers.end(),
                                    [](const Access& a, const Access& b) {
                                      if (a.value != b.value) return a.value < b.value;
                                      return a.proc < b.proc;
                                    });
        break;
    }

    resolved.push_back({addr, winner->proc, winner->value, offers.size()});
  }

  stats.cells_written = resolved.size();
  if (trace_ != nullptr) emit_trace(stats, resolved);
  mem_.commit(resolved);

  counters_.add_step(n);
  history_.push_back(stats);
  return stats;
}

void Simulator::emit_trace(const StepStats& stats, const std::vector<Resolution>& resolved) {
  std::ostream& os = *trace_;
  if (trace_options_.summary) {
    os << "step " << stats.step << " [" << to_string(mode_) << "]: " << stats.processors
       << " procs, " << stats.reads << " reads, " << stats.writes << " writes into "
       << stats.cells_written << " cells (max contention " << stats.max_contention
       << ")\n";
  }
  if (trace_options_.accesses) {
    for (const auto& r : mem_.read_log()) {
      os << "  P" << r.proc << " reads  [" << r.addr << "] -> " << r.value << '\n';
    }
    for (const auto& w : mem_.write_log()) {
      os << "  P" << w.proc << " offers [" << w.addr << "] <- " << w.value << '\n';
    }
  }
  if (trace_options_.resolutions) {
    for (const auto& r : resolved) {
      os << "  [" << r.addr << "] <- " << r.value << " (P" << r.winner << " of "
         << r.contenders << " contender" << (r.contenders == 1 ? "" : "s") << ")\n";
    }
  }
}

}  // namespace crcw::sim
