// Work–depth accounting (paper §6).
//
// A PRAM algorithm is characterised by its total work W(N) and its depth
// D(N); Brent's theorem bounds execution time on p processors by
// T = D + W/p. The runtime and the simulator both record these quantities
// so tests can assert the asymptotic claims of §6 (e.g. the constant-time
// Maximum has depth O(1) and work Θ(N²); the gatekeeper scheme adds Θ(N)
// reset work per round that CAS-LT does not pay).
#pragma once

#include <cstdint>

namespace crcw::pram {

struct WorkDepth {
  std::uint64_t work = 0;   ///< total operations across all steps
  std::uint64_t depth = 0;  ///< number of lock-step time steps

  void add_step(std::uint64_t step_work) noexcept {
    work += step_work;
    depth += 1;
  }

  void reset() noexcept { *this = WorkDepth{}; }

  friend bool operator==(const WorkDepth&, const WorkDepth&) = default;
};

/// Brent's scheduling bound: time on p processors (in abstract step units).
[[nodiscard]] constexpr double brent_time(const WorkDepth& wd, std::uint64_t p) noexcept {
  if (p == 0) p = 1;
  return static_cast<double>(wd.depth) +
         static_cast<double>(wd.work) / static_cast<double>(p);
}

}  // namespace crcw::pram
