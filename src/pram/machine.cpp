// Machine is header-only (its steps are templates); this translation unit
// anchors the library and verifies the header is self-contained.
#include "pram/machine.hpp"

namespace crcw::pram {

static_assert(sizeof(Machine) > 0);

}  // namespace crcw::pram
