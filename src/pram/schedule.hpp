// Work-sharing schedules for mapping P_PRAM virtual processors onto P_Phys
// threads (Brent scheduling, paper §6).
#pragma once

#include <string_view>

namespace crcw::pram {

enum class Schedule {
  kStatic,   ///< contiguous blocks — best locality, default
  kDynamic,  ///< chunked work stealing — for irregular per-processor work
  kGuided,   ///< decreasing chunks — compromise for skewed work
};

[[nodiscard]] constexpr std::string_view to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
  }
  return "unknown";
}

}  // namespace crcw::pram
