// pram::Machine — lock-step PRAM step execution on OpenMP threads.
//
// The bridge identified by Ghanim et al. (§4, building on the ICE result
// [12]): a PRAM algorithm's rounds can be executed by work-sharing each
// round's P_PRAM virtual processors over P_Phys OS threads, with a
// synchronisation point between rounds standing in for PRAM's lock-step
// semantics. Machine packages that discipline:
//
//   * `step(n, body)` runs body(i) for the n virtual processors of one PRAM
//     time step under `#pragma omp parallel for` and ends at the implicit
//     barrier — the synchronisation point the paper requires before any
//     dependent read of a concurrent write.
//   * the machine's round counter increments once per step, giving CAS-LT
//     its monotone round ids "for free" (§5: the loop iteration can serve
//     as the round).
//   * work–depth counters accumulate W and D for Brent-bound checks.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/round_tag.hpp"
#include "pram/schedule.hpp"
#include "pram/work_depth.hpp"

#include <omp.h>

namespace crcw::pram {

struct MachineConfig {
  /// OS threads (P_Phys) to run steps on; 0 keeps the ambient OpenMP value.
  int threads = 0;
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for dynamic/guided schedules; 0 lets OpenMP choose.
  int chunk = 0;
};

class Machine {
 public:
  using vproc_t = std::uint64_t;

  Machine() = default;
  explicit Machine(MachineConfig config) : config_(config) {}

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }

  /// Round id of the step currently executing (or of the last finished step
  /// when called between steps). Feed this to RoundTag / WriteArbiter.
  [[nodiscard]] round_t round() const noexcept { return round_; }

  [[nodiscard]] const WorkDepth& counters() const noexcept { return counters_; }

  /// Threads that will execute the next step.
  [[nodiscard]] int physical_processors() const noexcept {
    return config_.threads > 0 ? config_.threads : omp_get_max_threads();
  }

  /// Executes one PRAM time step: body(i) for i in [0, n), all iterations
  /// conceptually concurrent, with a barrier before this call returns.
  /// Returns the round id that the step ran under.
  ///
  /// Reads inside the body observe pre-step memory only if the algorithm
  /// respects PRAM discipline (no read of a location written in the same
  /// step except through a concurrent-write cell it owns); the library
  /// cannot enforce that, but the simulator in src/sim can check it.
  template <typename Body>
    requires std::is_invocable_v<Body, vproc_t>
  round_t step(vproc_t n, Body&& body) {
    const round_t r = ++round_;
    counters_.add_step(n);
    run_parallel(n, body);
    return r;
  }

  /// A step whose body also receives the round id — convenient when the
  /// body is a lambda that cannot capture the machine.
  template <typename Body>
    requires(std::is_invocable_v<Body, vproc_t, round_t> &&
             !std::is_invocable_v<Body, vproc_t>)
  round_t step(vproc_t n, Body&& body) {
    const round_t r = ++round_;
    counters_.add_step(n);
    auto wrapped = [&](vproc_t i) { body(i, r); };
    run_parallel(n, wrapped);
    return r;
  }

  /// Serial step: runs once on the calling thread but still advances the
  /// round and depth — for the O(1)-work scalar steps PRAM algorithms
  /// interleave between parallel rounds.
  template <typename Body>
    requires std::is_invocable_v<Body>
  round_t serial_step(Body&& body) {
    const round_t r = ++round_;
    counters_.add_step(1);
    body();
    return r;
  }

  /// Resets round and counters (between benchmark repetitions).
  void reset() noexcept {
    round_ = kInitialRound;
    counters_.reset();
  }

 private:
  template <typename Body>
  void run_parallel(vproc_t n, Body& body) {
    const auto count = static_cast<std::int64_t>(n);
    const int threads = physical_processors();
    const int chunk = config_.chunk;
    switch (config_.schedule) {
      case Schedule::kStatic:
#pragma omp parallel for num_threads(threads) schedule(static)
        for (std::int64_t i = 0; i < count; ++i) body(static_cast<vproc_t>(i));
        break;
      case Schedule::kDynamic:
        if (chunk > 0) {
#pragma omp parallel for num_threads(threads) schedule(dynamic, chunk)
          for (std::int64_t i = 0; i < count; ++i) body(static_cast<vproc_t>(i));
        } else {
#pragma omp parallel for num_threads(threads) schedule(dynamic)
          for (std::int64_t i = 0; i < count; ++i) body(static_cast<vproc_t>(i));
        }
        break;
      case Schedule::kGuided:
#pragma omp parallel for num_threads(threads) schedule(guided)
        for (std::int64_t i = 0; i < count; ++i) body(static_cast<vproc_t>(i));
        break;
    }
  }

  MachineConfig config_{};
  round_t round_ = kInitialRound;
  WorkDepth counters_{};
};

/// One-shot helper for code that does not need a persistent machine.
template <typename Body>
void parallel_for(std::uint64_t n, Body&& body, int threads = 0) {
  const auto count = static_cast<std::int64_t>(n);
  if (threads > 0) {
#pragma omp parallel for num_threads(threads) schedule(static)
    for (std::int64_t i = 0; i < count; ++i) body(static_cast<std::uint64_t>(i));
  } else {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < count; ++i) body(static_cast<std::uint64_t>(i));
  }
}

}  // namespace crcw::pram
