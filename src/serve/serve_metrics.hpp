// ServeMetrics — the obs/ face of the serving layer.
//
// Two kinds of signal, matching the ISSUE's obs integration ask:
//   * latency Histograms (always on — recording is one relaxed increment):
//     enqueue→admit (queueing delay the admission policy controls),
//     admit→commit (round execution time), and the client-visible sum
//     enqueue→commit whose p99 the bench reports;
//   * an optional `serve` ContentionSite (BatchConfig::counters) mapping
//     the engine onto the shared counter vocabulary:
//       attempts   ops admitted into rounds
//       wins       write ops that won their (key, round) arbitration
//       refills    batches closed by the scheduler
//       rounds     CRCW rounds executed (one flush_round per round)
//     `atomics` is not counted at serve granularity — the table's own
//     telemetry (HashConfig::telemetry) counts the real CASes; a profile
//     pass merges both through one ScopedRegistry.
//
// The sharded backend adds a routing surface: relaxed local/foreign op
// counters (did a drained op land in a lane of its key's own shard?) and
// an ops-per-(shard, round) histogram, so shard-local batch placement is
// measurable without per-op cost — one bulk update per drain, one record
// per shard per round, all from under the pump lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "obs/metrics.hpp"

namespace crcw::serve {

class ServeMetrics {
 public:
  explicit ServeMetrics(bool counters) {
    if (counters) site_ = std::make_unique<obs::ContentionSite>("serve");
  }

  // -- latency (hot path of the pump; any thread) ---------------------------
  void record_admit(std::uint64_t enqueue_ns, std::uint64_t admit_ns) noexcept {
    enqueue_to_admit_.record(admit_ns - enqueue_ns);
  }
  void record_commit(std::uint64_t enqueue_ns, std::uint64_t admit_ns,
                     std::uint64_t commit_ns) noexcept {
    admit_to_commit_.record(commit_ns - admit_ns);
    enqueue_to_commit_.record(commit_ns - enqueue_ns);
  }

  // -- counters (no-ops when the site is off) -------------------------------
  void ops_admitted(std::uint64_t k) noexcept {
    if (site_ && k > 0) site_->add_attempts(k);
  }
  void write_wins(std::uint64_t k) noexcept {
    if (site_ && k > 0) site_->add_wins(k);
  }
  void batch_closed() noexcept {
    if (site_) site_->add_refills(1);
  }
  void flush_round() noexcept {
    if (site_) site_->flush_round();
  }

  // -- routing (sharded backends; bulk updates from under the pump lock) ----
  void routed(std::uint64_t local, std::uint64_t foreign) noexcept {
    if (local != 0) route_local_.fetch_add(local, std::memory_order_relaxed);
    if (foreign != 0) route_foreign_.fetch_add(foreign, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t route_local() const noexcept {
    return route_local_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t route_foreign() const noexcept {
    return route_foreign_.load(std::memory_order_relaxed);
  }
  /// Fraction of routed ops that drained shard-local (1.0 before any
  /// routing — a single-table engine never routes).
  [[nodiscard]] double routing_hit_rate() const noexcept {
    const std::uint64_t l = route_local();
    const std::uint64_t f = route_foreign();
    return l + f == 0 ? 1.0 : static_cast<double>(l) / static_cast<double>(l + f);
  }
  /// One sample per (shard, round) that executed ops: how many it ran —
  /// the shard-balance histogram (a skewed key space shows up as a wide
  /// spread here while the hit rate stays at 1.0).
  void record_shard_round_ops(std::uint64_t ops) noexcept { ops_per_shard_round_.record(ops); }
  [[nodiscard]] const obs::Histogram& ops_per_shard_round() const noexcept {
    return ops_per_shard_round_;
  }

  // -- reporting ------------------------------------------------------------
  [[nodiscard]] const obs::Histogram& enqueue_to_admit() const noexcept {
    return enqueue_to_admit_;
  }
  [[nodiscard]] const obs::Histogram& admit_to_commit() const noexcept {
    return admit_to_commit_;
  }
  [[nodiscard]] const obs::Histogram& enqueue_to_commit() const noexcept {
    return enqueue_to_commit_;
  }

  /// Upper bound (bucket edge) of the p99 enqueue→commit latency in ns —
  /// the SLO number bench/ext_serve.cpp reports; 0 when no op completed.
  [[nodiscard]] std::uint64_t p99_enqueue_to_commit_ns() const noexcept {
    return enqueue_to_commit_.quantile_upper_bound(0.99);
  }
  [[nodiscard]] std::uint64_t p99_enqueue_to_admit_ns() const noexcept {
    return enqueue_to_admit_.quantile_upper_bound(0.99);
  }
  [[nodiscard]] std::uint64_t p99_admit_to_commit_ns() const noexcept {
    return admit_to_commit_.quantile_upper_bound(0.99);
  }

  [[nodiscard]] bool counters_enabled() const noexcept { return site_ != nullptr; }
  [[nodiscard]] obs::ContentionSite* site() noexcept { return site_.get(); }

  /// Clears the latency histograms (e.g. between bench repetitions). Not
  /// safe concurrently with a running pump.
  void reset_latency() noexcept {
    enqueue_to_admit_.reset();
    admit_to_commit_.reset();
    enqueue_to_commit_.reset();
  }

 private:
  obs::Histogram enqueue_to_admit_;
  obs::Histogram admit_to_commit_;
  obs::Histogram enqueue_to_commit_;
  obs::Histogram ops_per_shard_round_;
  std::atomic<std::uint64_t> route_local_{0};
  std::atomic<std::uint64_t> route_foreign_{0};
  std::unique_ptr<obs::ContentionSite> site_;
};

}  // namespace crcw::serve
