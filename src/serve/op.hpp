// The request vocabulary of src/serve: client operations, per-op results,
// and the completion slot a client waits on.
//
// The serving layer maps client traffic onto the paper's round structure:
// every operation admitted into a batch executes inside one CRCW round, so
// N concurrent upserts of the same key collapse to exactly one committed
// write (the arbitrary-CW winner) and every loser still observes the
// committed value wait-free — the idempotent-write semantics a
// high-fan-in upsert service needs.
#pragma once

#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <thread>

#include "core/round_tag.hpp"
#include "ds/hash_common.hpp"

namespace crcw::stream {
class StreamScheduler;
}  // namespace crcw::stream

namespace crcw::serve {

/// Monotonic wall clock in nanoseconds — the timestamp base of the
/// enqueue→admit→commit latency histograms (see serve_metrics.hpp).
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// What a client asks the engine to do with one key.
///
/// The first three are the KV vocabulary every backend serves. The stream
/// kinds (kEdgeInsert and later) are served only by the streaming backend
/// (stream::StreamScheduler) — KV backends reject them at admission, the
/// same wait-free way they reject the sentinel key. Stream ops reuse the
/// same 25-byte wire frame: edge ops carry the canonical packed edge
/// (ds::pack_edge) in `key`; kSameComponent carries the two vertices in
/// `key`/`value`; kComponentSize carries its vertex in `key`.
enum class OpKind : std::uint8_t {
  kUpsert,  ///< write `value` under `key`; one winner per (key, round)
  kLookup,  ///< committed read: sees every write of rounds < its own round
  kErase,   ///< logical tombstone; arbitrates against same-round upserts
  kEdgeInsert,     ///< stream: insert edge pack_edge(u,v) with weight `value`
  kEdgeErase,      ///< stream: erase edge pack_edge(u,v)
  kSameComponent,  ///< stream query: are vertices `key` and `value` connected?
  kComponentSize,  ///< stream query: |component of vertex `key`|
  kSnapshotCreate,  ///< snap: checkpoint the committed state to disk
  kSnapshotScan,    ///< snap: consistent-scan digest at a fresh cut
};

/// Stream-vocabulary ops — the kinds only stream::StreamScheduler executes.
[[nodiscard]] constexpr bool is_stream_op(OpKind k) noexcept {
  return k >= OpKind::kEdgeInsert && k <= OpKind::kComponentSize;
}

/// Snapshot-vocabulary ops. These never enter a round: the wire server
/// answers them on the connection's handler thread (src/snap holds the
/// cut while batches keep committing), and the schedulers reject them at
/// admission like any other foreign vocabulary.
[[nodiscard]] constexpr bool is_snapshot_op(OpKind k) noexcept {
  return k == OpKind::kSnapshotCreate || k == OpKind::kSnapshotScan;
}

/// Read-only kinds: executed in a round's phase A, before any same-round
/// write — the kinds read-your-writes clients re-issue when stale.
[[nodiscard]] constexpr bool is_read_op(OpKind k) noexcept {
  return k == OpKind::kLookup || k == OpKind::kSameComponent ||
         k == OpKind::kComponentSize;
}

/// One client operation. Keys live in the ds/ tables' uint64 key space
/// (string keys go through ds::string_key); the all-ones key is reserved.
struct Op {
  OpKind kind = OpKind::kLookup;
  std::uint64_t key = 0;
  std::uint64_t value = 0;

  [[nodiscard]] static constexpr Op upsert(std::uint64_t key, std::uint64_t value) noexcept {
    return {OpKind::kUpsert, key, value};
  }
  [[nodiscard]] static constexpr Op lookup(std::uint64_t key) noexcept {
    return {OpKind::kLookup, key, 0};
  }
  [[nodiscard]] static constexpr Op erase(std::uint64_t key) noexcept {
    return {OpKind::kErase, key, 0};
  }
  [[nodiscard]] static constexpr Op edge_insert(std::uint32_t u, std::uint32_t v,
                                                std::uint64_t weight = 1) noexcept {
    return {OpKind::kEdgeInsert, ds::pack_edge(u, v), weight};
  }
  [[nodiscard]] static constexpr Op edge_erase(std::uint32_t u, std::uint32_t v) noexcept {
    return {OpKind::kEdgeErase, ds::pack_edge(u, v), 0};
  }
  [[nodiscard]] static constexpr Op same_component(std::uint32_t u, std::uint32_t v) noexcept {
    return {OpKind::kSameComponent, u, v};
  }
  [[nodiscard]] static constexpr Op component_size(std::uint32_t v) noexcept {
    return {OpKind::kComponentSize, v, 0};
  }
  [[nodiscard]] static constexpr Op snapshot_create() noexcept {
    return {OpKind::kSnapshotCreate, 0, 0};
  }
  [[nodiscard]] static constexpr Op snapshot_scan() noexcept {
    return {OpKind::kSnapshotScan, 0, 0};
  }
};

/// Per-op outcome.
///   * kUpsert/kErase: `won` is true iff this op was the round's arbitration
///     winner for its key; `value` is the value the round *committed* for
///     the key (the winner's value — losers observe it, paper §5).
///   * kLookup: `won` is true iff the key was live before this op's round;
///     `value` is that committed value (0 on a miss).
struct Result {
  std::uint64_t value = 0;
  bool won = false;
  round_t round = 0;  ///< the round this op executed in
};

class BatchScheduler;
class ShardedScheduler;

/// Completion slot for one in-flight op. The client owns the storage and
/// must keep it pinned (neither moved nor destroyed) from submit until
/// ready(); the engine publishes the Result with a release store that the
/// client's ready() acquires, so reading result() after ready() is
/// race-free even across raw threads.
class OpFuture {
 public:
  OpFuture() noexcept = default;
  OpFuture(const OpFuture&) = delete;
  OpFuture& operator=(const OpFuture&) = delete;

  [[nodiscard]] bool ready() const noexcept {
    return done_.load(std::memory_order_acquire);
  }

  /// Valid only once ready() returned true (or after the publishing pump
  /// was joined).
  [[nodiscard]] const Result& result() const noexcept {
    assert(ready() && "OpFuture::result before completion");
    return result_;
  }

  /// Re-arms the slot for reuse. The previous op must have completed.
  void reset() noexcept { done_.store(false, std::memory_order_relaxed); }

 private:
  // Only round executors may publish (the engine side of the contract).
  friend class BatchScheduler;
  friend class ShardedScheduler;
  friend class crcw::stream::StreamScheduler;

  void publish(const Result& r) noexcept {
    result_ = r;
    done_.store(true, std::memory_order_release);
  }

  Result result_;
  std::atomic<bool> done_{false};
};

/// Bounded-spin-then-yield waiter — the admission/backpressure move from
/// "Lightweight Contention Management for Efficient Compare-and-Swap
/// Operations" (PAPERS.md) applied at the serving edge: a blocked client
/// burns a few speculative spins (cheap when the queue drains fast), then
/// yields the core so the pump can actually run — essential when clients
/// oversubscribe the machine.
class BackoffState {
 public:
  explicit BackoffState(int spins) noexcept : spins_(spins) {}

  void pause() noexcept {
    if (count_ < spins_) {
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  int spins_;
  int count_ = 0;
};

}  // namespace crcw::serve
