// ServeConfig — the one nested configuration object of src/serve.
//
// Before the sharded-service redesign the serve layer grew a passthrough
// sprawl: BatchConfig carried table knobs (expected_keys, max_load,
// reclaim_ratio, table_telemetry) that it only forwarded into
// ds::HashConfig, and a wire front end would have added a third pile.
// ServeConfig groups the knobs by the subsystem that consumes them:
//
//   ServeConfig{
//     .batch  = admission + round execution (BatchConfig),
//     .table  = the backing ConcurrentHashMap shards (TableConfig),
//     .shards = key-shard routing (ShardConfig; count 1 = single table),
//     .wire   = the TCP front end (WireConfig),
//   }
//
// `validated()` normalises (shard count to the next power of two) and
// throws std::invalid_argument on nonsense, so every engine constructor
// can assume a sane config; the fluent with_* builders keep one-liner
// call sites readable without aggregate-initialising four levels deep.
#pragma once

#include <omp.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include "ds/hash_common.hpp"

namespace crcw::serve {

/// Admission-policy and round-execution knobs for one serving engine.
struct BatchConfig {
  /// Size trigger: close a batch once this many ops are pending; also the
  /// per-round cap (a bigger drain is sliced into several rounds; the
  /// sharded backend applies the cap per shard).
  std::uint64_t max_batch = 4096;
  /// Deadline trigger: close a non-empty batch once its oldest op has
  /// waited this long, so a trickle of traffic still commits promptly.
  std::uint64_t max_wait_us = 250;
  /// OpenMP team size for round execution; 0 = omp_get_max_threads().
  /// 1 = strictly serial (no OpenMP region) — required under the
  /// raw-thread TSan stress tier.
  int exec_threads = 0;
  /// Admission lanes; 0 = hardware_concurrency clamped to [1, 16]. The
  /// sharded backend rounds this up to a multiple of the shard count so
  /// every shard owns the same number of lanes.
  int lanes = 0;
  /// Per-lane backpressure watermark; 0 = derived (max_batch, min 64).
  std::uint64_t lane_backlog = 0;
  /// Speculative spins before a blocked client/pump yields the core.
  int backoff_spins = 32;
  /// Latency-histogram sampling: every 2^shift-th op per client gets
  /// timestamped and recorded (0 = every op). High-throughput deployments
  /// set 4–8 to keep the two clock reads per op off the hot path; the
  /// p99s are then estimates over the sampled subset.
  int latency_sample_shift = 0;
  /// Attach the `serve` ContentionSite — and, on the sharded backend, one
  /// `serve-shard-<i>` site per shard (profile passes only).
  bool counters = false;

  [[nodiscard]] int resolved_threads() const noexcept {
    return exec_threads > 0 ? exec_threads : omp_get_max_threads();
  }
  [[nodiscard]] int resolved_lanes() const noexcept {
    if (lanes > 0) return lanes;
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<int>(hc < 1 ? 1 : (hc > 16 ? 16 : hc));
  }
  [[nodiscard]] std::uint64_t resolved_lane_backlog() const noexcept {
    if (lane_backlog > 0) return lane_backlog;
    return max_batch < 64 ? 64 : max_batch;
  }
  [[nodiscard]] std::uint64_t sample_mask() const noexcept {
    return latency_sample_shift <= 0
               ? 0
               : (std::uint64_t{1} << (latency_sample_shift > 63 ? 63
                                                                 : latency_sample_shift)) -
                     1;
  }
};

/// Knobs of the backing table(s). With shards > 1 every shard gets these
/// same knobs; expected_keys is the TOTAL capacity, split across shards.
struct TableConfig {
  /// Initial capacity (keys, not buckets).
  std::uint64_t expected_keys = 1024;
  /// Load factor of the backing table (the ext_hash storm sweep's knob).
  double max_load = 0.5;
  /// Forwarded to HashConfig::reclaim_ratio: once tombstones reach this
  /// fraction of a shard, the pump rebuilds that shard (dropping
  /// tombstones and shrinking toward its live count) at the next batch
  /// boundary — with shards > 1 each shard decides independently.
  double reclaim_ratio = 0.25;
  /// Forwarded to HashConfig::reclaim_probe_p99: telemetry-driven reclaim
  /// trigger — the pump also rebuilds a shard once its observed
  /// probe-length p99 reaches this many buckets (0 = off; needs
  /// `telemetry`, since the signal comes from the table's own site).
  std::uint64_t reclaim_probe_p99 = 0;
  /// Forwarded to HashConfig::reclaim_fp_rate: reclaim once H2 false
  /// positives exceed this fraction of group loads (0.0 = off).
  double reclaim_fp_rate = 0.0;
  /// Forward HashConfig::telemetry to the backing table(s).
  bool telemetry = false;

  /// The per-table HashConfig this resolves to; `site_name` distinguishes
  /// shards ("serve-table", "serve-table-s1", …).
  [[nodiscard]] ds::HashConfig hash_config(std::string site_name) const {
    return ds::HashConfig{.max_load = max_load,
                          .reclaim_ratio = reclaim_ratio,
                          .reclaim_probe_p99 = reclaim_probe_p99,
                          .reclaim_fp_rate = reclaim_fp_rate,
                          .telemetry = telemetry,
                          .site_name = std::move(site_name)};
  }
};

/// Key-shard routing. One ConcurrentHashMap per shard; shard selection
/// takes the HIGH bits of ds::mix64(key) (bucket probing takes the low
/// bits, so shard choice and in-shard placement stay decorrelated).
struct ShardConfig {
  /// Shard count; validated() rounds up to a power of two. 1 = the
  /// single-table BatchScheduler shape.
  int count = 1;
};

/// The TCP front end (serve_server.hpp). Only the server reads these.
struct WireConfig {
  /// Listen port; 0 = ephemeral (the bound port is reported by the
  /// server — the tests' and bench's loopback shape).
  std::uint16_t port = 0;
  /// Accept also non-loopback clients. Off by default: benches and tests
  /// talk over 127.0.0.1, and an all-interfaces listener should be an
  /// explicit deployment decision.
  bool bind_any = false;
  /// listen(2) backlog.
  int listen_backlog = 64;
  /// Decoder hard cap: a length prefix beyond this kills the connection
  /// (garbage framing defence; both sides use fixed-size frames far
  /// below it).
  std::uint32_t max_frame_bytes = 64 * 1024;
  /// Requests a connection handler admits per submit burst before it
  /// turns around and writes the replies.
  int io_batch = 256;
};

/// The streaming backend (src/stream): the vertex universe of the dynamic
/// graph and the sizing of its edge table. Only stream::StreamScheduler
/// reads these; KV backends ignore them.
struct StreamConfig {
  /// Vertex-id universe [0, vertices); edge ops and connectivity queries
  /// naming vertices outside it (or self-loops) are rejected at admission
  /// the same wait-free way the KV backends reject the sentinel key.
  std::uint32_t vertices = 1 << 16;
  /// Expected live edges — initial capacity of the shared edge table
  /// (0 = fall back to TableConfig::expected_keys).
  std::uint64_t expected_edges = 0;
};

/// The snapshot subsystem (src/snap). Only the wire server reads these:
/// a kSnapshotCreate request checkpoints into `dir`; with `dir` empty the
/// server answers the request `won = false` (snapshots not provisioned)
/// instead of writing anywhere implicit.
struct SnapConfig {
  /// Directory checkpoint files publish into (created by the operator,
  /// not the server). Empty = snapshot_create disabled.
  std::string dir;
};

struct ServeConfig {
  BatchConfig batch;
  TableConfig table;
  ShardConfig shards;
  WireConfig wire;
  StreamConfig stream;
  SnapConfig snap;

  /// Normalises (shard count → next power of two) and bounds-checks every
  /// field; throws std::invalid_argument naming the offender. Engine
  /// constructors call this, so a hand-built config is checked exactly
  /// once at the place it starts mattering.
  [[nodiscard]] ServeConfig validated() const {
    ServeConfig v = *this;
    if (v.batch.max_batch < 1) throw std::invalid_argument("serve: max_batch < 1");
    if (v.batch.max_wait_us < 1) throw std::invalid_argument("serve: max_wait_us < 1");
    if (v.batch.exec_threads < 0) throw std::invalid_argument("serve: exec_threads < 0");
    if (v.batch.lanes < 0) throw std::invalid_argument("serve: lanes < 0");
    if (v.batch.backoff_spins < 0) throw std::invalid_argument("serve: backoff_spins < 0");
    if (v.batch.latency_sample_shift < 0 || v.batch.latency_sample_shift > 63) {
      throw std::invalid_argument("serve: latency_sample_shift outside [0, 63]");
    }
    if (v.table.expected_keys < 1) v.table.expected_keys = 1;
    if (!(v.table.max_load > 0.0) || v.table.max_load >= 1.0) {
      throw std::invalid_argument("serve: max_load outside (0, 1)");
    }
    if (v.table.reclaim_ratio < 0.0 || v.table.reclaim_ratio >= v.table.max_load) {
      throw std::invalid_argument("serve: reclaim_ratio outside [0, max_load)");
    }
    if (v.table.reclaim_fp_rate < 0.0 || v.table.reclaim_fp_rate > 1.0) {
      throw std::invalid_argument("serve: reclaim_fp_rate outside [0, 1]");
    }
    if ((v.table.reclaim_probe_p99 != 0 || v.table.reclaim_fp_rate > 0.0) &&
        !v.table.telemetry) {
      throw std::invalid_argument("serve: signal-driven reclaim needs table.telemetry");
    }
    if (v.stream.vertices < 2) throw std::invalid_argument("serve: stream.vertices < 2");
    if (v.shards.count < 1) throw std::invalid_argument("serve: shards.count < 1");
    if (v.shards.count > (1 << 16)) throw std::invalid_argument("serve: shards.count > 65536");
    int pow2 = 1;
    while (pow2 < v.shards.count) pow2 <<= 1;
    v.shards.count = pow2;
    if (v.wire.listen_backlog < 1) throw std::invalid_argument("serve: listen_backlog < 1");
    if (v.wire.max_frame_bytes < 64) throw std::invalid_argument("serve: max_frame_bytes < 64");
    if (v.wire.io_batch < 1) throw std::invalid_argument("serve: io_batch < 1");
    return v;
  }

  // -- fluent builders (each returns a copy, so sweeps can fork a base) -----
  [[nodiscard]] ServeConfig with_max_batch(std::uint64_t n) const {
    ServeConfig c = *this;
    c.batch.max_batch = n;
    return c;
  }
  [[nodiscard]] ServeConfig with_max_wait_us(std::uint64_t us) const {
    ServeConfig c = *this;
    c.batch.max_wait_us = us;
    return c;
  }
  [[nodiscard]] ServeConfig with_exec_threads(int t) const {
    ServeConfig c = *this;
    c.batch.exec_threads = t;
    return c;
  }
  [[nodiscard]] ServeConfig with_counters(bool on = true) const {
    ServeConfig c = *this;
    c.batch.counters = on;
    return c;
  }
  [[nodiscard]] ServeConfig with_expected_keys(std::uint64_t keys) const {
    ServeConfig c = *this;
    c.table.expected_keys = keys;
    return c;
  }
  [[nodiscard]] ServeConfig with_shards(int count) const {
    ServeConfig c = *this;
    c.shards.count = count;
    return c;
  }
  [[nodiscard]] ServeConfig with_wire_port(std::uint16_t port) const {
    ServeConfig c = *this;
    c.wire.port = port;
    return c;
  }
  [[nodiscard]] ServeConfig with_vertices(std::uint32_t n) const {
    ServeConfig c = *this;
    c.stream.vertices = n;
    return c;
  }
  [[nodiscard]] ServeConfig with_expected_edges(std::uint64_t m) const {
    ServeConfig c = *this;
    c.stream.expected_edges = m;
    return c;
  }
  [[nodiscard]] ServeConfig with_snapshot_dir(std::string dir) const {
    ServeConfig c = *this;
    c.snap.dir = std::move(dir);
    return c;
  }
};

}  // namespace crcw::serve
