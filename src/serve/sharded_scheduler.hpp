// ShardedScheduler — the key-sharded ServiceBackend: N ConcurrentHashMap
// shards behind one logical CRCW round.
//
// Routing (the ShardedTable idea): a key's shard is taken from the HIGH
// bits of ds::mix64(key) — the tables probe with the low bits, so shard
// choice and in-shard bucket placement stay decorrelated. Lanes are laid
// out shard-major (shard s owns lanes [s·L, (s+1)·L)), and route(key)
// returns a lane of the key's own shard, so a drained lane is already
// shard-local: the pump moves each lane's records straight into its
// shard's pending list and only re-routes strays (ops enqueued without
// routing — counted as `foreign`, the routing hit-rate's denominator).
//
// Round structure: ONE WriteArbiter issues the round id for all shards,
// so a logical round r is the same number everywhere and every shard's
// LiveTag rounds stay strictly increasing. Per slice of ≤ max_batch ops
// per shard:
//
//   serial prolog   admission (latency sample, sentinel rejection) and
//                   per-shard backlog-sized grow reservation
//   ┌ omp for over shards:  phase A — committed-read lookups     ┐
//   ├ implicit barrier — the cross-shard round boundary:          │
//   │   no lookup of round r can observe any round-r write,       │
//   │   on its own shard or any other                             │
//   └ omp for over shards:  phases B+C fused — writes + publish  ┘
//
// Inside one shard the slice executes on ONE thread (omp schedule
// static,1 over shards), so the serial fused-B+C argument of
// batch_scheduler.hpp applies per shard: the first same-key write in
// admission order is the (key, round) winner and can publish immediately.
// Parallelism comes from shard independence, not intra-shard fan-out.
// With exec_threads == 1 both phases run serially with no OpenMP region
// (the raw-thread TSan stress tier's mode, tests/stress/stress_sharded).
//
// Grow/reclaim stay per-shard decisions: each shard reserves capacity for
// its own slice backlog before the round, and at batch close each shard
// independently checks its tombstone watermark and rebuilds itself
// (maybe_reclaim_parallel) — a churn-heavy shard shrinks while a hot one
// grows, no global stop-the-world.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/arbiter.hpp"
#include "core/policies.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/hash_common.hpp"
#include "obs/metrics.hpp"
#include "serve/config.hpp"
#include "serve/op.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/service_backend.hpp"
#include "snap/cut.hpp"
#include "snap/snapshot_file.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace crcw::serve {

class ShardedScheduler {
 public:
  using Table = ds::ConcurrentHashMap<std::uint64_t, std::uint64_t>;

  ShardedScheduler(const ServeConfig& cfg, RequestQueue& queue, ServeMetrics& metrics)
      : cfg_(cfg.validated()),
        threads_(cfg_.batch.resolved_threads()),
        shard_mask_(static_cast<std::uint64_t>(cfg_.shards.count) - 1),
        lanes_per_shard_(lanes_per_shard(cfg_)),
        queue_(queue),
        metrics_(metrics) {
    const int count = cfg_.shards.count;
    const std::uint64_t per_shard_keys =
        std::max<std::uint64_t>(1, cfg_.table.expected_keys / static_cast<std::uint64_t>(count));
    shards_.reserve(static_cast<std::size_t>(count));
    for (int s = 0; s < count; ++s) {
      const std::string suffix = s == 0 ? "" : "-s" + std::to_string(s);
      shards_.push_back(std::make_unique<Shard>(
          per_shard_keys, cfg_.table.hash_config("serve-table" + suffix)));
      if (cfg_.batch.counters) {
        shards_.back()->site =
            std::make_unique<obs::ContentionSite>("serve-shard-" + std::to_string(s));
      }
    }
  }

  ShardedScheduler(const ShardedScheduler&) = delete;
  ShardedScheduler& operator=(const ShardedScheduler&) = delete;

  /// Shard-major lane layout: every shard owns the same number of lanes
  /// (resolved_lanes rounded up to a multiple of the shard count).
  [[nodiscard]] static int queue_lanes(const ServeConfig& cfg) noexcept {
    const ServeConfig v = cfg.validated();
    return v.shards.count * lanes_per_shard(v);
  }

  bool submit_batch() { return run_batch(false); }
  bool flush() { return run_batch(true); }

  // -- committed state (serial / quiescent-pump reads) ----------------------
  [[nodiscard]] const std::uint64_t* committed_read(std::uint64_t key) const noexcept {
    return shards_[static_cast<std::size_t>(shard_of(key))]->table.find(key);
  }

  // -- routing --------------------------------------------------------------
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards_.size());
  }
  [[nodiscard]] int shard_of(std::uint64_t key) const noexcept {
    return static_cast<int>((ds::mix64(key) >> 32) & shard_mask_);
  }
  /// A lane of the key's own shard; distinct client threads spread over
  /// the shard's lanes by a dense thread-local slot (the RequestQueue
  /// lane_index idiom, applied within the shard's lane block).
  [[nodiscard]] std::size_t route(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(shard_of(key)) *
               static_cast<std::size_t>(lanes_per_shard_) +
           client_slot() % static_cast<std::size_t>(lanes_per_shard_);
  }

  // -- snapshots (src/snap): cuts, cut-predicated scans, restore ------------
  static constexpr std::uint32_t kSnapshotKind = snap::kKindKv;

  /// Mints a consistent cut: the single shared arbiter is the round
  /// authority for every shard, so one parked read of its counter is a
  /// cross-shard-consistent cut — every shard has committed exactly the
  /// rounds <= cut.round and nothing later. The pump resumes immediately;
  /// only grow/reclaim park while the cut is held (the batch epilog
  /// checks cuts_held()).
  [[nodiscard]] snap::SnapshotCut mint_cut() {
    util::Backoff backoff;
    while (pump_lock_.test_and_set(std::memory_order_acquire)) backoff.pause();
    const snap::SnapshotCut cut{arbiter_.round(),
                                static_cast<std::uint32_t>(shards_.size())};
    cuts_held_.fetch_add(1, std::memory_order_acq_rel);
    pump_lock_.clear(std::memory_order_release);
    return cut;
  }

  void release_cut() noexcept { cuts_held_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Cuts currently held against this backend (maintenance parks on > 0).
  [[nodiscard]] std::uint64_t cuts_held() const noexcept {
    return cuts_held_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t snapshot_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// Backend shape baked into snapshot headers; restore refuses files from
  /// a differently-sharded server (shard_of would route keys elsewhere).
  [[nodiscard]] std::uint64_t config_digest() const noexcept {
    return ds::mix64(kSnapshotKind + 1) ^ ds::mix64(shards_.size());
  }

  /// Cut-predicated scan of shard s; fn(key, value, round). Safe
  /// concurrently with later rounds while the cut is held.
  template <typename Fn>
  void scan_shard_at(std::uint32_t s, round_t cut_round, Fn&& fn) const {
    shards_[s]->table.for_each_at(cut_round, std::forward<Fn>(fn));
  }

  /// Serial restore of one snapshot entry into shard s (before serving
  /// starts). Refuses keys the router would place on a different shard.
  bool restore_entry(std::uint32_t s, std::uint64_t key, std::uint64_t value,
                     round_t round) {
    if (static_cast<int>(s) != shard_of(key)) return false;
    return shards_[s]->table.restore_slot(key, value, round);
  }

  /// Serial: continues the committed round sequence after restore.
  void reseed_round(round_t r) { arbiter_.reseed_round(r); }

  // -- introspection --------------------------------------------------------
  [[nodiscard]] round_t round() const noexcept { return arbiter_.round(); }
  [[nodiscard]] std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deadline_batches() const noexcept {
    return deadline_batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ops_served() const noexcept {
    return ops_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int exec_threads() const noexcept { return threads_; }
  [[nodiscard]] const Table& shard_table(int s) const {
    return shards_[static_cast<std::size_t>(s)]->table;
  }
  /// Ops this shard executed since construction (pump-serial counter).
  [[nodiscard]] std::uint64_t shard_ops(int s) const {
    return shards_[static_cast<std::size_t>(s)]->ops_total;
  }

  [[nodiscard]] BackendStats stats() const noexcept {
    BackendStats st;
    st.rounds = round();
    st.batches = batches();
    st.deadline_batches = deadline_batches();
    st.ops_served = ops_served();
    st.shards = shard_count();
    for (const auto& s : shards_) st.keys += s->table.size();
    st.shard_local_ops = metrics_.route_local();
    st.shard_foreign_ops = metrics_.route_foreign();
    return st;
  }

 private:
  // One shard: its table, its optional contention site, and the pump's
  // per-batch working state. Padded so two shards' slice-local fields
  // (wins/full, written by different omp threads) never share a line.
  struct alignas(util::kCacheLineSize) Shard {
    Shard(std::uint64_t expected_keys, ds::HashConfig hc)
        : table(expected_keys, std::move(hc)) {}

    Table table;
    std::unique_ptr<obs::ContentionSite> site;
    std::vector<Record> pending;     // drained this batch (pump-private)
    std::uint64_t ops_total = 0;     // lifetime executed ops (pump-serial)
    std::uint64_t wins = 0;          // this slice (owning thread only)
    bool full = false;               // this slice (owning thread only)
  };

  [[nodiscard]] static int lanes_per_shard(const ServeConfig& v) noexcept {
    const int lanes = v.batch.resolved_lanes();
    const int count = v.shards.count;
    return std::max(1, (lanes + count - 1) / count);
  }

  [[nodiscard]] static std::size_t client_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  [[nodiscard]] bool trigger_fired(bool& by_deadline) const noexcept {
    const std::uint64_t pending = queue_.pending();
    if (pending == 0) return false;
    if (pending >= cfg_.batch.max_batch) return true;
    const std::uint64_t oldest = queue_.oldest_enqueue_ns();
    by_deadline = oldest != 0 && now_ns() - oldest >= cfg_.batch.max_wait_us * 1000;
    return by_deadline;
  }

  bool run_batch(bool force) {
    bool by_deadline = false;
    if (!force && !trigger_fired(by_deadline)) return false;
    if (pump_lock_.test_and_set(std::memory_order_acquire)) return false;

    // Drain lane-by-lane: a routed lane lands wholesale in its shard's
    // pending list (local); strays — raw enqueues that bypassed route()
    // — are re-routed here and counted foreign.
    std::uint64_t drained = 0;
    std::uint64_t local = 0;
    std::uint64_t foreign = 0;
    const std::size_t lanes = queue_.lanes();
    for (std::size_t l = 0; l < lanes; ++l) {
      const auto lane_shard =
          std::min(l / static_cast<std::size_t>(lanes_per_shard_), shards_.size() - 1);
      scratch_.clear();
      drained += queue_.drain_lane_into(l, scratch_);
      for (const Record& rec : scratch_) {
        // The sentinel key is rejected at admission without touching any
        // table; charge it to the lane's own shard.
        const std::size_t s = rec.op.key == Table::kEmptyKey
                                  ? lane_shard
                                  : static_cast<std::size_t>(shard_of(rec.op.key));
        if (s == lane_shard) {
          ++local;
        } else {
          ++foreign;
        }
        shards_[s]->pending.push_back(rec);
      }
    }

    bool executed = false;
    if (drained > 0) {
      std::size_t slices = 0;
      for (const auto& s : shards_) {
        const std::size_t need =
            (s->pending.size() + cfg_.batch.max_batch - 1) / cfg_.batch.max_batch;
        slices = std::max(slices, need);
      }
      for (std::size_t j = 0; j < slices; ++j) execute_slice(j);

      batches_.fetch_add(1, std::memory_order_relaxed);
      if (by_deadline) deadline_batches_.fetch_add(1, std::memory_order_relaxed);
      ops_served_.fetch_add(drained, std::memory_order_relaxed);
      metrics_.batch_closed();
      metrics_.routed(local, foreign);
      // Batch boundary = step boundary: each shard decides its own
      // grow/reclaim fate — a tombstone-heavy shard rebuilds toward its
      // live count while its neighbours stay put. The shard's own probe
      // telemetry feeds the trigger, so with reclaim_probe_p99 /
      // reclaim_fp_rate set a shard also rebuilds when its walks
      // demonstrably degrade, ahead of the static tombstone watermark.
      // Parked while any snapshot cut is held: reclaim frees a shard's
      // bucket array while a concurrent scan_shard_at may be walking it.
      for (auto& s : shards_) {
        s->pending.clear();
        if (cuts_held() == 0) {
          (void)s->table.maybe_reclaim_parallel(threads_, s->table.telemetry_signal());
        }
      }
      executed = true;
    }
    pump_lock_.clear(std::memory_order_release);
    return executed;
  }

  /// Window of shard s in slice j: [j·max_batch, …) clamped to pending.
  [[nodiscard]] std::pair<std::size_t, std::size_t> window(std::size_t s,
                                                           std::size_t j) const {
    const auto& pending = shards_[s]->pending;
    const std::size_t begin = std::min(pending.size(), j * cfg_.batch.max_batch);
    const std::size_t end = std::min(pending.size(), begin + cfg_.batch.max_batch);
    return {begin, end};
  }

  /// One logical round across every shard.
  void execute_slice(std::size_t j) {
    admit_ns_ = now_ns();

    // Serial prolog: admission bookkeeping and the per-shard backlog
    // reservation (grow runs its own OpenMP region, so it cannot live
    // inside the execution region below).
    std::uint64_t admitted = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto [begin, end] = window(s, j);
      if (begin == end) continue;
      Shard& shard = *shards_[s];
      std::uint64_t write_count = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const Record& rec = shard.pending[i];
        if (rec.enqueue_ns != 0) metrics_.record_admit(rec.enqueue_ns, admit_ns_);
        if (rec.op.key == Table::kEmptyKey || is_stream_op(rec.op.kind) ||
            is_snapshot_op(rec.op.kind)) {
          // Sentinel keys, stream-vocabulary ops and snapshot kinds are
          // rejected at admission without touching any table (stream ops
          // belong to the streaming backend; snapshot kinds are answered
          // by the wire server without entering a round).
          publish(rec, Result{0, false, arbiter_.round() + 1});
        } else if (rec.op.kind != OpKind::kLookup) {
          ++write_count;
        }
      }
      const auto ops = static_cast<std::uint64_t>(end - begin);
      admitted += ops;
      shard.ops_total += ops;
      if (shard.site) shard.site->add_attempts(ops);
      // Backlog grow parks too while a cut is held (grow frees the old
      // bucket array under a live scan); snapshot workloads pre-size via
      // TableConfig::expected_keys.
      if (cuts_held() == 0) shard.table.maybe_grow_for_backlog(write_count, threads_);
      shard.wins = 0;
      shard.full = false;
    }
    metrics_.ops_admitted(admitted);

    const auto scope = arbiter_.next_round(ResetMode::kNone);
    const round_t r = scope.round();
    const auto n_shards = static_cast<std::ptrdiff_t>(shards_.size());

    if (threads_ == 1) {
      // Strictly serial, no OpenMP region (the TSan stress tier's mode):
      // every shard's lookups run before any shard's writes, preserving
      // the same cross-shard round boundary the barrier gives below.
      for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
        lookup_pass(static_cast<std::size_t>(s), j, r);
      }
      for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
        write_pass(static_cast<std::size_t>(s), j, r);
      }
    } else {
#pragma omp parallel num_threads(threads_)
      {
#pragma omp for schedule(static, 1)
        for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
          lookup_pass(static_cast<std::size_t>(s), j, r);
        }
        // implicit barrier — the cross-shard round boundary: every
        // committed read of round r (on every shard) closed before any
        // round-r write begins anywhere.
#pragma omp for schedule(static, 1)
        for (std::ptrdiff_t s = 0; s < n_shards; ++s) {
          write_pass(static_cast<std::size_t>(s), j, r);
        }
        // implicit barrier — round r committed atomically across shards
      }
    }

    std::uint64_t wins = 0;
    bool full = false;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      wins += shard.wins;
      full = full || shard.full;
      const auto [begin, end] = window(s, j);
      if (begin != end) metrics_.record_shard_round_ops(end - begin);
      if (shard.site) {
        if (shard.wins != 0) shard.site->add_wins(shard.wins);
        shard.site->flush_round();
      }
      shard.table.flush_round();
    }
    if (full) {
      throw std::runtime_error("serve: shard full despite backlog reservation");
    }
    metrics_.write_wins(wins);
    metrics_.flush_round();
  }

  /// Phase A on one shard: committed reads of rounds < r.
  void lookup_pass(std::size_t s, std::size_t j, round_t r) {
    Shard& shard = *shards_[s];
    const auto [begin, end] = window(s, j);
    for (std::size_t i = begin; i < end; ++i) {
      const Record& rec = shard.pending[i];
      if (rec.op.kind != OpKind::kLookup || rec.op.key == Table::kEmptyKey) continue;
      const std::uint64_t* v = shard.table.find(rec.op.key);
      publish(rec, Result{v != nullptr ? *v : 0, v != nullptr, r});
    }
  }

  /// Phases B+C fused on one shard (serial within the shard): in
  /// admission order the first same-key write wins its (key, round)
  /// arbitration and the committed outcome never changes again within the
  /// round, so every op publishes the moment its write returns.
  void write_pass(std::size_t s, std::size_t j, round_t r) {
    Shard& shard = *shards_[s];
    const auto [begin, end] = window(s, j);
    for (std::size_t i = begin; i < end; ++i) {
      const Record& rec = shard.pending[i];
      if (rec.op.kind != OpKind::kUpsert && rec.op.kind != OpKind::kErase) continue;
      if (rec.op.key == Table::kEmptyKey) continue;
      const bool is_erase = rec.op.kind == OpKind::kErase;
      const ds::MapUpsert outcome =
          is_erase ? shard.table.erase(r, rec.op.key)
                   : shard.table.upsert(r, rec.op.key, rec.op.value);
      switch (outcome) {
        case ds::MapUpsert::kWon:
          ++shard.wins;
          publish(rec, Result{is_erase ? 0 : rec.op.value, true, r});
          break;
        case ds::MapUpsert::kLost: {
          const std::uint64_t* v = shard.table.find(rec.op.key);
          publish(rec, Result{v != nullptr ? *v : 0, false, r});
          break;
        }
        case ds::MapUpsert::kFull:
          shard.full = true;
          publish(rec, Result{0, false, r});
          break;
      }
    }
  }

  void publish(const Record& rec, const Result& result) {
    if (rec.enqueue_ns != 0) {  // sampled (see BatchConfig)
      metrics_.record_commit(rec.enqueue_ns, admit_ns_, now_ns());
    }
    rec.future->publish(result);
  }

  ServeConfig cfg_;
  int threads_;
  std::uint64_t shard_mask_;
  int lanes_per_shard_;
  RequestQueue& queue_;
  ServeMetrics& metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // One arbiter = one logical round id for every shard; zero tags because
  // per-key arbitration lives in the shards' buckets (CAS-LT needs no
  // reset sweep, so next_round(kNone) is one increment).
  WriteArbiter<CasLtPolicy> arbiter_{0};
  std::atomic_flag pump_lock_;
  // Snapshot cuts currently held (mint_cut/release_cut). While > 0 every
  // shard's epilog skips reclaim and backlog grow — both free bucket
  // arrays that concurrent cut-predicated scans are walking.
  std::atomic<std::uint64_t> cuts_held_{0};

  // Pump-private scratch (only touched under pump_lock_).
  std::vector<Record> scratch_;
  std::uint64_t admit_ns_ = 0;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> deadline_batches_{0};
  std::atomic<std::uint64_t> ops_served_{0};
};

}  // namespace crcw::serve
