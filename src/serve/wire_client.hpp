// WireClient — a blocking TCP client for the serve wire protocol, with
// the same read-your-writes contract ClientSession gives in-process
// callers, reconstructed from Response frames.
//
// Two driving modes:
//   * call(op): one request, one reply. Lookups that land in a round at
//     or before this client's last write on the key's shard are re-issued
//     (stale_retries() counts them) — so call() is RYW-safe even when the
//     server batches this client's ops with thousands of others.
//   * pipeline(ops, window): keeps up to `window` requests in flight,
//     matching replies by correlation id. Writes update the per-shard
//     round tracker; stale lookups are re-queued at the BACK of the
//     pending work (they get a fresh id), so a pipelined mixed workload
//     converges without head-of-line blocking.
//
// One WireClient per thread; it owns one connection and is not
// thread-safe (open several clients for concurrent load).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/op.hpp"
#include "serve/serve_server.hpp"
#include "serve/wire.hpp"

namespace crcw::serve {

class WireClient {
 public:
  WireClient(const std::string& host, std::uint16_t port,
             std::uint32_t max_frame_bytes = 64 * 1024)
      : fd_(net::tcp_connect(host.c_str(), port)), decoder_(max_frame_bytes) {
    if (fd_ < 0) throw std::runtime_error("serve: wire connect failed");
  }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  ~WireClient() { close(); }

  void close() {
    if (fd_ >= 0) {
      net::shutdown_fd(fd_);
      net::close_fd(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // -- synchronous -----------------------------------------------------------

  /// One RYW-safe round trip. Throws on connection loss or protocol error.
  wire::Response call(const Op& op) {
    for (;;) {
      const wire::Response r = call_raw(op);
      if (is_snapshot_op(op.kind)) return r;  // not a write: no RYW tracking
      if (is_read_op(op.kind)) {
        if (r.round <= stale_bound(op.kind, r.shard)) {
          ++stale_retries_;
          continue;  // raced our own write into its round — re-issue
        }
        return r;
      }
      note_write(r.shard, r.round);
      return r;
    }
  }

  /// One round trip with no RYW tracking (what the session returned, raw).
  wire::Response call_raw(const Op& op) {
    send_request(op);
    wire::Response resp;
    recv_response(resp);
    return resp;
  }

  // -- snapshots -------------------------------------------------------------

  /// Consistent-scan digest of the server's committed state at a fresh
  /// cut: `value` is the fold digest, `round` the cut round. Two servers
  /// holding identical committed state answer with identical digests —
  /// the wire-level equality witness of the kill/restore audit.
  wire::Response snapshot_scan() { return call_raw(Op::snapshot_scan()); }

  /// Asks the server to publish a checkpoint file (SnapConfig::dir).
  /// `won` is true iff the file is durable; `round` is the cut it holds.
  wire::Response snapshot_create() { return call_raw(Op::snapshot_create()); }

  // -- pipelined -------------------------------------------------------------

  /// Runs `ops` with up to `window` in flight; returns one Response per op,
  /// in op order. RYW holds per shard: stale lookups are transparently
  /// re-issued (appended to the in-flight window with a fresh id).
  std::vector<wire::Response> pipeline(const std::vector<Op>& ops,
                                       std::size_t window) {
    if (window == 0) window = 1;
    std::vector<wire::Response> results(ops.size());
    // id → index into ops/results; re-issues get a fresh id, same index.
    std::unordered_map<std::uint64_t, std::size_t> in_flight;
    in_flight.reserve(window * 2);
    std::size_t sent = 0;
    std::size_t done = 0;

    while (done < ops.size()) {
      while (sent < ops.size() && in_flight.size() < window) {
        const std::uint64_t id = next_id_++;
        in_flight.emplace(id, sent);
        send_request_id(id, ops[sent]);
        ++sent;
      }
      wire::Response resp;
      recv_response_raw(resp);
      const auto it = in_flight.find(resp.id);
      if (it == in_flight.end()) {
        throw std::runtime_error("serve: wire response with unknown id");
      }
      const std::size_t idx = it->second;
      in_flight.erase(it);
      const Op& op = ops[idx];
      if (is_read_op(op.kind) && resp.round <= stale_bound(op.kind, resp.shard)) {
        ++stale_retries_;
        const std::uint64_t id = next_id_++;  // re-issue, stay in the window
        in_flight.emplace(id, idx);
        send_request_id(id, op);
        continue;
      }
      if (!is_read_op(op.kind) && !is_snapshot_op(op.kind)) {
        note_write(resp.shard, resp.round);
      }
      results[idx] = resp;
      ++done;
    }
    return results;
  }

  // -- read-your-writes state ------------------------------------------------

  [[nodiscard]] round_t last_write_round(std::uint32_t shard) const noexcept {
    return shard < last_write_round_.size() ? last_write_round_[shard] : 0;
  }
  /// Last write round on ANY shard — the stale bound of the connectivity
  /// queries, which read global state.
  [[nodiscard]] round_t max_write_round() const noexcept { return max_write_round_; }
  /// Lookups re-issued because they executed at or before this client's
  /// last write on their shard.
  [[nodiscard]] std::uint64_t stale_retries() const noexcept { return stale_retries_; }

 private:
  void send_request(const Op& op) { send_request_id(next_id_++, op); }

  void send_request_id(std::uint64_t id, const Op& op) {
    out_.clear();
    wire::encode_request({id, op}, out_);
    if (!net::write_all(fd_, out_.data(), out_.size())) {
      throw std::runtime_error("serve: wire send failed");
    }
  }

  /// Next response, id-checked against nothing (pipeline matches ids).
  void recv_response_raw(wire::Response& resp) {
    for (;;) {
      switch (decoder_.next(resp)) {
        case wire::DecodeStatus::kFrame:
          return;
        case wire::DecodeStatus::kError:
          throw std::runtime_error("serve: wire protocol error from server");
        case wire::DecodeStatus::kNeedMore: {
          const std::ptrdiff_t n = net::read_some(fd_, chunk_, sizeof(chunk_));
          if (n <= 0) throw std::runtime_error("serve: wire connection closed");
          decoder_.feed(chunk_, static_cast<std::size_t>(n));
          break;
        }
      }
    }
  }

  void recv_response(wire::Response& resp) {
    recv_response_raw(resp);
    if (resp.id != next_id_ - 1) {
      throw std::runtime_error("serve: wire response id mismatch");
    }
  }

  /// The round a read must exceed to be RYW-fresh. Lookups compare against
  /// this client's last write on the key's own shard; the connectivity
  /// queries read GLOBAL state (a hook executed on any stripe can connect
  /// any two vertices), so they compare against the last write round on
  /// any shard — comparable because one arbiter issues every round id.
  [[nodiscard]] round_t stale_bound(OpKind kind, std::uint32_t shard) const noexcept {
    return kind == OpKind::kLookup ? last_write_round(shard) : max_write_round_;
  }

  void note_write(std::uint32_t shard, round_t round) {
    if (shard >= last_write_round_.size()) last_write_round_.resize(shard + 1, 0);
    if (round > last_write_round_[shard]) last_write_round_[shard] = round;
    if (round > max_write_round_) max_write_round_ = round;
  }

  int fd_ = -1;
  wire::ResponseDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::uint64_t stale_retries_ = 0;
  std::vector<round_t> last_write_round_;
  round_t max_write_round_ = 0;
  std::vector<std::uint8_t> out_;
  std::uint8_t chunk_[16 * 1024];
};

}  // namespace crcw::serve
