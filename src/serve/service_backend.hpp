// ServiceBackend — the backend-agnostic contract BasicServeSession
// templates over.
//
// The session owns the client-facing machinery (queue, futures, pump
// thread, backpressure) and delegates everything round-shaped to a
// backend: the single-table BatchScheduler and the key-sharded
// ShardedScheduler implement the same five-method surface, so every
// session feature (submit/wait/call/flush, background pump, destructor
// drain) works identically over both. A backend is constructed from
// (ServeConfig, RequestQueue&, ServeMetrics&) — the session wires them —
// and additionally tells the session how wide the queue must be
// (queue_lanes) and which lane an op belongs in (route), which is where
// lane→shard affinity lives.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

#include "core/round_tag.hpp"
#include "serve/config.hpp"

namespace crcw::serve {

class RequestQueue;
class ServeMetrics;

/// One snapshot of a backend's service counters (relaxed reads; exact
/// once clients quiesce). The routing pair is only non-zero on sharded
/// backends: `shard_local_ops` counts ops drained from a lane of their
/// key's own shard, `shard_foreign_ops` ops that had to cross shards at
/// execution — the affinity quality the bench reports as a hit rate.
struct BackendStats {
  round_t rounds = 0;
  std::uint64_t batches = 0;
  std::uint64_t deadline_batches = 0;
  std::uint64_t ops_served = 0;
  std::uint64_t keys = 0;  ///< live committed keys across all shards
  int shards = 1;
  std::uint64_t shard_local_ops = 0;
  std::uint64_t shard_foreign_ops = 0;

  /// Fraction of executed ops that landed shard-local; 1.0 when nothing
  /// was routed yet (a single-table backend never routes).
  [[nodiscard]] double routing_hit_rate() const noexcept {
    const std::uint64_t total = shard_local_ops + shard_foreign_ops;
    return total == 0 ? 1.0
                      : static_cast<double>(shard_local_ops) / static_cast<double>(total);
  }
};

/// The contract: trigger-gated and unconditional pumping, quiescent
/// committed reads, a stats snapshot, and the routing surface the session
/// (and read-your-writes clients) need. `route` may be called from any
/// client thread; `committed_read`/`stats` are advisory under a live pump
/// and exact once it quiesces, like the queue's own counters.
template <typename B>
concept ServiceBackend =
    std::constructible_from<B, const ServeConfig&, RequestQueue&, ServeMetrics&> &&
    requires(B& b, const B& cb, std::uint64_t key, const ServeConfig& cfg) {
      { b.submit_batch() } -> std::same_as<bool>;
      { b.flush() } -> std::same_as<bool>;
      { cb.committed_read(key) } -> std::same_as<const std::uint64_t*>;
      { cb.stats() } -> std::same_as<BackendStats>;
      { cb.shard_count() } -> std::same_as<int>;
      { cb.shard_of(key) } -> std::same_as<int>;
      { cb.route(key) } -> std::same_as<std::size_t>;
      { B::queue_lanes(cfg) } -> std::same_as<int>;
    };

}  // namespace crcw::serve
