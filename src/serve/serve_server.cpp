// POSIX socket plumbing for the wire front end (serve_server.hpp).
//
// Deliberately minimal: blocking fds, dotted-quad addresses only, no
// SIGPIPE (suppressed per-send with MSG_NOSIGNAL). Everything protocol-
// shaped stays in the headers so it is unit-testable without sockets.
#include "serve/serve_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace crcw::serve::net {

int tcp_listen(std::uint16_t port, int backlog, bool bind_any,
               std::uint16_t& bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = bind_any ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }

  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    ::close(fd);
    return -1;
  }
  bound_port = ntohs(actual.sin_port);
  return fd;
}

int tcp_accept(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    if (errno == EINTR) continue;
    return -1;  // includes EINVAL after shutdown_fd(listen_fd)
  }
}

int tcp_connect(const char* host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host, &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::ptrdiff_t read_some(int fd, void* buf, std::size_t n) {
  for (;;) {
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) return r;
    if (errno == EINTR) continue;
    return -1;
  }
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace crcw::serve::net
