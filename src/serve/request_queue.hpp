// RequestQueue — the MPMC admission queue of the serving layer.
//
// Layout follows the repo's sharding idiom (obs::ContentionSite,
// ds::ShardedCounter): one cache-line-padded sub-queue per *lane*, each
// guarded by its own spinlock, with clients bound to lanes by a dense
// thread-local index. Uncontended enqueues therefore touch only their own
// line; the pump drains every lane at a batch boundary. Counts and the
// oldest-enqueue timestamp are advisory relaxed atomics — they steer the
// size/deadline triggers, never correctness (the drain under the lane lock
// is the authoritative hand-off, and its acquire/release pairing is the
// happens-before edge TSan checks in tests/stress/stress_serve.cpp).
//
// Backpressure: a lane holds at most `lane_backlog` records; try_enqueue
// refuses at the watermark and the caller relieves the pressure — the
// session's submit() helps drain, a raw enqueue() backs off (spin, then
// yield) until some other pump drains. Either way queue memory stays
// bounded and, on oversubscribed machines, the core goes to the pump
// instead of racing it.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serve/op.hpp"
#include "util/aligned_buffer.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace crcw::serve {

/// One admitted operation: the op, its completion slot, and when it
/// arrived (the enqueue→admit histogram's left edge).
struct Record {
  Op op;
  OpFuture* future = nullptr;
  std::uint64_t enqueue_ns = 0;
};

class RequestQueue {
 public:
  /// Lane sentinel for try_enqueue: "no routing preference" — the record
  /// goes to the caller's own (dense thread-local) lane. Routed backends
  /// pass a real lane index instead (lane→shard affinity).
  static constexpr std::size_t kAnyLane = ~std::size_t{0};

  /// `lanes` ≥ 1 sub-queues; `lane_backlog` is the per-lane watermark
  /// (0 = unbounded); `backoff_spins` parameterises the blocked-client
  /// waiter; `sample_mask` thins latency timestamping (2^k − 1 = stamp
  /// every 2^k-th op per client; 0 = stamp every op — an unstamped
  /// record carries enqueue_ns 0 and skips the histograms downstream).
  RequestQueue(int lanes, std::uint64_t lane_backlog, int backoff_spins,
               std::uint64_t sample_mask = 0)
      : lanes_(static_cast<std::size_t>(lanes < 1 ? 1 : lanes)),
        lane_backlog_(lane_backlog),
        backoff_spins_(backoff_spins),
        sample_mask_(sample_mask) {}

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  /// Non-blocking admission: refuses (returns false) when the target
  /// lane is at its watermark. The caller decides how to relieve the
  /// pressure — back off, or help drain (BasicServeSession::submit does
  /// the latter, so a pump-less session can never deadlock on its own
  /// backlog). `lane` picks the sub-queue (kAnyLane = the caller's own;
  /// out-of-range wraps — routed callers size the queue to match). The
  /// future must stay pinned until it completes.
  [[nodiscard]] bool try_enqueue(const Op& op, OpFuture& future,
                                 std::size_t lane_hint = kAnyLane) {
    Lane& lane =
        lanes_[lane_hint == kAnyLane ? lane_index() : lane_hint % lanes_.size()];
    if (lane_backlog_ != 0 &&
        lane.count.load(std::memory_order_relaxed) >= lane_backlog_) {
      return false;  // admission backpressure
    }
    // The clock read is the enqueue path's one expensive instruction;
    // under a sampling mask most ops skip it (enqueue_ns 0 = unsampled).
    thread_local std::uint64_t tick = 0;
    const std::uint64_t stamp = (tick++ & sample_mask_) == 0 ? now_ns() : 0;
    // Exponential backoff (util/backoff.hpp), not the linear BackoffState:
    // the lock is held for a few instructions, so doubling PAUSE runs
    // de-syncs the spinners far faster than a fixed spin budget, and the
    // critical section owner stops eating test_and_set line invalidations.
    util::Backoff backoff;
    while (lane.lock.test_and_set(std::memory_order_acquire)) backoff.pause();
    lane.records.push_back(Record{op, &future, stamp});
    if (lane.records.size() == 1) {
      // The deadline trigger needs a real timestamp even for an
      // unsampled head-of-lane record.
      lane.oldest_ns.store(stamp != 0 ? stamp : now_ns(), std::memory_order_relaxed);
    }
    lane.count.store(lane.records.size(), std::memory_order_relaxed);
    lane.lock.clear(std::memory_order_release);
    return true;
  }

  /// Blocking admission: spin-then-yield until the lane has room. Only
  /// safe when some *other* thread drains; a lone thread must use
  /// try_enqueue and relieve its own backpressure.
  void enqueue(const Op& op, OpFuture& future) {
    BackoffState backoff(backoff_spins_);
    while (!try_enqueue(op, future)) backoff.pause();
  }

  /// Moves every pending record into `out` (appending, admission order per
  /// lane) and returns how many were drained. Callers serialise through
  /// the scheduler's pump lock; clients may enqueue concurrently.
  std::uint64_t drain_into(std::vector<Record>& out) {
    std::uint64_t drained = 0;
    for (std::size_t l = 0; l < lanes_.size(); ++l) drained += drain_lane_into(l, out);
    return drained;
  }

  /// Drains one lane (appending, admission order) — the sharded backend's
  /// shape: lane l belongs to one shard, so draining it lane-by-lane keeps
  /// the batch shard-local without a re-sort. Same serialisation contract
  /// as drain_into.
  std::uint64_t drain_lane_into(std::size_t l, std::vector<Record>& out) {
    Lane& lane = lanes_[l % lanes_.size()];
    util::Backoff backoff;  // spinlock acquire: exponential, like try_enqueue
    while (lane.lock.test_and_set(std::memory_order_acquire)) backoff.pause();
    const std::uint64_t drained = lane.records.size();
    out.insert(out.end(), lane.records.begin(), lane.records.end());
    lane.records.clear();
    // Advisory-reset order matters for the lock-free readers: clear the
    // timestamp BEFORE the count, so a reader that still sees a non-zero
    // count reads either the old (valid-at-the-time) timestamp or the
    // cleared one — never a stale timestamp for a lane it knows is empty.
    // (oldest_enqueue_ns additionally gates on count, closing the other
    // interleaving; see the regression test OldestNsClearsWhenLaneDrains.)
    lane.oldest_ns.store(0, std::memory_order_relaxed);
    lane.count.store(0, std::memory_order_relaxed);
    lane.lock.clear(std::memory_order_release);
    return drained;
  }

  /// Approximate total backlog (relaxed reads; exact once clients quiesce).
  [[nodiscard]] std::uint64_t pending() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& lane : lanes_) total += lane.count.load(std::memory_order_relaxed);
    return total;
  }

  /// Earliest enqueue timestamp across non-empty lanes (0 = none pending)
  /// — the deadline trigger's input. A lane that drained to empty between
  /// advisory samples reports nothing: its count gates the timestamp, so
  /// the trigger can never fire off a timestamp whose op already left the
  /// queue (the stale-oldest_ns bug this guards against would otherwise
  /// surface as spurious deadline batches).
  [[nodiscard]] std::uint64_t oldest_enqueue_ns() const noexcept {
    std::uint64_t oldest = 0;
    for (const Lane& lane : lanes_) {
      const std::uint64_t ts = lane.oldest_ns.load(std::memory_order_relaxed);
      if (ts == 0) continue;
      if (lane.count.load(std::memory_order_relaxed) == 0) continue;  // drained
      if (oldest == 0 || ts < oldest) oldest = ts;
    }
    return oldest;
  }

 private:
  // One line per lane: the lock, the advisory counters, and the vector
  // header share it, but two lanes never share anything.
  struct alignas(util::kCacheLineSize) Lane {
    std::atomic_flag lock;               // guards `records`
    std::atomic<std::uint64_t> count{0};      // advisory size (size trigger)
    std::atomic<std::uint64_t> oldest_ns{0};  // advisory (deadline trigger)
    std::vector<Record> records;
  };

  /// Dense thread index, recycled mod lanes — the ShardedCounter contract:
  /// collisions degrade to lock sharing, never to wrong hand-offs.
  [[nodiscard]] std::size_t lane_index() const noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
    return index % lanes_.size();
  }

  util::AlignedBuffer<Lane> lanes_;
  std::uint64_t lane_backlog_;
  int backoff_spins_;
  std::uint64_t sample_mask_;
};

}  // namespace crcw::serve
