// WireServer — the TCP accept-loop front end over a serve session.
//
// Deployment shape: one BasicWireServer wraps one session (usually
// ShardedServeSession). start() binds (WireConfig::port; 0 = ephemeral,
// port() reports the bound one), spins the accept loop, and starts the
// session's background pump so deadline batches close without client-side
// pumping. Each accepted connection gets a handler thread:
//
//   read chunk → RequestDecoder → submit burst (≤ io_batch ops, futures
//   pinned on the handler's stack) → wait → encode replies IN REQUEST
//   ORDER → write_all
//
// A burst's ops ride ordinary session rounds — the wire adds no second
// consistency mechanism; Response carries {round, shard} so clients can
// implement read-your-writes exactly like in-process ClientSessions. Any
// framing error (DecodeStatus::kError) drops the connection; there is no
// resync.
//
// The snapshot kinds are the one exception to "every op rides a round":
// kSnapshotScan and kSnapshotCreate are answered on the handler thread
// itself via src/snap (a consistent cut held while the pump keeps
// committing), so a slow scan blocks only its own connection, never the
// round pipeline. Scan replies carry the fold digest in `value` and the
// cut round in `round`; create replies carry the published checkpoint's
// cut round (won=false if SnapConfig::dir is empty or the write failed). Threads-per-connection is deliberate: the expected clients are
// a handful of load generators pipelining thousands of ops, not ten
// thousand idle sockets (an epoll reactor composes later without touching
// the protocol).
//
// Raw POSIX socket plumbing lives in serve_server.cpp (the one compiled
// TU of crcw_serve); this header stays template-friendly for any backend.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/config.hpp"
#include "serve/serve_session.hpp"
#include "serve/service_backend.hpp"
#include "serve/wire.hpp"
#include "snap/checkpointer.hpp"

namespace crcw::serve {

namespace net {

/// Binds + listens on 127.0.0.1 (or all interfaces with `bind_any`);
/// `port` 0 picks an ephemeral port, reported through `bound_port`.
/// Returns the listening fd, or -1 (errno holds the cause).
int tcp_listen(std::uint16_t port, int backlog, bool bind_any,
               std::uint16_t& bound_port);

/// Blocking accept; -1 once the listener is shut down or on error.
int tcp_accept(int listen_fd);

/// Blocking connect to host:port; -1 on failure. `host` is a dotted quad
/// ("127.0.0.1") — the serve wire has no name resolution.
int tcp_connect(const char* host, std::uint16_t port);

/// Blocking read of up to n bytes; >0 bytes read, 0 peer closed, -1 error.
std::ptrdiff_t read_some(int fd, void* buf, std::size_t n);

/// Writes all n bytes (looping over short writes); false on error.
bool write_all(int fd, const void* buf, std::size_t n);

/// shutdown(2) both directions — unblocks a peer's blocked read/accept.
void shutdown_fd(int fd);

void close_fd(int fd);

}  // namespace net

template <ServiceBackend Backend>
class BasicWireServer {
 public:
  /// The server borrows the session; the caller keeps it alive (and may
  /// keep using it in-process — wire and local clients share rounds).
  BasicWireServer(BasicServeSession<Backend>& session, const WireConfig& cfg)
      : session_(session), cfg_(cfg) {}

  BasicWireServer(const BasicWireServer&) = delete;
  BasicWireServer& operator=(const BasicWireServer&) = delete;

  ~BasicWireServer() { stop(); }

  /// Binds, listens, starts the accept loop and the session pump.
  /// Throws std::runtime_error if the socket cannot be bound.
  void start() {
    if (accept_thread_.joinable()) return;
    std::uint16_t bound = 0;
    listen_fd_ = net::tcp_listen(cfg_.port, cfg_.listen_backlog, cfg_.bind_any, bound);
    if (listen_fd_ < 0) throw std::runtime_error("serve: wire listen/bind failed");
    port_ = bound;
    stopping_.store(false, std::memory_order_relaxed);
    session_.start_pump();
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  /// Stops accepting, drops live connections, joins every handler.
  /// Idempotent; the destructor calls it. The session (and its pump) are
  /// left running — they belong to the caller.
  void stop() {
    if (!accept_thread_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
    net::shutdown_fd(listen_fd_);
    accept_thread_.join();
    net::close_fd(listen_fd_);
    listen_fd_ = -1;
    {
      const std::lock_guard<std::mutex> lock(conn_mu_);
      for (const int fd : conn_fds_) net::shutdown_fd(fd);
    }
    for (std::thread& t : handlers_) t.join();
    handlers_.clear();
    conn_fds_.clear();
  }

  /// The bound port (== WireConfig::port unless that was 0/ephemeral).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool running() const noexcept { return accept_thread_.joinable(); }
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int fd = net::tcp_accept(listen_fd_);
      if (fd < 0) {
        if (stopping_.load(std::memory_order_relaxed)) return;
        continue;  // transient accept failure (e.g. aborted handshake)
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.push_back(fd);
      handlers_.emplace_back([this, fd] { serve_connection(fd); });
    }
  }

  void serve_connection(int fd) {
    wire::RequestDecoder decoder(cfg_.max_frame_bytes);
    std::vector<std::uint8_t> chunk(64 * 1024);
    std::vector<wire::Request> burst;
    std::vector<std::uint8_t> out;
    const auto io_batch = static_cast<std::size_t>(cfg_.io_batch);
    // OpFuture is pinned (atomics, raw pointer held by the engine), so the
    // pool is sized once and never reallocated; submit() re-arms each slot.
    std::vector<OpFuture> futures(io_batch);

    for (;;) {
      const std::ptrdiff_t n = net::read_some(fd, chunk.data(), chunk.size());
      if (n <= 0) break;  // peer closed, error, or stop()'s shutdown
      decoder.feed(chunk.data(), static_cast<std::size_t>(n));
      for (;;) {
        // Decode up to io_batch requests, run them as one submit burst,
        // reply in request order, repeat until the chunk is exhausted.
        burst.clear();
        wire::Request req;
        wire::DecodeStatus st = wire::DecodeStatus::kNeedMore;
        while (burst.size() < io_batch &&
               (st = decoder.next(req)) == wire::DecodeStatus::kFrame) {
          burst.push_back(req);
        }
        if (st == wire::DecodeStatus::kError) {
          net::close_fd(fd);
          return;  // garbage framing: drop, never resync
        }
        if (burst.empty()) break;  // kNeedMore with nothing decoded
        requests_.fetch_add(burst.size(), std::memory_order_relaxed);

        for (std::size_t i = 0; i < burst.size(); ++i) {
          if (!is_snapshot_op(burst[i].op.kind)) session_.submit(burst[i].op, futures[i]);
        }
        out.clear();
        for (std::size_t i = 0; i < burst.size(); ++i) {
          if (is_snapshot_op(burst[i].op.kind)) {
            // Answered here, in request order, without entering a round —
            // the cut machinery keeps the view consistent while later
            // batches commit underneath the scan.
            wire::encode_response(handle_snapshot(burst[i]), out);
            continue;
          }
          const Result& r = session_.wait(futures[i]);
          wire::encode_response(
              {burst[i].id, r.won, r.value, r.round,
               static_cast<std::uint32_t>(session_.backend().shard_of(burst[i].op.key))},
              out);
        }
        if (!net::write_all(fd, out.data(), out.size())) {
          net::close_fd(fd);
          return;
        }
        if (st == wire::DecodeStatus::kNeedMore) break;
      }
    }
    net::close_fd(fd);
  }

  /// kSnapshotScan: digest the committed state at a fresh cut, concurrent
  /// with later rounds. kSnapshotCreate: publish a checkpoint file into
  /// SnapConfig::dir (serialized — one checkpoint at a time; the handler
  /// blocks until its file is durable so won=true means published).
  wire::Response handle_snapshot(const wire::Request& req) {
    wire::Response resp;
    resp.id = req.id;
    if (req.op.kind == OpKind::kSnapshotScan) {
      const snap::ScanDigest d = snap::scan_digest(session_.backend());
      resp.won = true;
      resp.value = d.digest;
      resp.round = d.cut.round;
      return resp;
    }
    const std::string& dir = session_.config().snap.dir;
    if (dir.empty()) return resp;  // snapshots not provisioned: won=false
    const std::lock_guard<std::mutex> lock(snap_mu_);
    if (!checkpointer_) {
      checkpointer_ =
          std::make_unique<snap::Checkpointer<Backend>>(session_.backend(), dir);
    }
    std::string err;
    const auto cut = checkpointer_->begin(&err);
    if (!cut.has_value()) return resp;
    resp.won = checkpointer_->wait(&err);
    resp.round = cut->round;
    return resp;
  }

  BasicServeSession<Backend>& session_;
  WireConfig cfg_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<int> conn_fds_;        // guarded by conn_mu_
  std::vector<std::thread> handlers_;  // guarded by conn_mu_ until stop()
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::mutex snap_mu_;  // serializes kSnapshotCreate across connections
  std::unique_ptr<snap::Checkpointer<Backend>> checkpointer_;
};

/// The deployment default: a wire front end over the sharded backend.
using WireServer = BasicWireServer<ShardedScheduler>;

}  // namespace crcw::serve
