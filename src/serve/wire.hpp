// wire — the length-prefixed binary protocol of the serve front end.
//
// Framing: every message is `u32 payload_len | payload`, all integers
// little-endian regardless of host order (encoded byte-by-byte, so the
// codec is portable and never type-puns). Payloads are fixed-size per
// direction:
//
//   request   u8 kind | u64 id | u64 key | u64 value          (25 bytes)
//   response  u8 status | u64 id | u64 value | u64 round | u32 shard
//                                                            (29 bytes)
//
// `id` is a client-chosen correlation id echoed back verbatim (the server
// answers a connection's requests in order, but pipelined clients still
// match on id). `status` bit 0 is Result::won; higher bits are reserved
// and must be zero. `round`/`shard` let a client implement read-your-
// writes over the wire: track the last write round per shard, re-issue
// lookups that landed at or before it (wire_client.hpp).
//
// The stream kinds ride the same frames with no codec change: edge ops
// put the packed edge in the key field, the connectivity queries their
// vertices in key/value (OpKind docs). The snapshot kinds
// (kSnapshotCreate/kSnapshotScan) ride them too — key/value are ignored
// on request; the response carries the cut round in `round` and the scan
// digest (or 0 for create) in `value`. Only the decoder's kind bound
// moves; kinds past kSnapshotScan still poison.
//
// The decoder is incremental and chunk-boundary agnostic: feed() arbitrary
// byte slices, next() yields complete frames. Garbage framing (oversized
// or undersized length prefix, bad kind/status byte) is reported as
// kError and poisons the decoder — the connection owner must drop the
// connection, never resynchronise. Decoding arbitrary bytes is safe
// (no UB, no allocation beyond the cap), which is what makes the codec
// fuzz-friendly and unit-testable without sockets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/round_tag.hpp"
#include "serve/op.hpp"

namespace crcw::serve::wire {

inline constexpr std::size_t kLenBytes = 4;
inline constexpr std::size_t kRequestPayloadBytes = 1 + 8 + 8 + 8;
inline constexpr std::size_t kResponsePayloadBytes = 1 + 8 + 8 + 8 + 4;
inline constexpr std::size_t kRequestFrameBytes = kLenBytes + kRequestPayloadBytes;
inline constexpr std::size_t kResponseFrameBytes = kLenBytes + kResponsePayloadBytes;

/// One client request on the wire: a correlation id plus the op.
struct Request {
  std::uint64_t id = 0;
  Op op;
};

/// One server reply. `won` mirrors Result::won; `round` and `shard` are
/// the read-your-writes coordinates of the executing round.
struct Response {
  std::uint64_t id = 0;
  bool won = false;
  std::uint64_t value = 0;
  round_t round = 0;
  std::uint32_t shard = 0;
};

// -- little-endian primitives (byte-wise: portable, alias-safe) -------------

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// -- encoding ----------------------------------------------------------------

inline void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kRequestPayloadBytes));
  out.push_back(static_cast<std::uint8_t>(req.op.kind));
  put_u64(out, req.id);
  put_u64(out, req.op.key);
  put_u64(out, req.op.value);
}

inline void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  put_u32(out, static_cast<std::uint32_t>(kResponsePayloadBytes));
  out.push_back(static_cast<std::uint8_t>(resp.won ? 1 : 0));
  put_u64(out, resp.id);
  put_u64(out, resp.value);
  put_u64(out, resp.round);
  put_u32(out, resp.shard);
}

// -- incremental decoding ----------------------------------------------------

enum class DecodeStatus : std::uint8_t {
  kFrame,     ///< one complete frame was produced
  kNeedMore,  ///< the buffered bytes end mid-frame; feed() more
  kError,     ///< garbage framing; the decoder is poisoned — drop the peer
};

/// Splits a byte stream into validated frames of one expected payload
/// size. Direction-agnostic: the request and response decoders below pin
/// the size and decode the payload fields.
class FrameReader {
 public:
  /// `expected_payload` is the only legal length-prefix value;
  /// `max_frame_bytes` additionally caps it (WireConfig::max_frame_bytes)
  /// so a garbage prefix can never look like a request to buffer 4 GiB.
  FrameReader(std::size_t expected_payload, std::uint32_t max_frame_bytes) noexcept
      : expected_payload_(expected_payload), max_frame_(max_frame_bytes) {}

  /// Appends raw bytes (any chunking, including single bytes).
  void feed(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  /// Extracts the next complete payload into `payload` (overwritten).
  DecodeStatus next(std::vector<std::uint8_t>& payload) {
    if (poisoned_) return DecodeStatus::kError;
    if (buf_.size() - pos_ < kLenBytes) {
      compact();
      return DecodeStatus::kNeedMore;
    }
    const std::uint32_t len = get_u32(buf_.data() + pos_);
    if (len != expected_payload_ || len > max_frame_) {
      poisoned_ = true;
      return DecodeStatus::kError;
    }
    if (buf_.size() - pos_ < kLenBytes + len) {
      compact();
      return DecodeStatus::kNeedMore;
    }
    payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kLenBytes),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kLenBytes + len));
    pos_ += kLenBytes + len;
    return DecodeStatus::kFrame;
  }

  /// Marks the stream unrecoverable (bad payload contents, not just bad
  /// framing) — every later next() reports kError.
  void poison() noexcept { poisoned_ = true; }

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  /// Bytes buffered but not yet consumed (0 on a clean stream boundary).
  [[nodiscard]] std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  /// Drops consumed bytes once they dominate the buffer, so a long-lived
  /// connection's buffer stays at O(one frame), not O(stream).
  void compact() {
    if (pos_ == 0) return;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }

  std::size_t expected_payload_;
  std::uint32_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

/// Server-side decoder: bytes in, Requests out.
class RequestDecoder {
 public:
  explicit RequestDecoder(std::uint32_t max_frame_bytes) noexcept
      : reader_(kRequestPayloadBytes, max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n) { reader_.feed(data, n); }

  DecodeStatus next(Request& out) {
    const DecodeStatus st = reader_.next(payload_);
    if (st != DecodeStatus::kFrame) return st;
    const std::uint8_t kind = payload_[0];
    if (kind > static_cast<std::uint8_t>(OpKind::kSnapshotScan)) {
      reader_.poison();
      return DecodeStatus::kError;
    }
    out.op.kind = static_cast<OpKind>(kind);
    out.id = get_u64(payload_.data() + 1);
    out.op.key = get_u64(payload_.data() + 9);
    out.op.value = get_u64(payload_.data() + 17);
    return DecodeStatus::kFrame;
  }

  [[nodiscard]] std::size_t buffered() const noexcept { return reader_.buffered(); }

 private:
  FrameReader reader_;
  std::vector<std::uint8_t> payload_;
};

/// Client-side decoder: bytes in, Responses out.
class ResponseDecoder {
 public:
  explicit ResponseDecoder(std::uint32_t max_frame_bytes) noexcept
      : reader_(kResponsePayloadBytes, max_frame_bytes) {}

  void feed(const std::uint8_t* data, std::size_t n) { reader_.feed(data, n); }

  DecodeStatus next(Response& out) {
    const DecodeStatus st = reader_.next(payload_);
    if (st != DecodeStatus::kFrame) return st;
    const std::uint8_t status = payload_[0];
    if ((status & ~std::uint8_t{1}) != 0) {  // reserved bits must be zero
      reader_.poison();
      return DecodeStatus::kError;
    }
    out.won = (status & 1) != 0;
    out.id = get_u64(payload_.data() + 1);
    out.value = get_u64(payload_.data() + 9);
    out.round = get_u64(payload_.data() + 17);
    out.shard = get_u32(payload_.data() + 25);
    return DecodeStatus::kFrame;
  }

  [[nodiscard]] std::size_t buffered() const noexcept { return reader_.buffered(); }

 private:
  FrameReader reader_;
  std::vector<std::uint8_t> payload_;
};

}  // namespace crcw::serve::wire
