// ServeSession — the embeddable front door of src/serve.
//
// Owns the whole engine (queue → scheduler → table) and gives clients
// three ways to drive it:
//   * submit(op, future) + wait(future): raw async, for callers running
//     their own pump (poll()/flush()) or the background pump;
//   * call(op): synchronous convenience — submits, then self-pumps until
//     the result lands, so a single-threaded caller never deadlocks
//     waiting for a pump that does not exist;
//   * start_pump()/stop_pump(): a background thread that polls on the
//     deadline cadence — the "service" deployment shape.
//
// Ownership contract: OpFuture storage belongs to the client and must
// stay pinned from submit until ready() (the engine holds a raw pointer
// across the round). The destructor stops the pump and flushes, so no
// submitted op is ever left unpublished.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

#include "serve/batch_scheduler.hpp"
#include "serve/op.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_metrics.hpp"

namespace crcw::serve {

class ServeSession {
 public:
  explicit ServeSession(const BatchConfig& cfg = {})
      : cfg_(cfg),
        metrics_(cfg.counters),
        queue_(cfg.resolved_lanes(), cfg.resolved_lane_backlog(), cfg.backoff_spins,
               cfg.sample_mask()),
        scheduler_(cfg_, queue_, metrics_) {}

  ServeSession(const ServeSession&) = delete;
  ServeSession& operator=(const ServeSession&) = delete;

  ~ServeSession() {
    stop_pump();
    flush();
  }

  // -- async client API -----------------------------------------------------

  /// Re-arms `future` and admits `op`. A full lane blocks but never
  /// deadlocks: the submitter helps pump (force-closing a batch) until
  /// its lane has room, so even a pump-less session stays live under
  /// arbitrary backlog.
  void submit(const Op& op, OpFuture& future) {
    future.reset();
    BackoffState backoff(cfg_.backoff_spins);
    while (!queue_.try_enqueue(op, future)) {
      if (scheduler_.flush()) {
        backoff.reset();
      } else {
        backoff.pause();  // another pump holds the lock; wait for its drain
      }
    }
  }

  /// Blocks until `future` completes. Requires a live pump (background
  /// pump, or another thread calling poll()/flush()) — a lone thread
  /// should use call() instead.
  const Result& wait(const OpFuture& future) const {
    BackoffState backoff(cfg_.backoff_spins);
    while (!future.ready()) backoff.pause();
    return future.result();
  }

  /// Synchronous round trip: submit, then pump until the result lands.
  /// Works with or without other pumps; the deadline trigger bounds how
  /// long a lone op waits for a round (≤ max_wait_us per poll pass).
  Result call(const Op& op) {
    OpFuture future;
    submit(op, future);
    BackoffState backoff(cfg_.backoff_spins);
    while (!future.ready()) {
      if (scheduler_.poll()) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    return future.result();
  }

  // -- pump -----------------------------------------------------------------

  /// One admission check; true iff a batch ran (any thread may call).
  bool poll() { return scheduler_.poll(); }

  /// Drains until the queue is empty (loops: clients may still be adding).
  /// Backs off while another pump holds the lock instead of spinning hot.
  void flush() {
    BackoffState backoff(cfg_.backoff_spins);
    for (;;) {
      if (scheduler_.flush()) {
        backoff.reset();
        continue;
      }
      if (queue_.pending() == 0) return;
      backoff.pause();
    }
  }

  /// Starts the background pump: polls on the deadline cadence so batches
  /// close by max_wait_us even with no client-side pumping. Idempotent.
  void start_pump() {
    if (pump_.joinable()) return;
    pump_stop_.store(false, std::memory_order_relaxed);
    pump_ = std::thread([this] {
      const auto idle_sleep =
          std::chrono::microseconds(cfg_.max_wait_us > 4 ? cfg_.max_wait_us / 4 : 1);
      while (!pump_stop_.load(std::memory_order_relaxed)) {
        if (!scheduler_.poll()) std::this_thread::sleep_for(idle_sleep);
      }
    });
  }

  /// Stops the background pump and flushes the residue. Idempotent.
  void stop_pump() {
    if (!pump_.joinable()) return;
    pump_stop_.store(true, std::memory_order_relaxed);
    pump_.join();
    flush();
  }

  [[nodiscard]] bool pump_running() const noexcept { return pump_.joinable(); }

  // -- committed state & introspection (serial / quiescent-pump) ------------

  /// The committed value for `key` after the rounds so far (post-flush);
  /// nullopt if the key is absent or erased.
  [[nodiscard]] std::optional<std::uint64_t> committed(std::uint64_t key) const {
    const std::uint64_t* v = scheduler_.committed(key);
    return v == nullptr ? std::nullopt : std::optional<std::uint64_t>(*v);
  }

  [[nodiscard]] std::uint64_t pending() const noexcept { return queue_.pending(); }
  [[nodiscard]] const BatchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ServeMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ServeMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] BatchScheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] const BatchScheduler& scheduler() const noexcept { return scheduler_; }

 private:
  BatchConfig cfg_;
  ServeMetrics metrics_;
  RequestQueue queue_;
  BatchScheduler scheduler_;
  std::thread pump_;
  std::atomic<bool> pump_stop_{false};
};

}  // namespace crcw::serve
