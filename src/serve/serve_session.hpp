// BasicServeSession — the embeddable front door of src/serve, templated
// over any ServiceBackend (service_backend.hpp).
//
// Owns the whole engine (queue → backend → table shards) and gives
// clients three ways to drive it:
//   * submit(op, future) + wait(future): raw async, for callers running
//     their own pump (poll()/flush()) or the background pump;
//   * call(op): synchronous convenience — submits, then self-pumps until
//     the result lands, so a single-threaded caller never deadlocks
//     waiting for a pump that does not exist;
//   * start_pump()/stop_pump(): a background thread that polls on the
//     deadline cadence — the "service" deployment shape.
//
// The session routes every submit through backend.route(key), which is
// where lane→shard affinity happens: on the sharded backend an op lands
// in a lane owned by its key's shard, so the drained batch is shard-local
// without any re-sort.
//
// Ownership contract: OpFuture storage belongs to the client and must
// stay pinned from submit until ready() (the engine holds a raw pointer
// across the round). The destructor stops the pump and flushes, so no
// submitted op is ever left unpublished.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "serve/batch_scheduler.hpp"
#include "serve/config.hpp"
#include "serve/op.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/service_backend.hpp"
#include "serve/sharded_scheduler.hpp"
#include "snap/checkpointer.hpp"

namespace crcw::serve {

template <ServiceBackend Backend>
class BasicServeSession {
 public:
  explicit BasicServeSession(const ServeConfig& cfg = {})
      : cfg_(cfg.validated()),
        metrics_(cfg_.batch.counters),
        queue_(Backend::queue_lanes(cfg_), cfg_.batch.resolved_lane_backlog(),
               cfg_.batch.backoff_spins, cfg_.batch.sample_mask()),
        backend_(cfg_, queue_, metrics_) {}

  BasicServeSession(const BasicServeSession&) = delete;
  BasicServeSession& operator=(const BasicServeSession&) = delete;

  ~BasicServeSession() {
    stop_pump();
    flush();
  }

  // -- async client API -----------------------------------------------------

  /// Re-arms `future` and admits `op` into its routed lane. A full lane
  /// blocks but never deadlocks: the submitter helps pump (force-closing
  /// a batch) until its lane has room, so even a pump-less session stays
  /// live under arbitrary backlog.
  void submit(const Op& op, OpFuture& future) {
    future.reset();
    const std::size_t lane = backend_.route(op.key);
    BackoffState backoff(cfg_.batch.backoff_spins);
    while (!queue_.try_enqueue(op, future, lane)) {
      if (backend_.flush()) {
        backoff.reset();
      } else {
        backoff.pause();  // another pump holds the lock; wait for its drain
      }
    }
  }

  /// Blocks until `future` completes. Requires a live pump (background
  /// pump, or another thread calling poll()/flush()) — a lone thread
  /// should use call() instead.
  const Result& wait(const OpFuture& future) const {
    BackoffState backoff(cfg_.batch.backoff_spins);
    while (!future.ready()) backoff.pause();
    return future.result();
  }

  /// Synchronous round trip: submit, then pump until the result lands.
  /// Works with or without other pumps; the deadline trigger bounds how
  /// long a lone op waits for a round (≤ max_wait_us per poll pass).
  Result call(const Op& op) {
    OpFuture future;
    submit(op, future);
    BackoffState backoff(cfg_.batch.backoff_spins);
    while (!future.ready()) {
      if (backend_.submit_batch()) {
        backoff.reset();
      } else {
        backoff.pause();
      }
    }
    return future.result();
  }

  // -- pump -----------------------------------------------------------------

  /// One admission check; true iff a batch ran (any thread may call).
  bool poll() { return backend_.submit_batch(); }

  /// Drains until the queue is empty (loops: clients may still be adding).
  /// Backs off while another pump holds the lock instead of spinning hot.
  void flush() {
    BackoffState backoff(cfg_.batch.backoff_spins);
    for (;;) {
      if (backend_.flush()) {
        backoff.reset();
        continue;
      }
      if (queue_.pending() == 0) return;
      backoff.pause();
    }
  }

  /// Starts the background pump: polls on the deadline cadence so batches
  /// close by max_wait_us even with no client-side pumping. Idempotent.
  void start_pump() {
    if (pump_.joinable()) return;
    pump_stop_.store(false, std::memory_order_relaxed);
    pump_ = std::thread([this] {
      const auto idle_sleep = std::chrono::microseconds(
          cfg_.batch.max_wait_us > 4 ? cfg_.batch.max_wait_us / 4 : 1);
      while (!pump_stop_.load(std::memory_order_relaxed)) {
        if (!backend_.submit_batch()) std::this_thread::sleep_for(idle_sleep);
      }
    });
  }

  /// Stops the background pump and flushes the residue. Idempotent.
  void stop_pump() {
    if (!pump_.joinable()) return;
    pump_stop_.store(true, std::memory_order_relaxed);
    pump_.join();
    flush();
  }

  [[nodiscard]] bool pump_running() const noexcept { return pump_.joinable(); }

  // -- committed state & introspection (serial / quiescent-pump) ------------

  /// The committed value for `key` after the rounds so far (post-flush);
  /// nullopt if the key is absent or erased.
  [[nodiscard]] std::optional<std::uint64_t> committed(std::uint64_t key) const {
    const std::uint64_t* v = backend_.committed_read(key);
    return v == nullptr ? std::nullopt : std::optional<std::uint64_t>(*v);
  }

  [[nodiscard]] std::uint64_t pending() const noexcept { return queue_.pending(); }
  [[nodiscard]] const ServeConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] ServeMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] const ServeMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] Backend& backend() noexcept { return backend_; }
  [[nodiscard]] const Backend& backend() const noexcept { return backend_; }
  [[nodiscard]] BackendStats stats() const noexcept { return backend_.stats(); }

 private:
  ServeConfig cfg_;
  ServeMetrics metrics_;
  RequestQueue queue_;
  Backend backend_;
  std::thread pump_;
  std::atomic<bool> pump_stop_{false};
};

/// The single-table shape every pre-sharding call site used.
using ServeSession = BasicServeSession<BatchScheduler>;
/// The key-sharded shape (ShardConfig::count shards, lane→shard affinity).
using ShardedServeSession = BasicServeSession<ShardedScheduler>;

/// ClientSession — a per-client read-your-writes view over any session.
//
// Tracks the client's last committed WRITE round per shard (from the
// Results it observes) and guarantees that every lookup it returns
// executed in a strictly later round on that key's shard — i.e. the
// lookup saw this client's own preceding writes. The sync call() path
// already gets this ordering from the batch lifecycle (a lookup submitted
// after a write completed can only drain into a later round); the tracked
// round makes the guarantee *checked*, and for pipelined wire clients
// (wire_client.hpp reimplements the same protocol from Response frames)
// the retry is load-bearing: a lookup racing its own write into one round
// gets re-submitted until it lands later.
//
// One ClientSession per client thread (it is plain mutable state); many
// may share one session.
template <typename Session>
class ClientSession {
 public:
  explicit ClientSession(Session& session)
      : session_(session),
        last_write_round_(
            static_cast<std::size_t>(session.backend().shard_count()), 0) {}

  /// Synchronous round trip with read-your-writes: writes record their
  /// committed round; lookups retry (stale_retries() counts) until their
  /// round is strictly later than this client's last write on the shard.
  Result call(const Op& op) {
    const auto shard = static_cast<std::size_t>(session_.backend().shard_of(op.key));
    if (op.kind == OpKind::kLookup) {
      for (;;) {
        const Result r = session_.call(op);
        if (r.round > last_write_round_[shard]) return r;
        ++stale_retries_;
      }
    }
    const Result r = session_.call(op);
    // Snapshot kinds are not writes (the schedulers reject them; the wire
    // server answers them out-of-round) — folding their rejection round
    // into the tracker would wedge every later lookup behind a round that
    // never committed for this client.
    if (!is_snapshot_op(op.kind) && r.round > last_write_round_[shard]) {
      last_write_round_[shard] = r.round;
    }
    return r;
  }

  /// Consistent-scan digest of the session's committed state at a fresh
  /// cut — the in-process twin of WireClient::snapshot_scan (same fold,
  /// same digest for the same committed state).
  [[nodiscard]] snap::ScanDigest snapshot_scan() {
    return snap::scan_digest(session_.backend());
  }

  /// Folds an asynchronously-completed write Result into the tracker (for
  /// clients that pipeline through submit/wait and only need the tracked
  /// rounds, not the retry loop).
  void observe_write(std::uint64_t key, const Result& r) {
    const auto shard = static_cast<std::size_t>(session_.backend().shard_of(key));
    if (r.round > last_write_round_[shard]) last_write_round_[shard] = r.round;
  }

  /// The last committed write round this client observed on `shard`.
  [[nodiscard]] round_t last_write_round(int shard) const {
    return last_write_round_[static_cast<std::size_t>(shard)];
  }
  /// Lookups that had to retry because they landed in a round at or
  /// before this client's last write (0 on the sync path by design).
  [[nodiscard]] std::uint64_t stale_retries() const noexcept { return stale_retries_; }

 private:
  Session& session_;
  std::vector<round_t> last_write_round_;
  std::uint64_t stale_retries_ = 0;
};

}  // namespace crcw::serve
