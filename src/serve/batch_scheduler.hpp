// BatchScheduler — maps admitted client traffic onto CRCW rounds.
//
// Lifecycle of one batch (the admission→round→commit diagram in
// docs/architecture.md):
//
//   clients ──enqueue──▶ RequestQueue lanes
//                           │ size trigger (pending ≥ max_batch) or
//                           │ deadline trigger (oldest wait ≥ max_wait_us)
//                           ▼
//                    drain → slice into rounds of ≤ max_batch
//                           ▼ per slice:
//          WriteArbiter::next_round (round r opens)
//          phase A  lookups read state committed in rounds < r
//          ── barrier ──
//          phase B  upserts/erases race the per-bucket CAS-LT at round r
//          ── barrier ──
//          phase C  every write op reads the value round r committed,
//                   publishes Result{value, won, r} into its OpFuture
//
// The barriers give the committed-read contract for free: a lookup
// admitted into round r can never observe a round-r write, and every
// loser of a round-r race observes the winner's value — the paper's
// wait-free loser guarantee lifted to the request API.
//
// Concurrency shape: clients only touch the queue and their futures; the
// table, arbiter and histograms are touched only between pump_lock_
// acquire/release, so any number of threads may call submit_batch()/
// flush() concurrently and exactly one executes. With exec_threads == 1
// the three phases run serially with no OpenMP region at all — the mode
// the raw-thread TSan stress tier drives (OpenMP barriers are invisible
// to TSan).
//
// BatchScheduler is the single-table ServiceBackend; the key-sharded
// sibling is ShardedScheduler (sharded_scheduler.hpp). BasicServeSession
// templates over either through the concept in service_backend.hpp.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/arbiter.hpp"
#include "core/policies.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "serve/config.hpp"
#include "serve/op.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/service_backend.hpp"
#include "snap/cut.hpp"
#include "snap/snapshot_file.hpp"
#include "util/backoff.hpp"

namespace crcw::serve {

class BatchScheduler {
 public:
  /// Payload is the bare value: liveness lives in the table itself (the
  /// bucket's LiveTag), so a phase-B erase is a real table erase racing
  /// same-round upserts on one CAS — not a value write carrying a
  /// side-channel `live` flag that find() callers must re-check.
  using Table = ds::ConcurrentHashMap<std::uint64_t, std::uint64_t>;

  BatchScheduler(const ServeConfig& cfg, RequestQueue& queue, ServeMetrics& metrics)
      : cfg_(cfg.batch),
        threads_(cfg.batch.resolved_threads()),
        queue_(queue),
        metrics_(metrics),
        map_(cfg.table.expected_keys, cfg.table.hash_config("serve-table")) {}

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// How many queue lanes this backend wants for `cfg` (the session sizes
  /// the RequestQueue before constructing the backend).
  [[nodiscard]] static int queue_lanes(const ServeConfig& cfg) noexcept {
    return cfg.batch.resolved_lanes();
  }

  /// Runs one batch if an admission trigger fired (size or deadline).
  /// Returns true iff this call executed at least one round. Safe to call
  /// from any number of threads; losers of the pump race return false.
  bool submit_batch() { return run_batch(false); }

  /// Unconditionally drains and executes everything pending (one call =
  /// one drain; callers loop while clients are still enqueuing).
  bool flush() { return run_batch(true); }

  // -- committed state (serial / quiescent-pump reads) ----------------------
  /// The committed value for `key`, or nullptr if absent or erased —
  /// find() is already live-qualified, erased keys are simply not found.
  [[nodiscard]] const std::uint64_t* committed_read(std::uint64_t key) const noexcept {
    return map_.find(key);
  }
  [[nodiscard]] const Table& table() const noexcept { return map_; }
  [[nodiscard]] Table& table() noexcept { return map_; }

  // -- routing (trivial: one shard, no lane preference) ---------------------
  [[nodiscard]] int shard_count() const noexcept { return 1; }
  [[nodiscard]] int shard_of(std::uint64_t) const noexcept { return 0; }
  [[nodiscard]] std::size_t route(std::uint64_t) const noexcept {
    return RequestQueue::kAnyLane;
  }

  // -- snapshots (src/snap): cuts, cut-predicated scans, restore ------------
  static constexpr std::uint32_t kSnapshotKind = snap::kKindKv;

  /// Mints a consistent cut: parks the pump just long enough to read the
  /// round (no batch in flight while the lock is held, so every write
  /// <= that round is committed and visible), registers the hold, and
  /// lets the pump resume. Scans against the cut then run CONCURRENTLY
  /// with later batches — the hold only parks grow/reclaim (the batch
  /// epilog checks cuts_held()), never writers. Pair with release_cut()
  /// or snap::HeldCut.
  [[nodiscard]] snap::SnapshotCut mint_cut() {
    util::Backoff backoff;
    while (pump_lock_.test_and_set(std::memory_order_acquire)) backoff.pause();
    const snap::SnapshotCut cut{arbiter_.round(), 1};
    cuts_held_.fetch_add(1, std::memory_order_acq_rel);
    pump_lock_.clear(std::memory_order_release);
    return cut;
  }

  void release_cut() noexcept { cuts_held_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Cuts currently held against this backend (maintenance parks on > 0).
  [[nodiscard]] std::uint64_t cuts_held() const noexcept {
    return cuts_held_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t snapshot_shards() const noexcept { return 1; }

  /// Backend shape baked into snapshot headers; restore refuses files from
  /// a differently-shaped server.
  [[nodiscard]] std::uint64_t config_digest() const noexcept {
    return ds::mix64(kSnapshotKind + 1) ^ ds::mix64(1);
  }

  /// Cut-predicated scan of this backend's single shard; fn(key, value,
  /// round). Safe concurrently with later rounds while the cut is held.
  template <typename Fn>
  void scan_shard_at(std::uint32_t, round_t cut_round, Fn&& fn) const {
    map_.for_each_at(cut_round, std::forward<Fn>(fn));
  }

  /// Serial restore of one snapshot entry (before serving starts).
  bool restore_entry(std::uint32_t, std::uint64_t key, std::uint64_t value,
                     round_t round) {
    return map_.restore_slot(key, value, round);
  }

  /// Serial: continues the committed round sequence after restore.
  void reseed_round(round_t r) { arbiter_.reseed_round(r); }

  // -- stats ----------------------------------------------------------------
  [[nodiscard]] round_t round() const noexcept { return arbiter_.round(); }
  [[nodiscard]] std::uint64_t batches() const noexcept {
    return batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deadline_batches() const noexcept {
    return deadline_batches_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t ops_served() const noexcept {
    return ops_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int exec_threads() const noexcept { return threads_; }

  [[nodiscard]] BackendStats stats() const noexcept {
    BackendStats s;
    s.rounds = round();
    s.batches = batches();
    s.deadline_batches = deadline_batches();
    s.ops_served = ops_served();
    s.keys = map_.size();
    s.shards = 1;
    return s;
  }

 private:
  bool run_batch(bool force) {
    bool by_deadline = false;
    if (!force && !trigger_fired(by_deadline)) return false;
    if (pump_lock_.test_and_set(std::memory_order_acquire)) return false;
    scratch_.clear();
    const std::uint64_t drained = queue_.drain_into(scratch_);
    bool executed = false;
    if (drained > 0) {
      // A drain larger than max_batch becomes several rounds — batch
      // boundaries are deterministic in admission order, which is what
      // tests/test_serve.cpp pins.
      for (std::size_t begin = 0; begin < scratch_.size(); begin += cfg_.max_batch) {
        const std::size_t n =
            std::min<std::size_t>(cfg_.max_batch, scratch_.size() - begin);
        execute_round(&scratch_[begin], n);
      }
      batches_.fetch_add(1, std::memory_order_relaxed);
      if (by_deadline) deadline_batches_.fetch_add(1, std::memory_order_relaxed);
      ops_served_.fetch_add(drained, std::memory_order_relaxed);
      metrics_.batch_closed();
      // Batch boundary = step boundary: if churn tombstoned enough of the
      // table (reclaim_ratio watermark) — or its own probe telemetry says
      // walks degraded past the signal thresholds — rebuild it now: no
      // round is in flight, the pump lock is held, and the next batch
      // starts against a table sized for its live keys. Parked while any
      // snapshot cut is held: reclaim frees the bucket array a concurrent
      // scan_shard_at may still be walking.
      if (cuts_held() == 0) {
        map_.maybe_reclaim_parallel(threads_, map_.telemetry_signal());
      }
      executed = true;
    }
    pump_lock_.clear(std::memory_order_release);
    return executed;
  }

  [[nodiscard]] bool trigger_fired(bool& by_deadline) const noexcept {
    const std::uint64_t pending = queue_.pending();
    if (pending == 0) return false;
    if (pending >= cfg_.max_batch) return true;
    const std::uint64_t oldest = queue_.oldest_enqueue_ns();
    by_deadline = oldest != 0 && now_ns() - oldest >= cfg_.max_wait_us * 1000;
    return by_deadline;
  }

  /// One CRCW round over records[0..n): partition, reserve, arbitrate,
  /// commit. Runs entirely under pump_lock_.
  void execute_round(Record* records, std::size_t n) {
    admit_ns_ = now_ns();
    lookups_.clear();
    writes_.clear();
    // Admission pass: latency sample, sentinel rejection, and — only for
    // the parallel path — the index partition the omp loops need. The
    // serial path sweeps `records` directly and just counts.
    const bool parallel = threads_ > 1;
    std::size_t lookup_count = 0;
    std::size_t write_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (records[i].enqueue_ns != 0) {  // sampled (see BatchConfig)
        metrics_.record_admit(records[i].enqueue_ns, admit_ns_);
      }
      if (records[i].op.key == Table::kEmptyKey || is_stream_op(records[i].op.kind) ||
          is_snapshot_op(records[i].op.kind)) {
        // The reserved sentinel key can never live in the table, the
        // stream vocabulary belongs to the streaming backend, and the
        // snapshot kinds are answered by the wire server without entering
        // a round — fail all three here instead of letting the table
        // throw mid-region.
        publish(records[i], Result{0, false, arbiter_.round() + 1});
        continue;
      }
      if (records[i].op.kind == OpKind::kLookup) {
        ++lookup_count;
        if (parallel) lookups_.push_back(i);
      } else {
        ++write_count;
        if (parallel) writes_.push_back(i);
      }
    }
    metrics_.ops_admitted(n);

    // Backlog-sized reservation: one grow big enough for every write in
    // this round (ROADMAP "resize-storm tail"), so phase B cannot see
    // kFull — the round has no retry path for a full table. Parked while
    // a snapshot cut is held (grow frees the old bucket array under a
    // live scan); callers sizing tables for checkpoint workloads pre-size
    // via TableConfig::expected_keys.
    if (cuts_held() == 0) map_.maybe_grow_for_backlog(write_count, threads_);

    const auto scope = arbiter_.next_round(ResetMode::kNone);
    const round_t r = scope.round();
    std::atomic<std::uint64_t> full{0};
    std::uint64_t wins = 0;

    if (!parallel) {
      if (lookup_count > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          const Record& rec = records[i];
          if (rec.op.kind != OpKind::kLookup || rec.op.key == Table::kEmptyKey) {
            continue;
          }
          const std::uint64_t* v = map_.find(rec.op.key);
          publish(rec, Result{v != nullptr ? *v : 0, v != nullptr, r});
        }
      }
      // Serial fold of phases B+C: in admission order the first same-key
      // write is the (key, round) winner and the committed outcome never
      // changes again within the round, so every op can publish the moment
      // its write returns — the separate commit sweep (and its second
      // probe per op) exists only to cross the parallel barrier.
      for (std::size_t i = 0; i < n; ++i) {
        const Record& rec = records[i];
        if (rec.op.kind != OpKind::kUpsert && rec.op.kind != OpKind::kErase) continue;
        if (rec.op.key == Table::kEmptyKey) continue;
        const bool is_erase = rec.op.kind == OpKind::kErase;
        const ds::MapUpsert outcome = is_erase
                                          ? map_.erase(r, rec.op.key)
                                          : map_.upsert(r, rec.op.key, rec.op.value);
        switch (outcome) {
          case ds::MapUpsert::kWon:
            ++wins;
            publish(rec, Result{is_erase ? 0 : rec.op.value, true, r});
            break;
          case ds::MapUpsert::kLost: {
            const std::uint64_t* v = map_.find(rec.op.key);
            publish(rec, Result{v != nullptr ? *v : 0, false, r});
            break;
          }
          case ds::MapUpsert::kFull:
            full.fetch_add(1, std::memory_order_relaxed);
            publish(rec, Result{0, false, r});
            break;
        }
      }
    } else {
      won_.assign(writes_.size(), 0);
      const auto n_lookup = static_cast<std::ptrdiff_t>(lookups_.size());
      const auto n_write = static_cast<std::ptrdiff_t>(writes_.size());
#pragma omp parallel num_threads(threads_)
      {
#pragma omp for schedule(static)
        for (std::ptrdiff_t i = 0; i < n_lookup; ++i) {
          do_lookup(records, static_cast<std::size_t>(i), r);
        }
        // implicit barrier: phase A's committed reads are closed
#pragma omp for schedule(static)
        for (std::ptrdiff_t i = 0; i < n_write; ++i) {
          do_write(records, static_cast<std::size_t>(i), r, full);
        }
        // implicit barrier: round r is committed, losers may read
#pragma omp for schedule(static)
        for (std::ptrdiff_t i = 0; i < n_write; ++i) {
          do_commit(records, static_cast<std::size_t>(i), r);
        }
      }
      for (const unsigned char w : won_) wins += w;
    }
    if (full.load(std::memory_order_relaxed) != 0) {
      throw std::runtime_error("serve: table full despite backlog reservation");
    }

    metrics_.write_wins(wins);
    metrics_.flush_round();
    map_.flush_round();
  }

  /// Phase A: committed read — everything visible here was committed in
  /// rounds < r (the round-r writes are behind a barrier).
  void do_lookup(Record* records, std::size_t i, round_t r) {
    const Record& rec = records[lookups_[i]];
    const std::uint64_t* v = map_.find(rec.op.key);
    publish(rec, Result{v != nullptr ? *v : 0, v != nullptr, r});
  }

  /// Phase B: the concurrent-write step — same-key upserts AND erases race
  /// the bucket's one CAS-LT, so an erase/upsert pair on one key resolves
  /// to exactly one committed outcome (the paper's arbitrary-CW pick).
  void do_write(Record* records, std::size_t i, round_t r,
                std::atomic<std::uint64_t>& full) {
    const Record& rec = records[writes_[i]];
    const ds::MapUpsert outcome = rec.op.kind == OpKind::kErase
                                      ? map_.erase(r, rec.op.key)
                                      : map_.upsert(r, rec.op.key, rec.op.value);
    switch (outcome) {
      case ds::MapUpsert::kWon:
        won_[i] = 1;
        break;
      case ds::MapUpsert::kLost:
        break;
      case ds::MapUpsert::kFull:
        full.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  /// Phase C: every write op — winner or loser — observes what round r
  /// committed for its key, and its future completes. An erased key is
  /// simply absent (find() is live-qualified).
  void do_commit(Record* records, std::size_t i, round_t r) {
    const Record& rec = records[writes_[i]];
    const std::uint64_t* v = map_.find(rec.op.key);
    publish(rec, Result{v != nullptr ? *v : 0, won_[i] != 0, r});
  }

  void publish(const Record& rec, const Result& result) {
    if (rec.enqueue_ns != 0) {  // sampled (see BatchConfig)
      metrics_.record_commit(rec.enqueue_ns, admit_ns_, now_ns());
    }
    rec.future->publish(result);
  }

  BatchConfig cfg_;
  int threads_;
  RequestQueue& queue_;
  ServeMetrics& metrics_;
  Table map_;
  // Zero tags: the arbiter is the round authority only — per-key tags live
  // inside the table's buckets. CAS-LT never needs a reset sweep
  // (kNeedsRoundReset == false), so next_round(kNone) is one increment.
  WriteArbiter<CasLtPolicy> arbiter_{0};
  std::atomic_flag pump_lock_;
  // Snapshot cuts currently held (mint_cut/release_cut). While > 0 the
  // batch epilog skips reclaim and backlog grow — both free the bucket
  // array that concurrent cut-predicated scans are walking.
  std::atomic<std::uint64_t> cuts_held_{0};

  // Pump-private scratch (only touched under pump_lock_).
  std::vector<Record> scratch_;
  std::vector<std::size_t> lookups_;
  std::vector<std::size_t> writes_;
  std::vector<unsigned char> won_;
  std::uint64_t admit_ns_ = 0;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> deadline_batches_{0};
  std::atomic<std::uint64_t> ops_served_{0};
};

}  // namespace crcw::serve
