#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace crcw::graph {

Csr::Csr(std::vector<edge_t> offsets, std::vector<vertex_t> targets)
    : offsets_(std::move(offsets)), targets_(std::move(targets)) {
  if (offsets_.empty()) {
    if (!targets_.empty()) throw std::invalid_argument("CSR: targets without offsets");
    return;
  }
  validate();
}

void Csr::validate() const {
  if (offsets_.empty()) {
    if (!targets_.empty()) throw std::invalid_argument("CSR: targets without offsets");
    return;
  }
  if (offsets_.front() != 0) throw std::invalid_argument("CSR: offsets[0] != 0");
  if (offsets_.back() != targets_.size()) {
    throw std::invalid_argument("CSR: offsets back " + std::to_string(offsets_.back()) +
                                " != edge count " + std::to_string(targets_.size()));
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      throw std::invalid_argument("CSR: offsets not monotone at vertex " +
                                  std::to_string(i - 1));
    }
  }
  const auto n = static_cast<vertex_t>(num_vertices());
  for (std::size_t e = 0; e < targets_.size(); ++e) {
    if (targets_[e] >= n) {
      throw std::invalid_argument("CSR: edge " + std::to_string(e) + " targets vertex " +
                                  std::to_string(targets_[e]) + " >= " + std::to_string(n));
    }
  }
}

bool Csr::has_edge(vertex_t u, vertex_t v) const {
  const auto adj = neighbors(u);
  if (std::is_sorted(adj.begin(), adj.end())) {
    return std::binary_search(adj.begin(), adj.end(), v);
  }
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::uint64_t Csr::max_degree() const {
  std::uint64_t best = 0;
  for (vertex_t v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

double Csr::average_degree() const {
  const std::uint64_t n = num_vertices();
  if (n == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(n);
}

}  // namespace crcw::graph
