// Compressed-sparse-row graphs — the substrate for the BFS and CC kernels.
//
// Matches the layout of the paper's Figure 3 (`V[]` offsets into `E[]`
// destination ids) with 64-bit offsets so edge counts past 2^32 work.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crcw::graph {

using vertex_t = std::uint32_t;
using edge_t = std::uint64_t;

/// Invalid-vertex sentinel (the paper's `-1` initialiser for Parent[]).
inline constexpr vertex_t kNoVertex = static_cast<vertex_t>(-1);

struct Edge {
  vertex_t u = 0;
  vertex_t v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

/// Immutable CSR adjacency structure. For undirected graphs every edge is
/// stored in both directions, so num_edges() counts directed edge slots
/// (2× the undirected edge count).
class Csr {
 public:
  Csr() = default;

  /// Takes ownership of a validated offsets/targets pair.
  /// Throws std::invalid_argument when the arrays are inconsistent.
  Csr(std::vector<edge_t> offsets, std::vector<vertex_t> targets);

  [[nodiscard]] std::uint64_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  [[nodiscard]] std::uint64_t num_edges() const noexcept { return targets_.size(); }

  [[nodiscard]] edge_t offset(vertex_t v) const { return offsets_[v]; }

  [[nodiscard]] std::uint64_t degree(vertex_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return {targets_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Raw arrays — the kernels iterate these directly, exactly like Fig 3.
  [[nodiscard]] std::span<const edge_t> offsets() const noexcept { return offsets_; }
  [[nodiscard]] std::span<const vertex_t> targets() const noexcept { return targets_; }

  /// True iff the directed edge (u → v) exists (binary search if sorted,
  /// linear otherwise). For verifying BFS parents.
  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const;

  /// Structural invariants: monotone offsets, in-range targets.
  /// Throws std::invalid_argument with a description on failure.
  void validate() const;

  [[nodiscard]] std::uint64_t max_degree() const;
  [[nodiscard]] double average_degree() const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  std::vector<edge_t> offsets_;    // size n+1; offsets_[n] == m
  std::vector<vertex_t> targets_;  // size m
};

}  // namespace crcw::graph
