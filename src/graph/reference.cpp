#include "graph/reference.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace crcw::graph {

std::vector<std::int64_t> bfs_levels(const Csr& g, vertex_t source) {
  const std::uint64_t n = g.num_vertices();
  if (source >= n) throw std::invalid_argument("bfs_levels: source out of range");
  std::vector<std::int64_t> level(n, -1);
  std::queue<vertex_t> queue;
  level[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const vertex_t v = queue.front();
    queue.pop();
    for (const vertex_t u : g.neighbors(v)) {
      if (level[u] == -1) {
        level[u] = level[v] + 1;
        queue.push(u);
      }
    }
  }
  return level;
}

UnionFind::UnionFind(std::uint64_t n)
    : parent_(n), size_(n, 1), sets_(n) {
  for (std::uint64_t i = 0; i < n; ++i) parent_[i] = static_cast<vertex_t>(i);
}

vertex_t UnionFind::find(vertex_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(vertex_t a, vertex_t b) {
  vertex_t ra = find(a);
  vertex_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --sets_;
  return true;
}

std::vector<vertex_t> connected_components(const Csr& g) {
  const std::uint64_t n = g.num_vertices();
  UnionFind uf(n);
  for (vertex_t u = 0; u < n; ++u) {
    for (const vertex_t v : g.neighbors(u)) uf.unite(u, v);
  }
  // Smallest vertex in each set becomes the canonical label.
  std::vector<vertex_t> label(n, kNoVertex);
  for (vertex_t v = 0; v < n; ++v) {
    const vertex_t root = uf.find(v);
    if (label[root] == kNoVertex) label[root] = v;  // v ascending ⇒ first is smallest
  }
  std::vector<vertex_t> out(n);
  for (vertex_t v = 0; v < n; ++v) out[v] = label[uf.find(v)];
  return out;
}

std::uint64_t count_components(const Csr& g) {
  const std::uint64_t n = g.num_vertices();
  UnionFind uf(n);
  for (vertex_t u = 0; u < n; ++u) {
    for (const vertex_t v : g.neighbors(u)) uf.unite(u, v);
  }
  return uf.num_sets();
}

std::vector<vertex_t> canonicalize_labels(std::span<const vertex_t> labels) {
  const std::uint64_t n = labels.size();
  // smallest vertex id carrying each label value
  std::vector<vertex_t> smallest(n, kNoVertex);
  for (std::uint64_t v = 0; v < n; ++v) {
    const vertex_t l = labels[v];
    if (l >= n) throw std::invalid_argument("canonicalize_labels: label out of range");
    if (smallest[l] == kNoVertex) smallest[l] = static_cast<vertex_t>(v);
  }
  std::vector<vertex_t> out(n);
  for (std::uint64_t v = 0; v < n; ++v) out[v] = smallest[labels[v]];
  return out;
}

bool validate_bfs_tree(const Csr& g, vertex_t source, std::span<const std::int64_t> level,
                       std::span<const vertex_t> parent) {
  const std::uint64_t n = g.num_vertices();
  if (level.size() != n || parent.size() != n) return false;

  const auto expected = bfs_levels(g, source);
  for (std::uint64_t v = 0; v < n; ++v) {
    if (level[v] != expected[v]) return false;
  }

  for (std::uint64_t v = 0; v < n; ++v) {
    if (v == source) {
      if (level[v] != 0) return false;
      continue;
    }
    if (level[v] == -1) {
      if (parent[v] != kNoVertex) return false;
      continue;
    }
    const vertex_t p = parent[v];
    if (p >= n) return false;
    if (level[p] != level[v] - 1) return false;
    if (!g.has_edge(p, static_cast<vertex_t>(v))) return false;
  }
  return true;
}

bool validate_components(const Csr& g, std::span<const vertex_t> labels) {
  if (labels.size() != g.num_vertices()) return false;
  for (const vertex_t l : labels) {
    if (l >= g.num_vertices()) return false;
  }
  return canonicalize_labels(labels) == connected_components(g);
}

}  // namespace crcw::graph
