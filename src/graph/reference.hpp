// Sequential reference algorithms and result verifiers.
//
// The arbitrary-CW kernels are non-deterministic in *which* parent/hook wins
// but deterministic in the quantities the paper measures (levels, component
// partitions). These references compute ground truth, and the verifiers
// check the non-deterministic parts structurally (a BFS parent must be a
// real edge from the previous level; a CC labelling must be a partition
// refinement-equal to union–find's).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::graph {

/// Sequential BFS; level[v] == -1 for unreachable vertices.
[[nodiscard]] std::vector<std::int64_t> bfs_levels(const Csr& g, vertex_t source);

/// Union–find with path halving + union by size.
class UnionFind {
 public:
  explicit UnionFind(std::uint64_t n);

  vertex_t find(vertex_t x);
  /// Returns true iff the two sets were distinct (i.e. a merge happened).
  bool unite(vertex_t a, vertex_t b);
  [[nodiscard]] std::uint64_t num_sets() const noexcept { return sets_; }

 private:
  std::vector<vertex_t> parent_;
  std::vector<std::uint32_t> size_;
  std::uint64_t sets_;
};

/// Canonical component labels: label[v] = smallest vertex id in v's
/// component. Deterministic, so two labelings can be compared directly.
[[nodiscard]] std::vector<vertex_t> connected_components(const Csr& g);

/// Number of connected components.
[[nodiscard]] std::uint64_t count_components(const Csr& g);

/// Canonicalises an arbitrary component labelling (any scheme where
/// label[u] == label[v] iff same component) to smallest-vertex form, so it
/// can be compared to connected_components(). Throws std::invalid_argument
/// on size mismatch.
[[nodiscard]] std::vector<vertex_t> canonicalize_labels(std::span<const vertex_t> labels);

/// Structural check of a CRCW BFS result:
///  * level[source] == 0 and levels match the sequential BFS exactly;
///  * for every reached non-source v, parent[v] is a real neighbour of v
///    with level[parent[v]] == level[v] - 1;
///  * unreachable vertices keep level == -1 and parent == kNoVertex.
/// Returns true iff all hold.
[[nodiscard]] bool validate_bfs_tree(const Csr& g, vertex_t source,
                                     std::span<const std::int64_t> level,
                                     std::span<const vertex_t> parent);

/// True iff `labels` induces exactly the connectivity partition of g.
[[nodiscard]] bool validate_components(const Csr& g, std::span<const vertex_t> labels);

}  // namespace crcw::graph
