// Seeded graph generators.
//
// The paper evaluates BFS and CC on "randomly-generated undirected graphs"
// with fixed vertex counts and swept edge counts (Figures 7–12) — that is
// the G(n, m) generator here. The structured families (path, star, grid,
// complete, planted components) exist for tests: they have closed-form
// answers (diameters, component counts) the suites assert against.
//
// All generators return undirected *edge lists*; build_csr symmetrises.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "util/rng.hpp"

namespace crcw::graph {

/// Deterministic Zipf(s) rank sampler over [0, n): P(k) ∝ 1/(k+1)^s — the
/// skewed-key shape of the streaming/traffic replays (rank 0 is the
/// hottest vertex). Sampling is a binary search over the precomputed CDF
/// (O(log n) per draw after O(n) setup), driven by an owned xoshiro
/// stream, so a (n, s, seed) triple always replays the same rank sequence.
/// s = 0 degenerates to uniform. Throws std::invalid_argument for n == 0
/// or a non-finite/negative s.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s, std::uint64_t seed);

  /// Next rank in [0, n).
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Exact probability of `rank` — the analytic pmf the chi-square smoke
  /// test checks the empirical counts against.
  [[nodiscard]] double probability(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return s_; }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P(rank <= k), cdf_.back() == 1
  double s_;
  util::Xoshiro256 rng_;
};

/// G(n, m): m edges sampled uniformly from all unordered pairs, excluding
/// self-loops; duplicates allowed (multigraph), matching the cheap sampling
/// the benchmark graphs use. Deterministic per seed.
[[nodiscard]] EdgeList gnm(std::uint64_t n, std::uint64_t m, std::uint64_t seed);

/// G(n, m) without duplicate edges (rejection sampling; requires m to be at
/// most the number of distinct pairs, else std::invalid_argument).
[[nodiscard]] EdgeList gnm_simple(std::uint64_t n, std::uint64_t m, std::uint64_t seed);

/// R-MAT (Chakrabarti et al.) power-law generator; n rounded up to a power
/// of two. Default parameters (0.57, 0.19, 0.19, 0.05) are the Graph500 mix.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d is the remainder 1 - a - b - c.
};
[[nodiscard]] EdgeList rmat(std::uint64_t n, std::uint64_t m, std::uint64_t seed,
                            const RmatParams& params = {});

/// Path 0—1—…—(n-1); diameter n-1 (worst case for level-synchronous BFS).
[[nodiscard]] EdgeList path(std::uint64_t n);

/// Cycle over n vertices.
[[nodiscard]] EdgeList cycle(std::uint64_t n);

/// Star with centre 0 and n-1 leaves — the maximum-contention topology: all
/// leaf writes collide on the centre's concurrent-write cell.
[[nodiscard]] EdgeList star(std::uint64_t n);

/// Complete graph K_n (n capped small in practice: Θ(n²) edges).
[[nodiscard]] EdgeList complete(std::uint64_t n);

/// rows×cols 4-neighbour grid.
[[nodiscard]] EdgeList grid2d(std::uint64_t rows, std::uint64_t cols);

/// Uniform random spanning tree over [0, n) (random attachment): each vertex
/// i >= 1 connects to a uniform earlier vertex. Connected by construction.
[[nodiscard]] EdgeList random_tree(std::uint64_t n, std::uint64_t seed);

/// k disjoint connected components, each `per_component` vertices (a random
/// tree plus `extra_edges_per_component` random intra-component edges).
/// Ground truth for CC tests: exactly k components.
[[nodiscard]] EdgeList planted_components(std::uint64_t k, std::uint64_t per_component,
                                          std::uint64_t extra_edges_per_component,
                                          std::uint64_t seed);

/// Convenience: G(n, m) edge list built straight into a symmetrised CSR —
/// the exact graphs of Figures 7–12.
[[nodiscard]] Csr random_graph(std::uint64_t n, std::uint64_t m, std::uint64_t seed);

}  // namespace crcw::graph
