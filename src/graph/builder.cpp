#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace crcw::graph {

Csr build_csr(std::uint64_t n, const EdgeList& edges, const BuildOptions& opts) {
  if (n > kNoVertex) throw std::invalid_argument("vertex count exceeds vertex_t");

  for (const auto& e : edges) {
    if (e.u >= n || e.v >= n) {
      throw std::invalid_argument("edge (" + std::to_string(e.u) + "," +
                                  std::to_string(e.v) + ") out of range for n=" +
                                  std::to_string(n));
    }
  }

  // Materialise directed slots (possibly doubled), then counting-sort by
  // source into the CSR arrays.
  EdgeList slots;
  slots.reserve(edges.size() * (opts.symmetrize ? 2 : 1));
  for (const auto& e : edges) {
    if (opts.remove_self_loops && e.u == e.v) continue;
    slots.push_back(e);
    if (opts.symmetrize && e.u != e.v) slots.push_back({e.v, e.u});
  }

  std::vector<edge_t> offsets(n + 1, 0);
  for (const auto& e : slots) ++offsets[e.u + 1];
  for (std::uint64_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  std::vector<vertex_t> targets(slots.size());
  std::vector<edge_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& e : slots) targets[cursor[e.u]++] = e.v;

  if (opts.sort_neighbors || opts.dedup) {
    for (std::uint64_t v = 0; v < n; ++v) {
      const auto begin = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto end = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::sort(begin, end);
    }
  }

  if (opts.dedup) {
    std::vector<edge_t> new_offsets(n + 1, 0);
    std::vector<vertex_t> new_targets;
    new_targets.reserve(targets.size());
    for (std::uint64_t v = 0; v < n; ++v) {
      const auto begin = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto end = targets.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      const auto out_begin = new_targets.size();
      std::unique_copy(begin, end, std::back_inserter(new_targets));
      new_offsets[v + 1] = new_offsets[v] + (new_targets.size() - out_begin);
    }
    return Csr(std::move(new_offsets), std::move(new_targets));
  }

  return Csr(std::move(offsets), std::move(targets));
}

EdgeList to_edge_list(const Csr& g) {
  EdgeList out;
  out.reserve(g.num_edges());
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    for (const vertex_t v : g.neighbors(u)) out.push_back({u, v});
  }
  return out;
}

}  // namespace crcw::graph
