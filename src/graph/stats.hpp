// Graph statistics — the numbers a benchmark report quotes about its
// inputs (degree distribution, components, collision-density estimates).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "graph/csr.hpp"

namespace crcw::graph {

struct GraphStats {
  std::uint64_t vertices = 0;
  std::uint64_t directed_slots = 0;  ///< CSR slots (2x undirected edges)
  std::uint64_t max_degree = 0;
  double avg_degree = 0.0;
  std::uint64_t isolated = 0;
  std::uint64_t self_loop_slots = 0;
  std::uint64_t components = 0;
  /// Histogram over log2 degree buckets: bucket b counts vertices with
  /// degree in [2^b, 2^(b+1)); bucket 0 additionally holds degree 1;
  /// isolated vertices are excluded (reported separately).
  std::vector<std::uint64_t> log_degree_histogram;
  /// Expected CW collision pressure of a BFS/CC edge-parallel round: the
  /// mean over vertices of degree² / (2m) — proportional to the birthday
  /// bound on two edges targeting one vertex. Higher ⇒ gatekeeper pain.
  double collision_index = 0.0;
};

/// Computes all statistics in O(V + E) plus one union–find pass.
[[nodiscard]] GraphStats compute_stats(const Csr& g);

/// Pretty-prints the stats block (used by examples/graph_tool).
void print_stats(std::ostream& os, const GraphStats& stats);

}  // namespace crcw::graph
