#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/rng.hpp"

namespace crcw::graph {
namespace {

using util::Xoshiro256;

Edge random_pair(Xoshiro256& rng, std::uint64_t n) {
  // Uniform unordered pair without self-loop: draw u, then v from the
  // remaining n-1 vertices.
  const auto u = static_cast<vertex_t>(rng.bounded(n));
  auto v = static_cast<vertex_t>(rng.bounded(n - 1));
  if (v >= u) ++v;
  return {u, v};
}

std::uint64_t pair_key(Edge e, std::uint64_t n) {
  const auto lo = std::min(e.u, e.v);
  const auto hi = std::max(e.u, e.v);
  return static_cast<std::uint64_t>(lo) * n + hi;
}

}  // namespace

EdgeList gnm(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("gnm: need n >= 2 for edges");
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) edges.push_back(random_pair(rng, n));
  return edges;
}

EdgeList gnm_simple(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  const std::uint64_t max_pairs = n * (n - 1) / 2;
  if (m > max_pairs) throw std::invalid_argument("gnm_simple: m exceeds distinct pairs");
  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  EdgeList edges;
  edges.reserve(m);
  while (edges.size() < m) {
    const Edge e = random_pair(rng, n);
    if (seen.insert(pair_key(e, n)).second) edges.push_back(e);
  }
  return edges;
}

EdgeList rmat(std::uint64_t n, std::uint64_t m, std::uint64_t seed,
              const RmatParams& params) {
  if (params.a < 0 || params.b < 0 || params.c < 0 ||
      params.a + params.b + params.c > 1.0) {
    throw std::invalid_argument("rmat: parameters must be non-negative, a+b+c <= 1");
  }
  std::uint64_t scale = 0;
  while ((std::uint64_t{1} << scale) < n) ++scale;
  const std::uint64_t size = std::uint64_t{1} << scale;

  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::uint64_t bit = size >> 1; bit != 0; bit >>= 1) {
      const double r = rng.uniform01();
      if (r < params.a) {
        // top-left quadrant: no bits set
      } else if (r < params.a + params.b) {
        v |= bit;
      } else if (r < params.a + params.b + params.c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    if (u == v) v = (v + 1) % size;  // suppress self-loops
    edges.push_back({static_cast<vertex_t>(u), static_cast<vertex_t>(v)});
  }
  return edges;
}

EdgeList path(std::uint64_t n) {
  EdgeList edges;
  if (n < 2) return edges;
  edges.reserve(n - 1);
  for (std::uint64_t i = 0; i + 1 < n; ++i) {
    edges.push_back({static_cast<vertex_t>(i), static_cast<vertex_t>(i + 1)});
  }
  return edges;
}

EdgeList cycle(std::uint64_t n) {
  EdgeList edges = path(n);
  if (n >= 3) edges.push_back({static_cast<vertex_t>(n - 1), 0});
  return edges;
}

EdgeList star(std::uint64_t n) {
  EdgeList edges;
  if (n < 2) return edges;
  edges.reserve(n - 1);
  for (std::uint64_t i = 1; i < n; ++i) edges.push_back({0, static_cast<vertex_t>(i)});
  return edges;
}

EdgeList complete(std::uint64_t n) {
  EdgeList edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (std::uint64_t v = u + 1; v < n; ++v) {
      edges.push_back({static_cast<vertex_t>(u), static_cast<vertex_t>(v)});
    }
  }
  return edges;
}

EdgeList grid2d(std::uint64_t rows, std::uint64_t cols) {
  EdgeList edges;
  const auto at = [cols](std::uint64_t r, std::uint64_t c) {
    return static_cast<vertex_t>(r * cols + c);
  };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({at(r, c), at(r, c + 1)});
      if (r + 1 < rows) edges.push_back({at(r, c), at(r + 1, c)});
    }
  }
  return edges;
}

EdgeList random_tree(std::uint64_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  EdgeList edges;
  if (n < 2) return edges;
  edges.reserve(n - 1);
  for (std::uint64_t i = 1; i < n; ++i) {
    edges.push_back({static_cast<vertex_t>(rng.bounded(i)), static_cast<vertex_t>(i)});
  }
  return edges;
}

EdgeList planted_components(std::uint64_t k, std::uint64_t per_component,
                            std::uint64_t extra_edges_per_component, std::uint64_t seed) {
  if (per_component == 0) throw std::invalid_argument("planted_components: empty component");
  Xoshiro256 rng(seed);
  EdgeList edges;
  for (std::uint64_t c = 0; c < k; ++c) {
    const std::uint64_t base = c * per_component;
    // Spanning tree keeps the component connected.
    for (std::uint64_t i = 1; i < per_component; ++i) {
      edges.push_back({static_cast<vertex_t>(base + rng.bounded(i)),
                       static_cast<vertex_t>(base + i)});
    }
    if (per_component >= 2) {
      for (std::uint64_t e = 0; e < extra_edges_per_component; ++e) {
        const std::uint64_t u = rng.bounded(per_component);
        std::uint64_t v = rng.bounded(per_component - 1);
        if (v >= u) ++v;
        edges.push_back({static_cast<vertex_t>(base + u), static_cast<vertex_t>(base + v)});
      }
    }
  }
  return edges;
}

Csr random_graph(std::uint64_t n, std::uint64_t m, std::uint64_t seed) {
  return build_csr(n, gnm(n, m, seed), {.symmetrize = true, .sort_neighbors = true});
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s, std::uint64_t seed)
    : s_(s), rng_(seed) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  if (!(s >= 0.0) || !std::isfinite(s)) {
    throw std::invalid_argument("ZipfSampler: skew must be finite and >= 0");
  }
  cdf_.resize(n);
  double cum = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    cum += std::pow(static_cast<double>(k + 1), -s);
    cdf_[k] = cum;
  }
  for (double& c : cdf_) c /= cum;
  cdf_.back() = 1.0;  // guard against rounding shaving the last bucket
}

std::uint64_t ZipfSampler::next() noexcept {
  const double u = rng_.uniform01();
  // First rank whose cdf exceeds u — upper_bound keeps rank 0's full mass.
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::uint64_t>(it - cdf_.begin());
  return rank < cdf_.size() ? rank : cdf_.size() - 1;
}

double ZipfSampler::probability(std::uint64_t rank) const {
  if (rank >= cdf_.size()) throw std::invalid_argument("ZipfSampler: rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace crcw::graph
