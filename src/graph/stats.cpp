#include "graph/stats.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "graph/reference.hpp"

namespace crcw::graph {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.vertices = g.num_vertices();
  s.directed_slots = g.num_edges();
  if (s.vertices == 0) return s;

  double degree_sq_sum = 0.0;
  for (vertex_t v = 0; v < s.vertices; ++v) {
    const std::uint64_t d = g.degree(v);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) {
      ++s.isolated;
    } else {
      const auto bucket = static_cast<std::size_t>(std::bit_width(d) - 1);
      if (s.log_degree_histogram.size() <= bucket) {
        s.log_degree_histogram.resize(bucket + 1, 0);
      }
      ++s.log_degree_histogram[bucket];
    }
    degree_sq_sum += static_cast<double>(d) * static_cast<double>(d);
    for (const vertex_t u : g.neighbors(v)) {
      if (u == v) ++s.self_loop_slots;
    }
  }
  s.avg_degree = static_cast<double>(s.directed_slots) / static_cast<double>(s.vertices);
  if (s.directed_slots > 0) {
    s.collision_index = degree_sq_sum / static_cast<double>(s.vertices) /
                        static_cast<double>(s.directed_slots);
  }
  s.components = count_components(g);
  return s;
}

void print_stats(std::ostream& os, const GraphStats& s) {
  os << "  vertices           " << s.vertices << '\n'
     << "  directed slots     " << s.directed_slots << '\n'
     << "  max degree         " << s.max_degree << '\n'
     << "  avg degree         " << s.avg_degree << '\n'
     << "  isolated vertices  " << s.isolated << '\n'
     << "  self-loop slots    " << s.self_loop_slots << '\n'
     << "  components         " << s.components << '\n'
     << "  collision index    " << s.collision_index << '\n'
     << "  degree histogram   ";
  for (std::size_t b = 0; b < s.log_degree_histogram.size(); ++b) {
    if (b != 0) os << ", ";
    os << "2^" << b << ":" << s.log_degree_histogram[b];
  }
  os << '\n';
}

}  // namespace crcw::graph
