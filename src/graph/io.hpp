// Graph serialisation: a human-readable edge-list text format and a compact
// binary CSR format for large benchmark inputs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace crcw::graph {

/// Text format:
///   # crcw-edgelist <n> <m-undirected>
///   u v          (one line per undirected edge)
/// Comment lines start with '#'.
void write_edge_list(std::ostream& os, std::uint64_t n, const EdgeList& edges);
void save_edge_list(const std::string& path, std::uint64_t n, const EdgeList& edges);

struct LoadedEdgeList {
  std::uint64_t num_vertices = 0;
  EdgeList edges;
};

/// Parses the text format; throws std::runtime_error with a line number on
/// malformed input.
[[nodiscard]] LoadedEdgeList read_edge_list(std::istream& is);
[[nodiscard]] LoadedEdgeList load_edge_list(const std::string& path);

/// Binary CSR: magic "CRCWCSR1", u64 n, u64 m, offsets, targets.
void write_csr_binary(std::ostream& os, const Csr& g);
void save_csr_binary(const std::string& path, const Csr& g);
[[nodiscard]] Csr read_csr_binary(std::istream& is);
[[nodiscard]] Csr load_csr_binary(const std::string& path);

/// The Rodinia BFS input format (the suite the paper's BFS comes from):
///
///   <num_nodes>
///   <start> <degree>          (one line per node, CSR offsets)
///   <source>
///   <num_edge_slots>
///   <dest> <cost>             (one line per edge slot)
///
/// Costs are carried through but unused by BFS (Rodinia stores 1s).
struct RodiniaGraph {
  Csr graph;
  vertex_t source = 0;
  std::vector<std::uint32_t> costs;
};

void write_rodinia(std::ostream& os, const Csr& g, vertex_t source);
void save_rodinia(const std::string& path, const Csr& g, vertex_t source);
[[nodiscard]] RodiniaGraph read_rodinia(std::istream& is);
[[nodiscard]] RodiniaGraph load_rodinia(const std::string& path);

}  // namespace crcw::graph
