// Edge-list → CSR construction.
#pragma once

#include "graph/csr.hpp"

namespace crcw::graph {

struct BuildOptions {
  /// Store each undirected edge in both directions (the paper's graphs are
  /// undirected).
  bool symmetrize = true;
  /// Sort each adjacency list ascending (enables binary-search has_edge).
  bool sort_neighbors = true;
  /// Drop duplicate (u, v) slots after sorting.
  bool dedup = false;
  /// Drop self-loops.
  bool remove_self_loops = false;
};

/// Builds a CSR over vertices [0, n) from an edge list.
/// Throws std::invalid_argument if an endpoint is >= n.
[[nodiscard]] Csr build_csr(std::uint64_t n, const EdgeList& edges,
                            const BuildOptions& opts = {});

/// Recovers a directed edge list (one entry per CSR slot).
[[nodiscard]] EdgeList to_edge_list(const Csr& g);

}  // namespace crcw::graph
