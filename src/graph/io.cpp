#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace crcw::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'C', 'R', 'C', 'W', 'C', 'S', 'R', '1'};

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("binary CSR: truncated input");
  return value;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream f(path, mode);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  return f;
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream f(path, mode);
  if (!f) throw std::runtime_error("cannot open " + path + " for reading");
  return f;
}

}  // namespace

void write_edge_list(std::ostream& os, std::uint64_t n, const EdgeList& edges) {
  os << "# crcw-edgelist " << n << ' ' << edges.size() << '\n';
  for (const auto& e : edges) os << e.u << ' ' << e.v << '\n';
}

void save_edge_list(const std::string& path, std::uint64_t n, const EdgeList& edges) {
  auto f = open_out(path, std::ios::out);
  write_edge_list(f, n, edges);
}

LoadedEdgeList read_edge_list(std::istream& is) {
  LoadedEdgeList out;
  bool have_header = false;
  std::string line;
  std::uint64_t line_no = 0;
  std::uint64_t declared_edges = 0;

  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ss(line);
      std::string hash;
      std::string tag;
      ss >> hash >> tag;
      if (tag == "crcw-edgelist") {
        if (!(ss >> out.num_vertices >> declared_edges)) {
          throw std::runtime_error("edge list line " + std::to_string(line_no) +
                                   ": malformed header");
        }
        have_header = true;
        out.edges.reserve(declared_edges);
      }
      continue;
    }
    std::istringstream ss(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ss >> u >> v)) {
      throw std::runtime_error("edge list line " + std::to_string(line_no) +
                               ": expected 'u v'");
    }
    out.edges.push_back({static_cast<vertex_t>(u), static_cast<vertex_t>(v)});
    out.num_vertices =
        std::max<std::uint64_t>({out.num_vertices, u + 1, v + 1});
  }

  if (have_header && out.edges.size() != declared_edges) {
    throw std::runtime_error("edge list: header declared " + std::to_string(declared_edges) +
                             " edges, found " + std::to_string(out.edges.size()));
  }
  return out;
}

LoadedEdgeList load_edge_list(const std::string& path) {
  auto f = open_in(path, std::ios::in);
  return read_edge_list(f);
}

void write_csr_binary(std::ostream& os, const Csr& g) {
  os.write(kMagic.data(), kMagic.size());
  write_pod(os, g.num_vertices());
  write_pod(os, g.num_edges());
  const auto offsets = g.offsets();
  const auto targets = g.targets();
  os.write(reinterpret_cast<const char*>(offsets.data()),
           static_cast<std::streamsize>(offsets.size_bytes()));
  os.write(reinterpret_cast<const char*>(targets.data()),
           static_cast<std::streamsize>(targets.size_bytes()));
}

void save_csr_binary(const std::string& path, const Csr& g) {
  auto f = open_out(path, std::ios::out | std::ios::binary);
  write_csr_binary(f, g);
}

Csr read_csr_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  if (!is || std::memcmp(magic.data(), kMagic.data(), kMagic.size()) != 0) {
    throw std::runtime_error("binary CSR: bad magic");
  }
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);

  std::vector<edge_t> offsets(n + 1);
  is.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(edge_t)));
  std::vector<vertex_t> targets(m);
  is.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(targets.size() * sizeof(vertex_t)));
  if (!is) throw std::runtime_error("binary CSR: truncated arrays");
  return Csr(std::move(offsets), std::move(targets));
}

Csr load_csr_binary(const std::string& path) {
  auto f = open_in(path, std::ios::in | std::ios::binary);
  return read_csr_binary(f);
}

void write_rodinia(std::ostream& os, const Csr& g, vertex_t source) {
  if (source >= g.num_vertices() && g.num_vertices() > 0) {
    throw std::invalid_argument("write_rodinia: source out of range");
  }
  os << g.num_vertices() << '\n';
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    os << g.offset(v) << ' ' << g.degree(v) << '\n';
  }
  os << '\n' << source << "\n\n" << g.num_edges() << '\n';
  for (const vertex_t t : g.targets()) os << t << " 1\n";
}

void save_rodinia(const std::string& path, const Csr& g, vertex_t source) {
  auto f = open_out(path, std::ios::out);
  write_rodinia(f, g, source);
}

RodiniaGraph read_rodinia(std::istream& is) {
  const auto fail = [](const char* what) -> std::runtime_error {
    return std::runtime_error(std::string("rodinia graph: ") + what);
  };

  std::uint64_t n = 0;
  if (!(is >> n)) throw fail("missing node count");

  std::vector<edge_t> offsets(n + 1, 0);
  std::vector<edge_t> degrees(n, 0);
  for (std::uint64_t v = 0; v < n; ++v) {
    std::uint64_t start = 0;
    std::uint64_t degree = 0;
    if (!(is >> start >> degree)) throw fail("truncated node records");
    offsets[v] = start;
    degrees[v] = degree;
  }
  // Validate the (start, degree) pairs describe a proper CSR.
  for (std::uint64_t v = 0; v < n; ++v) {
    if (v > 0 && offsets[v] != offsets[v - 1] + degrees[v - 1]) {
      throw fail("node records are not contiguous CSR offsets");
    }
  }
  if (n > 0 && offsets[0] != 0) throw fail("first offset must be 0");

  RodiniaGraph out;
  std::uint64_t source = 0;
  if (!(is >> source)) throw fail("missing source");
  if (n > 0 && source >= n) throw fail("source out of range");
  out.source = static_cast<vertex_t>(source);

  std::uint64_t m = 0;
  if (!(is >> m)) throw fail("missing edge count");
  if (n > 0 && m != offsets[n - 1] + degrees[n - 1]) {
    throw fail("edge count disagrees with node records");
  }
  offsets[n] = m;

  std::vector<vertex_t> targets(m);
  out.costs.resize(m);
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint64_t dest = 0;
    std::uint64_t cost = 0;
    if (!(is >> dest >> cost)) throw fail("truncated edge records");
    if (dest >= n) throw fail("edge destination out of range");
    targets[e] = static_cast<vertex_t>(dest);
    out.costs[e] = static_cast<std::uint32_t>(cost);
  }

  out.graph = Csr(std::move(offsets), std::move(targets));
  return out;
}

RodiniaGraph load_rodinia(const std::string& path) {
  auto f = open_in(path, std::ios::in);
  return read_rodinia(f);
}

}  // namespace crcw::graph
