// Snapshot file format — chunked, CRC32C-framed, length-prefixed,
// versioned, published atomically.
//
// Layout (every integer little-endian, byte-wise like the wire codec, so
// files are portable across hosts):
//
//   header (44 bytes, fixed):
//     u64  magic            "CRCWSNAP"
//     u32  version          kFormatVersion
//     u32  kind             kKindKv | kKindStream
//     u64  round            the cut the entries were scanned at
//     u32  shards           segment count the writer promised
//     u32  reserved         0
//     u64  config_digest    backend shape (shards, vertices, ...) — restore
//                           refuses a snapshot from a differently-shaped
//                           server instead of silently mis-routing keys
//     u32  crc32c           over the 40 header bytes above
//
//   frames, until the end marker:
//     u32  payload_len | u32 crc32c(payload) | payload
//   frame payload:
//     u8   frame kind (kFrameKv / kFrameCc / kFrameEnd)
//     u32  shard
//     u64  entry count           (kFrameEnd: total entries in the file)
//     count x (u64 a | u64 b | u64 c)   entry triples; absent for kFrameEnd
//
// KV entries are (key, value, round) — the committed round rides along so
// restore can stamp each LiveTag exactly and the arbiter can be re-seeded
// past the cut. CC entries are (vertex, parent, 0). Chunking (kChunkEntries
// per frame) bounds both the writer's staging buffer and the blast radius
// of a torn write: a bit flip or truncation corrupts one frame's CRC, and
// the reader fails closed right there with an offset in the diagnostic.
//
// Publish is tmp-then-rename: the writer streams to `path + ".tmp"`,
// fsyncs, closes, and rename(2)s over `path` — a crash mid-checkpoint
// leaves at worst a stale tmp file, never a half-written snapshot under
// the published name. The reader mirrors the wire codec's poisoned-decoder
// discipline: the first malformed byte (bad magic, unknown version, CRC
// mismatch, truncated frame, missing end marker, trailing bytes) latches a
// diagnostic and every later call fails; there is no resynchronisation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "snap/crc32c.hpp"

namespace crcw::snap {

inline constexpr std::uint64_t kSnapshotMagic = 0x50414E5357435243ull;  // "CRCWSNAP" LE
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kKindKv = 0;
inline constexpr std::uint32_t kKindStream = 1;

inline constexpr std::uint8_t kFrameKv = 1;
inline constexpr std::uint8_t kFrameCc = 2;
inline constexpr std::uint8_t kFrameEnd = 3;

inline constexpr std::size_t kHeaderBytes = 44;
inline constexpr std::size_t kEntryBytes = 24;
inline constexpr std::size_t kFramePrefixBytes = 13;  // kind + shard + count
/// Entries per frame: 4096 triples = 96 KiB payloads, big enough that the
/// CRC and syscall overheads vanish, small enough that a corrupt frame
/// names a narrow byte range.
inline constexpr std::uint64_t kChunkEntries = 4096;
/// Reader-side cap on a frame's declared length — anything larger is a
/// corrupt or hostile length prefix, refused before any allocation.
inline constexpr std::uint32_t kMaxFrameBytes =
    kFramePrefixBytes + kChunkEntries * kEntryBytes;

/// One serialised triple; the interpretation of (a, b, c) is per frame
/// kind: KV = (key, value, round), CC = (vertex, parent, 0).
struct SnapshotEntry {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

struct SnapshotHeader {
  std::uint32_t version = kFormatVersion;
  std::uint32_t kind = kKindKv;
  std::uint64_t round = 0;
  std::uint32_t shards = 1;
  std::uint64_t config_digest = 0;
};

namespace detail {

inline void put_u32(std::vector<unsigned char>& out, std::uint32_t v) {
  out.push_back(static_cast<unsigned char>(v));
  out.push_back(static_cast<unsigned char>(v >> 8));
  out.push_back(static_cast<unsigned char>(v >> 16));
  out.push_back(static_cast<unsigned char>(v >> 24));
}

inline void put_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

[[nodiscard]] inline std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

}  // namespace detail

/// Streams one snapshot file: open() writes the header to `path + ".tmp"`,
/// append() frames entry chunks, finish() writes the end marker, fsyncs
/// and renames over `path`. Any I/O failure latches error() and aborts the
/// publish (the tmp file is removed); the published path never holds a
/// partial snapshot.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::string path)
      : path_(std::move(path)), tmp_path_(path_ + ".tmp") {}

  ~SnapshotWriter() {
    if (file_ != nullptr) {
      std::fclose(file_);
      std::remove(tmp_path_.c_str());  // never leave a dangling tmp
    }
  }

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  bool open(const SnapshotHeader& header) {
    if (!ok() || file_ != nullptr) return fail("open: writer already used");
    file_ = std::fopen(tmp_path_.c_str(), "wb");
    if (file_ == nullptr) return fail("open: cannot create " + tmp_path_);
    std::vector<unsigned char> buf;
    buf.reserve(kHeaderBytes);
    detail::put_u64(buf, kSnapshotMagic);
    detail::put_u32(buf, header.version);
    detail::put_u32(buf, header.kind);
    detail::put_u64(buf, header.round);
    detail::put_u32(buf, header.shards);
    detail::put_u32(buf, 0);  // reserved
    detail::put_u64(buf, header.config_digest);
    detail::put_u32(buf, crc32c(buf.data(), buf.size()));
    return write_all(buf);
  }

  /// Frames one chunk of entries for `shard`. Call with at most
  /// kChunkEntries triples (larger spans are the caller's bug — the reader
  /// would refuse the oversized frame).
  bool append(std::uint8_t frame_kind, std::uint32_t shard,
              const std::vector<SnapshotEntry>& entries) {
    if (!ok()) return false;
    if (file_ == nullptr) return fail("append before open");
    if (entries.size() > kChunkEntries) return fail("append: chunk exceeds kChunkEntries");
    std::vector<unsigned char> payload;
    payload.reserve(kFramePrefixBytes + entries.size() * kEntryBytes);
    payload.push_back(frame_kind);
    detail::put_u32(payload, shard);
    detail::put_u64(payload, entries.size());
    for (const SnapshotEntry& e : entries) {
      detail::put_u64(payload, e.a);
      detail::put_u64(payload, e.b);
      detail::put_u64(payload, e.c);
    }
    total_entries_ += entries.size();
    return write_frame(payload);
  }

  /// End marker + fsync + atomic rename. After a true return the snapshot
  /// is durably published under path().
  bool finish() {
    if (!ok()) return false;
    if (file_ == nullptr) return fail("finish before open");
    std::vector<unsigned char> payload;
    payload.push_back(kFrameEnd);
    detail::put_u32(payload, 0);
    detail::put_u64(payload, total_entries_);
    if (!write_frame(payload)) return false;
    if (std::fflush(file_) != 0) return fail("finish: fflush failed");
    if (fsync(fileno(file_)) != 0) return fail("finish: fsync failed");
    const int closed = std::fclose(file_);
    file_ = nullptr;
    if (closed != 0) return fail("finish: fclose failed");
    if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_path_.c_str());
      return fail("finish: rename to " + path_ + " failed");
    }
    return true;
  }

 private:
  bool fail(std::string msg) {
    if (error_.empty()) error_ = "SnapshotWriter: " + std::move(msg);
    return false;
  }

  bool write_frame(const std::vector<unsigned char>& payload) {
    std::vector<unsigned char> prefix;
    prefix.reserve(8);
    detail::put_u32(prefix, static_cast<std::uint32_t>(payload.size()));
    detail::put_u32(prefix, crc32c(payload.data(), payload.size()));
    return write_all(prefix) && write_all(payload);
  }

  bool write_all(const std::vector<unsigned char>& buf) {
    if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
      return fail("short write to " + tmp_path_);
    }
    return true;
  }

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  std::uint64_t total_entries_ = 0;
  std::string error_;
};

/// One decoded frame.
struct SnapshotFrame {
  std::uint8_t kind = 0;
  std::uint32_t shard = 0;
  std::vector<SnapshotEntry> entries;
};

/// Fail-closed reader. open() validates the header; next() yields frames
/// until the end marker (false with empty error() = clean end). The first
/// malformed byte poisons the reader: error() latches a diagnostic naming
/// what broke and where, and every later call returns false — corrupted
/// snapshots are refused wholesale, never partially applied.
class SnapshotReader {
 public:
  explicit SnapshotReader(std::string path) : path_(std::move(path)) {}

  ~SnapshotReader() {
    if (file_ != nullptr) std::fclose(file_);
  }

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const SnapshotHeader& header() const noexcept { return header_; }

  bool open() {
    if (!ok() || file_ != nullptr) return fail("open: reader already used");
    file_ = std::fopen(path_.c_str(), "rb");
    if (file_ == nullptr) return fail("cannot open " + path_);
    unsigned char buf[kHeaderBytes];
    if (std::fread(buf, 1, kHeaderBytes, file_) != kHeaderBytes) {
      return fail("truncated header (file shorter than " +
                  std::to_string(kHeaderBytes) + " bytes)");
    }
    if (detail::get_u64(buf) != kSnapshotMagic) return fail("bad magic");
    const std::uint32_t stored_crc = detail::get_u32(buf + kHeaderBytes - 4);
    if (crc32c(buf, kHeaderBytes - 4) != stored_crc) return fail("header CRC mismatch");
    header_.version = detail::get_u32(buf + 8);
    if (header_.version != kFormatVersion) {
      return fail("unsupported version " + std::to_string(header_.version) +
                  " (expected " + std::to_string(kFormatVersion) + ")");
    }
    header_.kind = detail::get_u32(buf + 12);
    if (header_.kind != kKindKv && header_.kind != kKindStream) {
      return fail("unknown snapshot kind " + std::to_string(header_.kind));
    }
    header_.round = detail::get_u64(buf + 16);
    header_.shards = detail::get_u32(buf + 24);
    header_.config_digest = detail::get_u64(buf + 32);
    offset_ = kHeaderBytes;
    return true;
  }

  /// Next entry frame, or false: clean end (end marker consumed, error()
  /// empty) vs poisoned (error() set). The end marker's total-entry count
  /// is cross-checked against the frames actually read, so a file
  /// truncated at a frame boundary still fails closed.
  bool next(SnapshotFrame& out) {
    if (!ok()) return false;
    if (file_ == nullptr) return fail("next before open");
    if (finished_) return fail("next after the end marker");
    unsigned char prefix[8];
    const std::size_t got = std::fread(prefix, 1, 8, file_);
    if (got != 8) {
      return fail("truncated frame prefix at offset " + std::to_string(offset_));
    }
    const std::uint32_t len = detail::get_u32(prefix);
    const std::uint32_t want_crc = detail::get_u32(prefix + 4);
    if (len < kFramePrefixBytes || len > kMaxFrameBytes) {
      return fail("implausible frame length " + std::to_string(len) + " at offset " +
                  std::to_string(offset_));
    }
    std::vector<unsigned char> payload(len);
    if (std::fread(payload.data(), 1, len, file_) != len) {
      return fail("truncated frame payload at offset " + std::to_string(offset_ + 8));
    }
    if (crc32c(payload.data(), len) != want_crc) {
      return fail("frame CRC mismatch at offset " + std::to_string(offset_));
    }
    offset_ += 8 + len;
    const std::uint8_t kind = payload[0];
    const std::uint32_t shard = detail::get_u32(payload.data() + 1);
    const std::uint64_t count = detail::get_u64(payload.data() + 5);
    if (kind == kFrameEnd) {
      if (count != total_entries_) {
        return fail("end marker count " + std::to_string(count) + " != entries read " +
                    std::to_string(total_entries_));
      }
      // Anything after the end marker is not ours — refuse the file rather
      // than ignore bytes an attacker or a torn write appended.
      unsigned char extra = 0;
      if (std::fread(&extra, 1, 1, file_) != 0) return fail("trailing bytes after end marker");
      finished_ = true;
      return false;
    }
    if (kind != kFrameKv && kind != kFrameCc) {
      return fail("unknown frame kind " + std::to_string(kind) + " at offset " +
                  std::to_string(offset_ - 8 - len));
    }
    // Bound count before the length arithmetic: a hostile 2^61-ish count
    // could otherwise wrap `count * kEntryBytes` into agreement with `len`
    // and drive the resize below into a huge allocation.
    if (count > kChunkEntries) {
      return fail("frame entry count " + std::to_string(count) + " exceeds chunk bound");
    }
    if (kFramePrefixBytes + count * kEntryBytes != len) {
      return fail("frame length " + std::to_string(len) + " does not match count " +
                  std::to_string(count));
    }
    out.kind = kind;
    out.shard = shard;
    out.entries.resize(count);
    const unsigned char* p = payload.data() + kFramePrefixBytes;
    for (std::uint64_t i = 0; i < count; ++i, p += kEntryBytes) {
      out.entries[i] = SnapshotEntry{detail::get_u64(p), detail::get_u64(p + 8),
                                     detail::get_u64(p + 16)};
    }
    total_entries_ += count;
    return true;
  }

  /// True iff the end marker was reached (the only non-poisoned way for
  /// next() to return false).
  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  bool fail(std::string msg) {
    if (error_.empty()) error_ = "SnapshotReader(" + path_ + "): " + std::move(msg);
    return false;
  }

  std::string path_;
  std::FILE* file_ = nullptr;
  SnapshotHeader header_;
  std::uint64_t offset_ = 0;
  std::uint64_t total_entries_ = 0;
  bool finished_ = false;
  std::string error_;
};

}  // namespace crcw::snap
