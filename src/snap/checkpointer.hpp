// Checkpointer — consistent scans, checkpoint files, and restore, duck-
// typed over the serve backends so snap/ depends on ds/ and core/ only.
//
// Backend contract (BatchScheduler, ShardedScheduler, StreamScheduler):
//   static kSnapshotKind            kKindKv | kKindStream
//   mint_cut() / release_cut()      park grow/reclaim while a scan runs
//   snapshot_shards()               file segments (sharded: N, else 1)
//   scan_shard_at(s, round, fn)     cut-predicated fn(key, value, round)
//   restore_entry(s, k, v, round)   serial rebuild of one committed entry
//   reseed_round(r)                 arbiter continuity across restart
//   config_digest()                 backend shape baked into the header
// Stream backends additionally provide capture_snapshot (edges + cc forest
// captured together under the parked pump, so a restored server answers
// same_component exactly) plus restore_cc_entry / finish_restore.
//
// Concurrency story. For the KV backends the cut is HELD, not a stop-the-
// world: mint_cut parks the pump only long enough to read the round, and
// the scan then runs concurrently with later rounds — writers never block,
// the per-bucket round predicate keeps the view at the cut, and the only
// thing a held cut forbids is array-swapping maintenance (grow/reclaim),
// which the schedulers' batch epilogs skip while cuts_held() > 0. The
// stream backend trades that concurrency for forest consistency: its
// capture runs entirely under the parked pump (edge set and union-find
// parents must agree), which is fine because the writer-p99-interference
// headline targets the sharded KV path.
//
// The view at cut r is exact for every key not overwritten after the cut.
// A post-cut overwrite or erase advances the key's LiveTag past r — the
// tag keeps only the LAST committed round — so such keys drop out of the
// scan rather than appear with post-cut values: the scan never invents
// state, it can only under-report keys mutated while it runs. Checkpoints
// minted on a quiescent prefix of the keyspace (or a quiesced server) are
// therefore bit-exact; the kill/restore audit pins this.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ds/hash_common.hpp"
#include "snap/cut.hpp"
#include "snap/snapshot_file.hpp"

namespace crcw::snap {

/// Order-independent fold of one scanned entry — commutative, so shard
/// scan order (and the concurrent scan's bucket order) cannot change it.
[[nodiscard]] inline std::uint64_t entry_digest(std::uint64_t a, std::uint64_t b,
                                                std::uint64_t c) noexcept {
  return ds::mix64(a ^ ds::mix64(b ^ ds::mix64(c ^ 0x9E3779B97F4A7C15ull)));
}

/// A consistent-scan digest: the cut it was taken at, the XOR-fold of
/// entry_digest over every entry at the cut, and the entry count mixed in.
/// Two servers answering identical committed state at the same cut produce
/// identical digests — the wire snapshot_scan payload and the kill/restore
/// audit's equality witness.
struct ScanDigest {
  SnapshotCut cut;
  std::uint64_t digest = 0;
  std::uint64_t entries = 0;
};

template <typename Backend>
inline constexpr bool kStreamSnapshotBackend = Backend::kSnapshotKind == kKindStream;

/// Mint a cut, fold every shard's entries at it, release. Concurrent with
/// writers on the KV backends (held-cut discipline); on the stream backend
/// the fold covers the edge set only (the forest is derived state — two
/// servers with equal edge sets answer same_component identically).
template <typename Backend>
[[nodiscard]] ScanDigest scan_digest(Backend& backend) {
  HeldCut<Backend> held(backend);
  ScanDigest out;
  out.cut = held.cut();
  for (std::uint32_t s = 0; s < backend.snapshot_shards(); ++s) {
    backend.scan_shard_at(s, out.cut.round,
                          [&out](std::uint64_t k, std::uint64_t v, round_t r) {
                            out.digest ^= entry_digest(k, v, r);
                            ++out.entries;
                          });
  }
  out.digest ^= ds::mix64(out.entries + 1);
  return out;
}

/// Scan the KV backend at a cut the CALLER holds and publish the snapshot
/// file. One kFrameKv chunk stream per shard, kChunkEntries per frame.
template <typename Backend>
bool write_kv_snapshot(Backend& backend, const SnapshotCut& cut, const std::string& path,
                       std::string* err) {
  static_assert(!kStreamSnapshotBackend<Backend>,
                "stream backends checkpoint via capture_snapshot");
  SnapshotWriter writer(path);
  const SnapshotHeader header{kFormatVersion, Backend::kSnapshotKind, cut.round,
                              backend.snapshot_shards(), backend.config_digest()};
  bool ok = writer.open(header);
  std::vector<SnapshotEntry> chunk;
  chunk.reserve(kChunkEntries);
  for (std::uint32_t s = 0; ok && s < backend.snapshot_shards(); ++s) {
    backend.scan_shard_at(s, cut.round,
                          [&](std::uint64_t k, std::uint64_t v, round_t r) {
                            if (!ok) return;
                            chunk.push_back(SnapshotEntry{k, v, r});
                            if (chunk.size() == kChunkEntries) {
                              ok = writer.append(kFrameKv, s, chunk);
                              chunk.clear();
                            }
                          });
    if (ok && !chunk.empty()) {
      ok = writer.append(kFrameKv, s, chunk);
      chunk.clear();
    }
  }
  ok = ok && writer.finish();
  if (!ok && err != nullptr) *err = writer.error();
  return ok;
}

/// Stream capture staged in memory: edge triples and cc parents taken
/// together under the backend's parked pump, then written without holding
/// anything up.
struct StreamCapture {
  SnapshotCut cut;
  std::vector<SnapshotEntry> edges;
  std::vector<SnapshotEntry> parents;
};

template <typename Backend>
[[nodiscard]] StreamCapture capture_stream(Backend& backend) {
  StreamCapture cap;
  cap.cut = backend.capture_snapshot(
      [&cap](std::uint64_t k, std::uint64_t v, round_t r) {
        cap.edges.push_back(SnapshotEntry{k, v, r});
      },
      [&cap](std::uint32_t v, std::uint32_t p) {
        cap.parents.push_back(SnapshotEntry{v, p, 0});
      });
  return cap;
}

template <typename Backend>
bool write_stream_snapshot(Backend& backend, const StreamCapture& cap,
                           const std::string& path, std::string* err) {
  SnapshotWriter writer(path);
  const SnapshotHeader header{kFormatVersion, Backend::kSnapshotKind, cap.cut.round,
                              backend.snapshot_shards(), backend.config_digest()};
  bool ok = writer.open(header);
  const auto flush = [&writer, &ok](std::uint8_t kind,
                                    const std::vector<SnapshotEntry>& all) {
    for (std::size_t i = 0; ok && i < all.size(); i += kChunkEntries) {
      const std::size_t n = std::min<std::size_t>(kChunkEntries, all.size() - i);
      ok = writer.append(
          kind, 0, std::vector<SnapshotEntry>(all.begin() + i, all.begin() + i + n));
    }
  };
  flush(kFrameKv, cap.edges);
  flush(kFrameCc, cap.parents);
  ok = ok && writer.finish();
  if (!ok && err != nullptr) *err = writer.error();
  return ok;
}

/// One-call synchronous checkpoint: mint/capture, scan, publish. Returns
/// the cut on success.
template <typename Backend>
std::optional<SnapshotCut> checkpoint_sync(Backend& backend, const std::string& path,
                                           std::string* err) {
  if constexpr (kStreamSnapshotBackend<Backend>) {
    const StreamCapture cap = capture_stream(backend);
    if (!write_stream_snapshot(backend, cap, path, err)) return std::nullopt;
    return cap.cut;
  } else {
    HeldCut<Backend> held(backend);
    if (!write_kv_snapshot(backend, held.cut(), path, err)) return std::nullopt;
    return held.cut();
  }
}

/// Rebuild `backend` (freshly constructed, not yet serving) from a
/// published snapshot. Fail-closed: any reader diagnosis, shape mismatch
/// (kind, shard count, config digest), out-of-range shard, or entry round
/// past the header's cut aborts with `*err` set — discard the backend in
/// that case, nothing guarantees a partial rebuild is coherent. On success
/// the arbiter is re-seeded to the snapshot's round, so the first
/// post-restore batch commits at round + 1 and committed rounds stay
/// strictly increasing across the restart.
template <typename Backend>
bool restore(Backend& backend, const std::string& path, std::string* err) {
  const auto fail = [err](std::string msg) {
    if (err != nullptr) *err = "snap::restore: " + std::move(msg);
    return false;
  };
  SnapshotReader reader(path);
  if (!reader.open()) return fail(reader.error());
  const SnapshotHeader& h = reader.header();
  if (h.kind != Backend::kSnapshotKind) {
    return fail("snapshot kind " + std::to_string(h.kind) + " does not match backend");
  }
  if (h.shards != backend.snapshot_shards()) {
    return fail("snapshot has " + std::to_string(h.shards) + " shards, backend has " +
                std::to_string(backend.snapshot_shards()));
  }
  if (h.config_digest != backend.config_digest()) {
    return fail("config digest mismatch: snapshot came from a differently-shaped server");
  }
  SnapshotFrame frame;
  while (reader.next(frame)) {
    if (frame.shard >= h.shards) {
      return fail("frame shard " + std::to_string(frame.shard) + " out of range");
    }
    for (const SnapshotEntry& e : frame.entries) {
      if (frame.kind == kFrameKv) {
        if (e.c > h.round) {
          return fail("entry round " + std::to_string(e.c) + " past the cut " +
                      std::to_string(h.round));
        }
        if (!backend.restore_entry(frame.shard, e.a, e.b, e.c)) {
          return fail("restore_entry refused key " + std::to_string(e.a));
        }
      } else {  // kFrameCc — reader admits no other kinds
        if constexpr (kStreamSnapshotBackend<Backend>) {
          if (!backend.restore_cc_entry(static_cast<std::uint32_t>(e.a),
                                        static_cast<std::uint32_t>(e.b))) {
            return fail("restore_cc_entry refused vertex " + std::to_string(e.a));
          }
        } else {
          return fail("cc frame in a kv snapshot");
        }
      }
    }
  }
  if (!reader.finished()) return fail(reader.error());
  if constexpr (kStreamSnapshotBackend<Backend>) backend.finish_restore();
  backend.reseed_round(h.round);
  return true;
}

/// Background checkpointer: begin() pins the consistent view on the
/// calling thread (mint for KV, full capture for stream) and hands the
/// scan+write to a worker thread, so the serve pump never runs file I/O.
/// One checkpoint in flight at a time; wait() collects the verdict.
template <typename Backend>
class Checkpointer {
 public:
  Checkpointer(Backend& backend, std::string dir)
      : backend_(backend), dir_(std::move(dir)) {}

  ~Checkpointer() { (void)wait(nullptr); }

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Published path for a checkpoint at `round`.
  [[nodiscard]] std::string path_for(round_t round) const {
    return dir_ + "/snapshot-r" + std::to_string(round) + ".crcwsnap";
  }

  /// Mints the cut (KV: concurrent scan follows in the worker; stream: the
  /// whole capture happens here) and starts the background write. Returns
  /// the cut, or nullopt with *err if one is already in flight.
  std::optional<SnapshotCut> begin(std::string* err) {
    if (running()) {
      if (err != nullptr) *err = "Checkpointer: a checkpoint is already in flight";
      return std::nullopt;
    }
    (void)wait(nullptr);  // collect a finished worker before reuse
    done_.store(false, std::memory_order_release);
    bg_ok_ = false;
    bg_err_.clear();
    if constexpr (kStreamSnapshotBackend<Backend>) {
      auto cap = std::make_unique<StreamCapture>(capture_stream(backend_));
      const SnapshotCut cut = cap->cut;
      last_path_ = path_for(cut.round);
      worker_ = std::thread([this, cap = std::move(cap)] {
        bg_ok_ = write_stream_snapshot(backend_, *cap, last_path_, &bg_err_);
        done_.store(true, std::memory_order_release);
      });
      return cut;
    } else {
      const SnapshotCut cut = backend_.mint_cut();
      last_path_ = path_for(cut.round);
      worker_ = std::thread([this, cut] {
        bg_ok_ = write_kv_snapshot(backend_, cut, last_path_, &bg_err_);
        backend_.release_cut();  // resume grow/reclaim even on failure
        done_.store(true, std::memory_order_release);
      });
      return cut;
    }
  }

  /// True while a begun checkpoint has not finished its write.
  [[nodiscard]] bool running() const noexcept {
    return worker_.joinable() && !done_.load(std::memory_order_acquire);
  }

  /// Joins the worker (blocking if needed); true iff the last begun
  /// checkpoint published. Idempotent.
  bool wait(std::string* err) {
    if (worker_.joinable()) worker_.join();
    if (!bg_ok_ && err != nullptr && !bg_err_.empty()) *err = bg_err_;
    return bg_ok_;
  }

  /// The path the last begun checkpoint publishes to.
  [[nodiscard]] const std::string& last_path() const noexcept { return last_path_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  Backend& backend_;
  std::string dir_;
  std::thread worker_;
  std::atomic<bool> done_{false};
  bool bg_ok_ = false;
  std::string bg_err_;
  std::string last_path_;
};

}  // namespace crcw::snap
