// CRC32C (Castagnoli) — the frame checksum of the snapshot file format.
//
// Software, table-driven, one byte per step: snapshot I/O is dominated by
// the scan and the write() syscalls, so a hardware CRC (SSE4.2 crc32q)
// would not move the needle and would drag in a feature-detection story
// the container toolchain doesn't owe us. The polynomial is the reflected
// Castagnoli 0x1EDC6F41 (0x82F63B78 bit-reversed) — the same CRC iSCSI,
// ext4 metadata and RocksDB frames use, chosen over CRC32 (ZIP) for its
// better burst-error detection at these frame sizes. The table is built at
// compile time; the checksum of the empty string is 0, and the
// final-xor/init pair (~0) matches the RFC 3720 reference vectors (the
// unit test pins "123456789" -> 0xE3069283).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace crcw::snap {

namespace detail {

inline constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;  // reflected Castagnoli

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kCrc32cPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// Streaming update: feed chunks in order, seeding each call with the
/// previous return value (start from 0). The init/final inversions are
/// folded in here, so partial results are already valid CRC32C values.
[[nodiscard]] constexpr std::uint32_t crc32c_update(std::uint32_t crc,
                                                    const unsigned char* data,
                                                    std::size_t n) noexcept {
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    crc = detail::kCrc32cTable[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

/// One-shot CRC32C of a buffer.
[[nodiscard]] constexpr std::uint32_t crc32c(const unsigned char* data,
                                             std::size_t n) noexcept {
  return crc32c_update(0, data, n);
}

}  // namespace crcw::snap
