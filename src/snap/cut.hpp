// SnapshotCut — the round-cut token consistent scans and checkpoints hang
// off.
//
// Every serve backend funnels its writes through ONE WriteArbiter whose
// round counter advances only between batches (next_round at the PRAM step
// boundary), so "the state as of round r" is well-defined across every
// shard at once: a write either committed with round <= r before the cut
// was minted, or it commits with a strictly larger round after it. A
// SnapshotCut is nothing but that observation reified — the round the
// arbiter held while the scheduler's pump was parked — plus the shard
// count the scan will cover. Holding a cut obliges the scheduler to keep
// bucket arrays stable (its batch epilog parks grow/reclaim while
// cuts_held() > 0); the per-bucket round predicate does the rest, with no
// locks and no writer stalls (ds::ConcurrentHashMap::for_each_at).
#pragma once

#include <cstdint>

#include "core/round_tag.hpp"

namespace crcw::snap {

/// A consistent read point: every write with round <= `round` is committed
/// and visible; every later write carries a strictly larger round.
struct SnapshotCut {
  round_t round = kInitialRound;
  std::uint32_t shards = 1;
};

/// RAII hold of a cut against a scheduler: mints on construction, releases
/// on destruction, so a throwing scan can never leave the scheduler's
/// maintenance parked forever. Backend needs mint_cut()/release_cut().
template <typename Backend>
class HeldCut {
 public:
  explicit HeldCut(Backend& backend) : backend_(&backend), cut_(backend.mint_cut()) {}

  ~HeldCut() { release(); }

  HeldCut(const HeldCut&) = delete;
  HeldCut& operator=(const HeldCut&) = delete;

  [[nodiscard]] const SnapshotCut& cut() const noexcept { return cut_; }
  [[nodiscard]] round_t round() const noexcept { return cut_.round; }

  /// Early release (idempotent): lets the holder resume grow/reclaim as
  /// soon as the scan is done instead of at scope end.
  void release() noexcept {
    if (backend_ != nullptr) {
      backend_->release_cut();
      backend_ = nullptr;
    }
  }

 private:
  Backend* backend_;
  SnapshotCut cut_;
};

}  // namespace crcw::snap
