// Workload — deterministic open-loop event traces for the streaming
// subsystem: Zipf-skewed endpoints, bursty on-off arrivals, seeded replay.
//
// The generator is a discrete-event loop: each event gets an absolute
// arrival timestamp `at_ns` drawn from an exponential inter-arrival at the
// CURRENT rate, where the rate square-waves between `base_rate` and
// `burst_rate` (an on-off burst every `burst_every` events, on for
// `burst_duty` of the period) — the open-loop shape whose p99-under-burst
// is ext_stream's headline. Endpoints are ranks from graph::ZipfSampler,
// so a skewed trace hammers the hot vertices' edges (and their components'
// roots) the way real streams do. Everything is driven by one seeded
// xoshiro stream plus one seeded sampler: a (config, seed) pair always
// replays the same (timestamp, op) sequence, byte for byte.
//
// Erases target LIVE edges: the generator tracks a reservoir of edges its
// own inserts created and erases uniformly from it (swap-remove), so a
// trace's deletions actually exercise the deletion fallback instead of
// erasing never-inserted keys. An erase drawn while the reservoir is
// empty degrades to an insert (counted as one).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "ds/hash_common.hpp"
#include "graph/generators.hpp"
#include "serve/op.hpp"
#include "util/rng.hpp"

namespace crcw::stream {

/// Shape of one trace. Fractions are of the op mix: insert + erase +
/// same_component + component_size = 1 (component_size is the remainder).
struct WorkloadConfig {
  std::uint32_t vertices = 1 << 14;
  double zipf_s = 0.9;            ///< endpoint skew (0 = uniform)
  double insert_frac = 0.5;
  double erase_frac = 0.2;
  double same_component_frac = 0.2;
  double base_rate = 200e3;       ///< off-phase arrivals per second
  double burst_rate = 2e6;        ///< on-phase arrivals per second
  std::uint64_t burst_every = 4096;  ///< burst period, in events
  double burst_duty = 0.25;       ///< fraction of the period spent bursting
  std::uint64_t seed = 42;

  [[nodiscard]] WorkloadConfig validated() const {
    if (vertices < 2) throw std::invalid_argument("workload: need vertices >= 2");
    if (insert_frac < 0 || erase_frac < 0 || same_component_frac < 0 ||
        insert_frac + erase_frac + same_component_frac > 1.0) {
      throw std::invalid_argument("workload: op fractions must be a sub-distribution");
    }
    if (!(base_rate > 0) || !(burst_rate > 0)) {
      throw std::invalid_argument("workload: rates must be positive");
    }
    if (burst_every == 0) throw std::invalid_argument("workload: burst_every == 0");
    if (burst_duty < 0 || burst_duty > 1.0) {
      throw std::invalid_argument("workload: burst_duty outside [0, 1]");
    }
    return *this;
  }
};

/// One timestamped request: replay at `at_ns` relative to trace start.
struct Event {
  std::uint64_t at_ns = 0;
  serve::Op op;
};

/// Deterministically generate `count` events. Timestamps are strictly
/// non-decreasing; ops follow the configured mix.
[[nodiscard]] inline std::vector<Event> generate_trace(const WorkloadConfig& config,
                                                       std::uint64_t count) {
  const WorkloadConfig cfg = config.validated();
  util::Xoshiro256 rng(cfg.seed);
  // The sampler owns an independent stream so interleaving endpoint draws
  // with mix/timing draws cannot shift either sequence.
  graph::ZipfSampler zipf(cfg.vertices, cfg.zipf_s, cfg.seed ^ 0x9e3779b97f4a7c15ULL);

  std::vector<Event> events;
  events.reserve(count);
  std::vector<std::uint64_t> live;          // reservoir of inserted edges
  std::unordered_set<std::uint64_t> live_set;
  const auto burst_on =
      static_cast<std::uint64_t>(cfg.burst_duty * static_cast<double>(cfg.burst_every));

  double clock_ns = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const bool bursting = (i % cfg.burst_every) < burst_on;
    const double rate = bursting ? cfg.burst_rate : cfg.base_rate;
    // Exponential inter-arrival via inverse transform; -log1p(-u) is exact
    // near u = 0 and finite for u < 1 (uniform01 never returns 1).
    clock_ns += -std::log1p(-rng.uniform01()) * 1e9 / rate;

    const auto endpoint_pair = [&]() {
      auto u = static_cast<std::uint32_t>(zipf.next());
      auto v = static_cast<std::uint32_t>(zipf.next());
      if (u == v) v = (v + 1) % cfg.vertices;  // no self-loops in the edge store
      return std::pair{u, v};
    };

    const double mix = rng.uniform01();
    serve::Op op;
    if (mix < cfg.insert_frac + cfg.erase_frac &&
        mix >= cfg.insert_frac && !live.empty()) {
      // Erase a uniformly random LIVE edge (swap-remove from the reservoir).
      const std::uint64_t slot = rng.bounded(live.size());
      const std::uint64_t key = live[slot];
      live[slot] = live.back();
      live.pop_back();
      live_set.erase(key);
      const ds::EdgeKey e = ds::unpack_edge(key);
      op = serve::Op::edge_erase(e.u, e.v);
    } else if (mix < cfg.insert_frac + cfg.erase_frac) {
      // Insert (either by mix, or an erase that found the reservoir empty).
      const auto [u, v] = endpoint_pair();
      op = serve::Op::edge_insert(u, v, i + 1);
      const std::uint64_t key = ds::pack_edge(u, v);
      if (live_set.insert(key).second) live.push_back(key);
    } else if (mix < cfg.insert_frac + cfg.erase_frac + cfg.same_component_frac) {
      const auto [u, v] = endpoint_pair();
      op = serve::Op::same_component(u, v);
    } else {
      op = serve::Op::component_size(static_cast<std::uint32_t>(zipf.next()));
    }
    events.push_back({static_cast<std::uint64_t>(clock_ns), op});
  }
  return events;
}

}  // namespace crcw::stream
