// IncrementalCc — incremental connectivity for the streaming subsystem: a
// CAS-based union-find whose hook step is an arbitrary-CW write.
//
// Hooking. link(u, v) finds both roots and hooks the LARGER root under the
// smaller with one compare-exchange on parent[larger], expecting the
// self-loop — the TaggedBucket claim shape (winner-take-parent: many
// threads may offer parents for one root in one round; exactly one CAS
// lands, everyone else re-finds and retries). Because only roots are
// hooked and always to a strictly smaller id, parent values are monotone
// non-increasing along every chain under ANY interleaving — the same
// acyclicity argument as cc_min_hook — so concurrent links can never form
// a cycle and every find terminates. A failed CAS means another hook won
// that root (it is making progress); the loser backs off
// (Dice/Hendler/Mirsky shaping, util::Backoff) and retries against the
// new root. Each CAS success provably merges two distinct trees, so the
// component counter's fetch_sub is exact even under full contention.
//
// Path compaction runs as a between-rounds cooperative sweep (the
// grow_help idiom, not an in-find mutation): compact() rewrites every
// parent to its root and rebuilds the per-root size counts. find() is
// therefore read-only — safe concurrently with other finds and, during
// the write phase, concurrent with links (atomic loads of atomically
// CASed words; monotonicity keeps mid-link walks terminating).
//
// Deletions. Union-find cannot un-merge, so edge deletions take the
// bounded fallback: the scheduler collects the endpoints of every KILLED
// live edge in the round, and rebuild() recomputes exactly the affected
// components — the vertices whose (stale) root is a root of a killed
// endpoint — with the existing cc kernel over the live edges among them.
// The stale forest can only over-connect (merges the deletion may have
// undone), never under-connect, so no live edge crosses from an affected
// vertex to an unaffected one and the sub-problem is closed. The new
// representative of each rebuilt component is its minimum global vertex,
// preserving the parent[v] <= v invariant for later hooks.
#pragma once

#include <omp.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "algorithms/cc.hpp"
#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "graph/reference.hpp"
#include "obs/metrics.hpp"
#include "util/aligned_buffer.hpp"
#include "util/backoff.hpp"

namespace crcw::stream {

class IncrementalCc {
 public:
  /// `n` vertices, each initially its own component. With `counters` the
  /// hook path reports into a ContentionSite (attempts = hook tries,
  /// atomics = CASes issued, wins = merges) — profile passes only.
  explicit IncrementalCc(std::uint32_t n, bool counters = false,
                         std::string site_name = "stream-cc-hook")
      : n_(n), parent_(n), size_(n), components_(n) {
    if (n == 0) throw std::invalid_argument("IncrementalCc: n == 0");
    for (std::uint32_t v = 0; v < n; ++v) {
      parent_[v].store(v, std::memory_order_relaxed);
      size_[v].store(1, std::memory_order_relaxed);
    }
    if (counters) site_ = std::make_unique<obs::ContentionSite>(std::move(site_name));
  }

  IncrementalCc(const IncrementalCc&) = delete;
  IncrementalCc& operator=(const IncrementalCc&) = delete;

  [[nodiscard]] std::uint32_t size() const noexcept { return n_; }

  /// Concurrent hook: connects u and v; true iff two components merged
  /// (this thread's CAS was the arbitration winner for that merge).
  bool link(std::uint32_t u, std::uint32_t v) {
    util::Backoff backoff;
    for (;;) {
      std::uint32_t ru = root(u);
      std::uint32_t rv = root(v);
      if (ru == rv) return false;
      if (rv < ru) std::swap(ru, rv);  // hook the larger root under the smaller
      if (site_) {
        site_->count_attempt();
        site_->count_atomic();
      }
      std::uint32_t expected = rv;
      if (parent_[rv].compare_exchange_strong(expected, ru, std::memory_order_acq_rel,
                                              std::memory_order_relaxed)) {
        if (site_) site_->count_win();
        components_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
      backoff.pause();  // rv got hooked by a concurrent winner — re-find
    }
  }

  /// Read-only root walk (no halving — compaction is the sweep's job).
  [[nodiscard]] std::uint32_t find(std::uint32_t v) const noexcept {
    std::uint32_t p = parent_[v].load(std::memory_order_acquire);
    while (p != v) {
      v = p;
      p = parent_[v].load(std::memory_order_acquire);
    }
    return v;
  }

  [[nodiscard]] bool same_component(std::uint32_t u, std::uint32_t v) const noexcept {
    return find(u) == find(v);
  }

  /// |component of v|. Valid after the compact() that followed the last
  /// connectivity change (the scheduler compacts every changed round).
  [[nodiscard]] std::uint64_t component_size(std::uint32_t v) const noexcept {
    return size_[find(v)].load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t components() const noexcept {
    return components_.load(std::memory_order_relaxed);
  }

  /// Between-rounds cooperative sweep: full path compression (parent[v] =
  /// root(v)) plus a rebuild of the per-root sizes. Serial with
  /// threads == 1 (no OpenMP region — the raw-thread TSan tier's mode);
  /// otherwise three barrier-separated parallel passes. Must run
  /// quiescent: no concurrent link/rebuild.
  void compact(int threads = 0) {
    const auto n = static_cast<std::ptrdiff_t>(n_);
    if (threads == 1) {
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        parent_[static_cast<std::size_t>(v)].store(find(static_cast<std::uint32_t>(v)),
                                                   std::memory_order_relaxed);
      }
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        size_[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
      }
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        const std::uint32_t r =
            parent_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
        size_[r].fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    {
      // Pass 1 races benignly with itself: another thread compacting a
      // prefix of our chain only shortens our walk (roots are stable —
      // nothing links during the sweep).
#pragma omp for schedule(static)
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        parent_[static_cast<std::size_t>(v)].store(find(static_cast<std::uint32_t>(v)),
                                                   std::memory_order_relaxed);
      }
#pragma omp for schedule(static)
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        size_[static_cast<std::size_t>(v)].store(0, std::memory_order_relaxed);
      }
#pragma omp for schedule(static)
      for (std::ptrdiff_t v = 0; v < n; ++v) {
        const std::uint32_t r =
            parent_[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
        size_[r].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Bounded deletion fallback (serial, between rounds). `touched` holds
  /// the endpoints of every live edge the closing round erased;
  /// `each_edge` is a callable invoking fn(u, v) for every LIVE edge
  /// (post-round — the DynamicGraph sweep). Recomputes the partition of
  /// exactly the affected components via the cc kernel (serial DSU when
  /// threads == 1, the TSan-tier no-OpenMP path). Follow with compact()
  /// to refresh sizes.
  template <typename EdgeSource>
  void rebuild(const std::vector<std::uint32_t>& touched, EdgeSource&& each_edge,
               int threads = 0) {
    if (touched.empty()) return;
    constexpr std::uint32_t kNone = ~std::uint32_t{0};

    // Affected roots in the stale forest. Over-connected is fine: a
    // too-big affected set only rebuilds more than strictly necessary.
    std::vector<std::uint8_t> affected(n_, 0);
    std::uint64_t old_roots = 0;
    for (const std::uint32_t v : touched) {
      const std::uint32_t r = find(v);
      if (affected[r] == 0) {
        affected[r] = 1;
        ++old_roots;
      }
    }

    // Membership scan: local ids for every vertex of an affected
    // component, ascending — so the first member seen per rebuilt label
    // is the component's minimum global vertex.
    std::vector<std::uint32_t> local(n_, kNone);
    std::vector<std::uint32_t> verts;
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (affected[find(v)] != 0) {
        local[v] = static_cast<std::uint32_t>(verts.size());
        verts.push_back(v);
      }
    }

    // Live edges inside the affected set. No live edge crosses out of it:
    // the stale forest merges everything a live path ever connected, so
    // both endpoints of a live edge share a stale root.
    graph::EdgeList edges;
    each_edge([&](std::uint32_t a, std::uint32_t b) {
      if (local[a] != kNone && local[b] != kNone) {
        edges.push_back({local[a], local[b]});
      }
    });

    const auto n_local = static_cast<std::uint32_t>(verts.size());
    std::vector<graph::vertex_t> label;
    if (threads == 1) {
      // Serial DSU — same partition, no OpenMP region.
      graph::UnionFind uf(n_local);
      for (const graph::Edge& e : edges) uf.unite(e.u, e.v);
      label.resize(n_local);
      for (std::uint32_t i = 0; i < n_local; ++i) label[i] = uf.find(i);
    } else {
      const graph::Csr sub = graph::build_csr(
          n_local, edges, {.symmetrize = true, .sort_neighbors = false});
      label = algo::cc_caslt(sub, {.threads = threads}).label;
    }

    // Re-point every affected vertex at its component's minimum member —
    // parent[v] <= v survives, so later hooks stay monotone.
    std::vector<std::uint32_t> rep(n_local, kNone);
    std::uint64_t new_roots = 0;
    for (std::uint32_t i = 0; i < n_local; ++i) {
      const graph::vertex_t l = label[i];
      if (rep[l] == kNone) {
        rep[l] = verts[i];
        ++new_roots;
      }
      parent_[verts[i]].store(rep[l], std::memory_order_relaxed);
    }
    components_.fetch_add(new_roots - old_roots, std::memory_order_relaxed);
    ++rebuilds_;
  }

  /// Deletion-fallback rebuilds executed so far.
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }

  // -- snapshot capture/restore (serial, quiescent — under the scheduler's
  // -- held pump lock, where no link/rebuild/compact can run) ---------------

  /// Serialises the forest: fn(v, parent[v]) for every vertex. Captured at
  /// the same cut as the edge set, so a restored server's find() walks the
  /// exact pre-kill forest.
  template <typename Fn>
  void for_each_parent(Fn&& fn) const {
    for (std::uint32_t v = 0; v < n_; ++v) {
      fn(v, parent_[v].load(std::memory_order_relaxed));
    }
  }

  /// Restores one captured parent edge. Fails (false) on anything that
  /// would break the hook invariants — out-of-range ids or parent > v,
  /// which would let later hooks cycle — so a corrupt snapshot is refused
  /// instead of planting a forest that can hang find().
  [[nodiscard]] bool restore_parent(std::uint32_t v, std::uint32_t parent) {
    if (v >= n_ || parent > v) return false;
    parent_[v].store(parent, std::memory_order_relaxed);
    return true;
  }

  /// After the last restore_parent: recounts components from the restored
  /// forest and rebuilds the per-root sizes (serial compact). Call once,
  /// before serving resumes.
  void finish_restore() {
    std::uint64_t roots = 0;
    for (std::uint32_t v = 0; v < n_; ++v) {
      if (parent_[v].load(std::memory_order_relaxed) == v) ++roots;
    }
    components_.store(roots, std::memory_order_relaxed);
    compact(/*threads=*/1);
  }

  [[nodiscard]] obs::ContentionSite* site() noexcept { return site_.get(); }
  void flush_round() noexcept {
    if (site_) site_->flush_round();
  }

 private:
  [[nodiscard]] std::uint32_t root(std::uint32_t v) const noexcept { return find(v); }

  std::uint32_t n_;
  util::AlignedBuffer<std::atomic<std::uint32_t>> parent_;
  util::AlignedBuffer<std::atomic<std::uint64_t>> size_;
  std::atomic<std::uint64_t> components_;
  std::uint64_t rebuilds_ = 0;  // serial (between-rounds) counter
  std::unique_ptr<obs::ContentionSite> site_;
};

}  // namespace crcw::stream
