// StreamScheduler — the streaming ServiceBackend: batched edge updates and
// incremental connectivity over ONE DynamicGraph + ONE IncrementalCc,
// behind the same five-method surface the KV schedulers implement (so
// BasicServeSession, BasicWireServer and WireClient drive it unchanged).
//
// Stripes, not shards. Connectivity is global — there is no way to
// partition the vertex set so queries stay local — so the backend keeps
// one shared edge table and one shared forest, and its "shards" are
// execution STRIPES: a key's stripe is the high bits of ds::mix64(key),
// every record of a stripe executes on one thread (omp schedule static,1
// over stripes), and therefore all writes to one edge key are serialized
// on one thread. That per-key serialization is what legalises the
// mid-round reads below; cross-stripe parallelism is safe because the
// table's probe chains are atomic words and the forest's hook is a CAS.
//
// Round structure (one logical round per slice, one arbiter):
//
//   serial prolog   admission, vocabulary/bounds validation (KV kinds and
//                   malformed edges rejected without touching anything),
//                   ONE backlog-sized grow reservation on the edge table
//   ┌ omp for over stripes: phase A — connectivity queries + edge-weight ┐
//   │                        lookups against the COMMITTED pre-round      │
//   │                        state (the forest is quiescent: nothing      │
//   │                        links in phase A)                            │
//   ├ implicit barrier — the round boundary                               │
//   └ omp for over stripes: phase B — edge writes + hooks + publish      ┘
//   serial epilog   deletion fallback (IncrementalCc::rebuild over the
//                   killed endpoints), compaction sweep, win accounting
//
// Phase B per record: the table's round arbitration collapses all
// same-(edge, round) inserts/erases to one winner. A winning insert of an
// edge that was NOT live pre-round hooks the forest (cc_.link — the
// arbitrary-CW write; concurrent hooks on one root resolve by CAS, losers
// retry against the new root). A winning erase of a live edge only
// records its endpoints — the forest cannot un-merge, so deletions batch
// into the epilog's bounded rebuild. `was_live` is a mid-round read of a
// key only this stripe writes, which the table's ownership rule permits.
//
// Queries answer from the state committed by the previous round's epilog
// (hooks + rebuild + compact all happened-before the next round's phase
// A), so a round-r query result is exact for the prefix of writes with
// round < r — the same committed-read semantics the KV lookups give.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/arbiter.hpp"
#include "core/policies.hpp"
#include "ds/hash_common.hpp"
#include "obs/metrics.hpp"
#include "serve/config.hpp"
#include "serve/op.hpp"
#include "serve/request_queue.hpp"
#include "serve/serve_metrics.hpp"
#include "serve/service_backend.hpp"
#include "snap/cut.hpp"
#include "snap/snapshot_file.hpp"
#include "stream/dynamic_graph.hpp"
#include "stream/incremental_cc.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"

namespace crcw::stream {

class StreamScheduler {
 public:
  using Table = DynamicGraph::Table;

  StreamScheduler(const serve::ServeConfig& cfg, serve::RequestQueue& queue,
                  serve::ServeMetrics& metrics)
      : cfg_(cfg.validated()),
        threads_(cfg_.batch.resolved_threads()),
        stripe_mask_(static_cast<std::uint64_t>(cfg_.shards.count) - 1),
        lanes_per_stripe_(lanes_per_stripe(cfg_)),
        queue_(queue),
        metrics_(metrics),
        graph_(cfg_.stream.vertices,
               cfg_.stream.expected_edges != 0 ? cfg_.stream.expected_edges
                                               : cfg_.table.expected_keys,
               cfg_.table.hash_config("stream-edges")),
        cc_(cfg_.stream.vertices, cfg_.batch.counters) {
    stripes_.reserve(static_cast<std::size_t>(cfg_.shards.count));
    for (int s = 0; s < cfg_.shards.count; ++s) {
      stripes_.push_back(std::make_unique<Stripe>());
    }
  }

  StreamScheduler(const StreamScheduler&) = delete;
  StreamScheduler& operator=(const StreamScheduler&) = delete;

  /// Stripe-major lane layout, mirroring ShardedScheduler's shard-major
  /// one: every stripe owns the same number of lanes.
  [[nodiscard]] static int queue_lanes(const serve::ServeConfig& cfg) noexcept {
    const serve::ServeConfig v = cfg.validated();
    return v.shards.count * lanes_per_stripe(v);
  }

  bool submit_batch() { return run_batch(false); }
  bool flush() { return run_batch(true); }

  // -- committed state (serial / quiescent-pump reads) ----------------------
  /// Weight of the packed edge `key`, or null if not live.
  [[nodiscard]] const std::uint64_t* committed_read(std::uint64_t key) const noexcept {
    return graph_.find_key(key);
  }

  // -- routing --------------------------------------------------------------
  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(stripes_.size());
  }
  [[nodiscard]] int shard_of(std::uint64_t key) const noexcept {
    return static_cast<int>((ds::mix64(key) >> 32) & stripe_mask_);
  }
  [[nodiscard]] std::size_t route(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(shard_of(key)) *
               static_cast<std::size_t>(lanes_per_stripe_) +
           client_slot() % static_cast<std::size_t>(lanes_per_stripe_);
  }

  // -- snapshots (src/snap): cuts, capture, restore -------------------------
  static constexpr std::uint32_t kSnapshotKind = snap::kKindStream;

  /// Mints a consistent cut (round-only, for scan_digest). The edge scan
  /// that follows runs concurrently with later rounds under the held-cut
  /// discipline; whole-state checkpoints go through capture_snapshot
  /// instead so the forest agrees with the edge set.
  [[nodiscard]] snap::SnapshotCut mint_cut() {
    util::Backoff backoff;
    while (pump_lock_.test_and_set(std::memory_order_acquire)) backoff.pause();
    const snap::SnapshotCut cut{arbiter_.round(), 1};
    cuts_held_.fetch_add(1, std::memory_order_acq_rel);
    pump_lock_.clear(std::memory_order_release);
    return cut;
  }

  void release_cut() noexcept { cuts_held_.fetch_sub(1, std::memory_order_acq_rel); }

  /// Cuts currently held against this backend (maintenance parks on > 0).
  [[nodiscard]] std::uint64_t cuts_held() const noexcept {
    return cuts_held_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint32_t snapshot_shards() const noexcept { return 1; }

  /// Backend shape baked into snapshot headers: a stream snapshot from a
  /// server with a different vertex universe must not restore here (cc
  /// parents would land out of range or, worse, silently in range).
  [[nodiscard]] std::uint64_t config_digest() const noexcept {
    return ds::mix64(kSnapshotKind + 1) ^ ds::mix64(graph_.vertices());
  }

  /// Cut-predicated scan over the edge table (the digest surface; the
  /// forest is derived state and stays out of the fold).
  template <typename Fn>
  void scan_shard_at(std::uint32_t, round_t cut_round, Fn&& fn) const {
    graph_.table().for_each_at(cut_round, std::forward<Fn>(fn));
  }

  /// Whole-state capture for checkpoints: edge triples AND union-find
  /// parents taken together under the parked pump, so the forest agrees
  /// with the edge set exactly — a restored server answers same_component
  /// identically at the cut. Blocks the pump for the capture's duration
  /// (the stream backend trades checkpoint concurrency for forest
  /// consistency; the KV backends keep the concurrent path).
  template <typename EdgeFn, typename ParentFn>
  [[nodiscard]] snap::SnapshotCut capture_snapshot(EdgeFn&& on_edge,
                                                   ParentFn&& on_parent) {
    util::Backoff backoff;
    while (pump_lock_.test_and_set(std::memory_order_acquire)) backoff.pause();
    const snap::SnapshotCut cut{arbiter_.round(), 1};
    graph_.table().for_each_at(cut.round, std::forward<EdgeFn>(on_edge));
    cc_.for_each_parent(std::forward<ParentFn>(on_parent));
    pump_lock_.clear(std::memory_order_release);
    return cut;
  }

  /// Serial restore of one edge entry (before serving starts). Refuses
  /// keys that do not unpack to a valid edge of THIS graph — the same
  /// validation admission applies to live traffic.
  bool restore_entry(std::uint32_t, std::uint64_t key, std::uint64_t value,
                     round_t round) {
    const ds::EdgeKey e = ds::unpack_edge(key);
    if (!graph_.valid_edge(e.u, e.v)) return false;
    return graph_.table().restore_slot(key, value, round);
  }

  /// Serial restore of one union-find parent (monotone parent <= v is
  /// enforced inside IncrementalCc).
  bool restore_cc_entry(std::uint32_t v, std::uint32_t parent) {
    return cc_.restore_parent(v, parent);
  }

  /// Serial: recounts components and compacts paths once every parent is
  /// in place.
  void finish_restore() { cc_.finish_restore(); }

  /// Serial: continues the committed round sequence after restore.
  void reseed_round(round_t r) { arbiter_.reseed_round(r); }

  // -- introspection --------------------------------------------------------
  [[nodiscard]] round_t round() const noexcept { return arbiter_.round(); }
  [[nodiscard]] int exec_threads() const noexcept { return threads_; }
  [[nodiscard]] const DynamicGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] IncrementalCc& cc() noexcept { return cc_; }
  [[nodiscard]] const IncrementalCc& cc() const noexcept { return cc_; }
  /// Edge-table reclaim sweeps triggered at batch close (watermark- or
  /// telemetry-driven).
  [[nodiscard]] std::uint64_t reclaims() const noexcept {
    return reclaims_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] serve::BackendStats stats() const noexcept {
    serve::BackendStats st;
    st.rounds = round();
    st.batches = batches_.load(std::memory_order_relaxed);
    st.deadline_batches = deadline_batches_.load(std::memory_order_relaxed);
    st.ops_served = ops_served_.load(std::memory_order_relaxed);
    st.keys = graph_.edges();
    st.shards = shard_count();
    st.shard_local_ops = metrics_.route_local();
    st.shard_foreign_ops = metrics_.route_foreign();
    return st;
  }

 private:
  // One execution stripe: the pump's per-batch working state. Padded so
  // two stripes' slice-local fields (written by different omp threads)
  // never share a line.
  struct alignas(util::kCacheLineSize) Stripe {
    std::vector<serve::Record> pending;   // drained this batch (pump-private)
    std::vector<std::uint32_t> deleted;   // killed-edge endpoints, this slice
    std::uint64_t ops_total = 0;          // lifetime executed ops (pump-serial)
    std::uint64_t wins = 0;               // this slice (owning thread only)
    std::uint64_t hooks = 0;              // forest links, this slice
    bool full = false;                    // this slice (owning thread only)
  };

  /// Admission vocabulary: what this backend does with a record. KV kinds
  /// (kUpsert/kErase) are rejected — this backend serves the graph, and a
  /// raw u64 upsert could forge the sentinel or a self-loop the edge
  /// validation exists to keep out.
  enum class Admit : std::uint8_t { kReject, kLookup, kQuery, kWrite };

  [[nodiscard]] Admit classify(const serve::Op& op) const noexcept {
    switch (op.kind) {
      case serve::OpKind::kLookup:
        return op.key == Table::kEmptyKey ? Admit::kReject : Admit::kLookup;
      case serve::OpKind::kEdgeInsert:
      case serve::OpKind::kEdgeErase: {
        const ds::EdgeKey e = ds::unpack_edge(op.key);
        return graph_.valid_edge(e.u, e.v) ? Admit::kWrite : Admit::kReject;
      }
      case serve::OpKind::kSameComponent:
        return op.key < graph_.vertices() && op.value < graph_.vertices()
                   ? Admit::kQuery
                   : Admit::kReject;
      case serve::OpKind::kComponentSize:
        return op.key < graph_.vertices() ? Admit::kQuery : Admit::kReject;
      case serve::OpKind::kUpsert:
      case serve::OpKind::kErase:
      case serve::OpKind::kSnapshotCreate:  // answered by the wire server,
      case serve::OpKind::kSnapshotScan:    // never inside a round
        return Admit::kReject;
    }
    return Admit::kReject;
  }

  [[nodiscard]] static int lanes_per_stripe(const serve::ServeConfig& v) noexcept {
    const int lanes = v.batch.resolved_lanes();
    const int count = v.shards.count;
    return std::max(1, (lanes + count - 1) / count);
  }

  [[nodiscard]] static std::size_t client_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  [[nodiscard]] bool trigger_fired(bool& by_deadline) const noexcept {
    const std::uint64_t pending = queue_.pending();
    if (pending == 0) return false;
    if (pending >= cfg_.batch.max_batch) return true;
    const std::uint64_t oldest = queue_.oldest_enqueue_ns();
    by_deadline =
        oldest != 0 && serve::now_ns() - oldest >= cfg_.batch.max_wait_us * 1000;
    return by_deadline;
  }

  bool run_batch(bool force) {
    bool by_deadline = false;
    if (!force && !trigger_fired(by_deadline)) return false;
    if (pump_lock_.test_and_set(std::memory_order_acquire)) return false;

    std::uint64_t drained = 0;
    std::uint64_t local = 0;
    std::uint64_t foreign = 0;
    const std::size_t lanes = queue_.lanes();
    for (std::size_t l = 0; l < lanes; ++l) {
      const auto lane_stripe =
          std::min(l / static_cast<std::size_t>(lanes_per_stripe_), stripes_.size() - 1);
      scratch_.clear();
      drained += queue_.drain_lane_into(l, scratch_);
      for (const serve::Record& rec : scratch_) {
        const auto s = static_cast<std::size_t>(shard_of(rec.op.key));
        if (s == lane_stripe) {
          ++local;
        } else {
          ++foreign;
        }
        stripes_[s]->pending.push_back(rec);
      }
    }

    bool executed = false;
    if (drained > 0) {
      std::size_t slices = 0;
      for (const auto& s : stripes_) {
        const std::size_t need =
            (s->pending.size() + cfg_.batch.max_batch - 1) / cfg_.batch.max_batch;
        slices = std::max(slices, need);
      }
      for (std::size_t j = 0; j < slices; ++j) execute_slice(j);

      batches_.fetch_add(1, std::memory_order_relaxed);
      if (by_deadline) deadline_batches_.fetch_add(1, std::memory_order_relaxed);
      ops_served_.fetch_add(drained, std::memory_order_relaxed);
      metrics_.batch_closed();
      metrics_.routed(local, foreign);
      for (auto& s : stripes_) s->pending.clear();
      // Batch boundary = step boundary: the edge table reclaims when its
      // tombstone watermark OR its own probe telemetry says the churn has
      // degraded walks (the signal-driven trigger). Parked while any
      // snapshot cut is held — reclaim frees the bucket array a concurrent
      // cut-predicated scan may still be walking.
      if (cuts_held() == 0 && graph_.maybe_reclaim(threads_)) {
        reclaims_.fetch_add(1, std::memory_order_relaxed);
      }
      executed = true;
    }
    pump_lock_.clear(std::memory_order_release);
    return executed;
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> window(std::size_t s,
                                                           std::size_t j) const {
    const auto& pending = stripes_[s]->pending;
    const std::size_t begin = std::min(pending.size(), j * cfg_.batch.max_batch);
    const std::size_t end = std::min(pending.size(), begin + cfg_.batch.max_batch);
    return {begin, end};
  }

  /// One logical round across every stripe.
  void execute_slice(std::size_t j) {
    admit_ns_ = serve::now_ns();

    // Serial prolog: admission bookkeeping, vocabulary/bounds rejection,
    // and ONE backlog reservation on the shared edge table (grow runs its
    // own OpenMP region, so it cannot live inside the execution region).
    std::uint64_t admitted = 0;
    std::uint64_t write_count = 0;
    for (std::size_t s = 0; s < stripes_.size(); ++s) {
      const auto [begin, end] = window(s, j);
      if (begin == end) continue;
      Stripe& stripe = *stripes_[s];
      for (std::size_t i = begin; i < end; ++i) {
        const serve::Record& rec = stripe.pending[i];
        if (rec.enqueue_ns != 0) metrics_.record_admit(rec.enqueue_ns, admit_ns_);
        switch (classify(rec.op)) {
          case Admit::kReject:
            publish(rec, serve::Result{0, false, arbiter_.round() + 1});
            break;
          case Admit::kWrite:
            ++write_count;
            break;
          default:
            break;
        }
      }
      const auto ops = static_cast<std::uint64_t>(end - begin);
      admitted += ops;
      stripe.ops_total += ops;
      stripe.wins = 0;
      stripe.hooks = 0;
      stripe.full = false;
      stripe.deleted.clear();
    }
    metrics_.ops_admitted(admitted);
    // Backlog grow parks while a cut is held (grow frees the old bucket
    // array under a live scan); stream checkpoint workloads pre-size via
    // StreamConfig::expected_edges.
    if (cuts_held() == 0) graph_.maybe_grow_for_backlog(write_count, threads_);

    const auto scope = arbiter_.next_round(ResetMode::kNone);
    const round_t r = scope.round();
    const auto n_stripes = static_cast<std::ptrdiff_t>(stripes_.size());

    if (threads_ == 1) {
      // Strictly serial, no OpenMP region (the raw-thread TSan stress
      // tier's mode): all queries before any write, same round boundary.
      for (std::ptrdiff_t s = 0; s < n_stripes; ++s) {
        query_pass(static_cast<std::size_t>(s), j, r);
      }
      for (std::ptrdiff_t s = 0; s < n_stripes; ++s) {
        write_pass(static_cast<std::size_t>(s), j, r);
      }
    } else {
#pragma omp parallel num_threads(threads_)
      {
#pragma omp for schedule(static, 1)
        for (std::ptrdiff_t s = 0; s < n_stripes; ++s) {
          query_pass(static_cast<std::size_t>(s), j, r);
        }
        // implicit barrier — the round boundary: every committed-state
        // query of round r closed before any round-r write or hook begins.
#pragma omp for schedule(static, 1)
        for (std::ptrdiff_t s = 0; s < n_stripes; ++s) {
          write_pass(static_cast<std::size_t>(s), j, r);
        }
        // implicit barrier — edge commits and hooks of round r are done
      }
    }

    // Serial epilog: deletions batched by the write phase take the
    // bounded fallback — rebuild the affected components from live edges,
    // then one compaction sweep refreshes paths and sizes for the next
    // round's queries.
    std::uint64_t wins = 0;
    std::uint64_t hooks = 0;
    bool full = false;
    touched_.clear();
    for (std::size_t s = 0; s < stripes_.size(); ++s) {
      Stripe& stripe = *stripes_[s];
      wins += stripe.wins;
      hooks += stripe.hooks;
      full = full || stripe.full;
      touched_.insert(touched_.end(), stripe.deleted.begin(), stripe.deleted.end());
      const auto [begin, end] = window(s, j);
      if (begin != end) metrics_.record_shard_round_ops(end - begin);
    }
    if (!touched_.empty()) {
      cc_.rebuild(
          touched_,
          [this](auto&& fn) {
            graph_.for_each_edge(
                [&fn](std::uint32_t u, std::uint32_t v, std::uint64_t) { fn(u, v); });
          },
          threads_);
    }
    if (hooks != 0 || !touched_.empty()) cc_.compact(threads_);
    cc_.flush_round();
    graph_.table().flush_round();
    if (full) {
      throw std::runtime_error("stream: edge table full despite backlog reservation");
    }
    metrics_.write_wins(wins);
    metrics_.flush_round();
  }

  /// Phase A on one stripe: connectivity queries and edge-weight lookups
  /// against the committed pre-round state.
  void query_pass(std::size_t s, std::size_t j, round_t r) {
    Stripe& stripe = *stripes_[s];
    const auto [begin, end] = window(s, j);
    for (std::size_t i = begin; i < end; ++i) {
      const serve::Record& rec = stripe.pending[i];
      switch (classify(rec.op)) {
        case Admit::kLookup: {
          const std::uint64_t* v = graph_.find_key(rec.op.key);
          publish(rec, serve::Result{v != nullptr ? *v : 0, v != nullptr, r});
          break;
        }
        case Admit::kQuery:
          if (rec.op.kind == serve::OpKind::kSameComponent) {
            const bool same = cc_.same_component(static_cast<std::uint32_t>(rec.op.key),
                                                 static_cast<std::uint32_t>(rec.op.value));
            publish(rec, serve::Result{same ? 1u : 0u, true, r});
          } else {  // kComponentSize
            publish(rec, serve::Result{
                             cc_.component_size(static_cast<std::uint32_t>(rec.op.key)),
                             true, r});
          }
          break;
        default:
          break;
      }
    }
  }

  /// Phase B on one stripe (serial within the stripe): round-arbitrated
  /// edge writes, forest hooks for fresh inserts, endpoint capture for
  /// killed edges. `was_live` reads a key only this stripe writes —
  /// legal mid-round under the table's ownership rule.
  void write_pass(std::size_t s, std::size_t j, round_t r) {
    Stripe& stripe = *stripes_[s];
    const auto [begin, end] = window(s, j);
    for (std::size_t i = begin; i < end; ++i) {
      const serve::Record& rec = stripe.pending[i];
      if (classify(rec.op) != Admit::kWrite) continue;
      const ds::EdgeKey e = ds::unpack_edge(rec.op.key);
      const bool was_live = graph_.has_edge(e.u, e.v);
      if (rec.op.kind == serve::OpKind::kEdgeInsert) {
        switch (graph_.insert(r, e.u, e.v, rec.op.value)) {
          case ds::MapUpsert::kWon:
            ++stripe.wins;
            if (!was_live) {
              if (cc_.link(e.u, e.v)) ++stripe.hooks;
            }
            publish(rec, serve::Result{rec.op.value, true, r});
            break;
          case ds::MapUpsert::kLost: {
            const std::uint64_t* v = graph_.find(e.u, e.v);
            publish(rec, serve::Result{v != nullptr ? *v : 0, false, r});
            break;
          }
          case ds::MapUpsert::kFull:
            stripe.full = true;
            publish(rec, serve::Result{0, false, r});
            break;
        }
      } else {  // kEdgeErase
        const ds::MapUpsert outcome = graph_.erase(r, e.u, e.v);
        if (outcome == ds::MapUpsert::kWon) {
          ++stripe.wins;
          if (was_live) {
            stripe.deleted.push_back(e.u);
            stripe.deleted.push_back(e.v);
          }
        }
        publish(rec, serve::Result{0, outcome == ds::MapUpsert::kWon, r});
      }
    }
  }

  void publish(const serve::Record& rec, const serve::Result& result) {
    if (rec.enqueue_ns != 0) {  // sampled (see BatchConfig)
      metrics_.record_commit(rec.enqueue_ns, admit_ns_, serve::now_ns());
    }
    rec.future->publish(result);
  }

  serve::ServeConfig cfg_;
  int threads_;
  std::uint64_t stripe_mask_;
  int lanes_per_stripe_;
  serve::RequestQueue& queue_;
  serve::ServeMetrics& metrics_;
  DynamicGraph graph_;
  IncrementalCc cc_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  // One arbiter = one logical round id for the whole graph (CAS-LT needs
  // no reset sweep, so next_round(kNone) is one increment).
  WriteArbiter<CasLtPolicy> arbiter_{0};
  std::atomic_flag pump_lock_;
  // Snapshot cuts currently held (mint_cut/release_cut). While > 0 the
  // batch epilog skips edge-table reclaim and backlog grow — both free
  // the bucket array concurrent cut-predicated scans are walking.
  std::atomic<std::uint64_t> cuts_held_{0};

  // Pump-private scratch (only touched under pump_lock_).
  std::vector<serve::Record> scratch_;
  std::vector<std::uint32_t> touched_;
  std::uint64_t admit_ns_ = 0;

  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> deadline_batches_{0};
  std::atomic<std::uint64_t> ops_served_{0};
  std::atomic<std::uint64_t> reclaims_{0};
};

}  // namespace crcw::stream
