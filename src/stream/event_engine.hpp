// EventEngine — open-loop trace replay against a serve session: anything
// with submit(Op, OpFuture&) and release-published futures (the
// BasicServeSession surface). The wire path has its own driver
// (examples/stream_loadgen) because WireClient is synchronous.
//
// Open loop means arrivals do not wait for completions: each client
// thread paces against the trace's absolute timestamps (sleep while far
// ahead, spin the last stretch) and submits on schedule whether or not
// earlier ops have committed — so a burst actually queues work and the
// measured query latency includes the queueing the burst caused. That is
// the methodological point: a closed-loop driver would throttle itself
// during the burst and hide exactly the p99 the bench exists to measure.
// `max_lag_ns` reports how far submission fell behind the trace clock —
// the coordinated-omission check: headline numbers are only honest if the
// driver kept up.
//
// Clients stride the trace (client t takes events t, t+C, t+2C, …), which
// preserves each client's timestamp order and spreads bursts across all
// of them. In-flight ops live in a small per-client ring of OpFutures;
// arming a slot that is still in flight first waits for it — bounding
// per-client outstanding ops at the ring size without ever pausing the
// arrival clock for completions that are keeping up.
//
// Query (same_component / component_size / lookup) latencies are sampled
// submit→ready into a shared lock-free histogram; writes are counted but
// not timed here (the serve layer's own enqueue→commit histogram covers
// them).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/op.hpp"
#include "stream/workload.hpp"

namespace crcw::stream {

/// Aggregate outcome of one replay.
struct ReplayStats {
  std::uint64_t events = 0;
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t queries = 0;
  std::uint64_t edges_won = 0;      ///< edge writes that won their round
  std::uint64_t duration_ns = 0;    ///< wall time of the whole replay
  std::uint64_t max_lag_ns = 0;     ///< worst submit-behind-schedule distance
  std::uint64_t throttled = 0;      ///< events admitted closed-loop (lag bound)
  std::uint64_t query_p50_ns = 0;   ///< submit→ready, sampled queries
  std::uint64_t query_p99_ns = 0;

  [[nodiscard]] double events_per_sec() const noexcept {
    return duration_ns == 0
               ? 0.0
               : static_cast<double>(events) * 1e9 / static_cast<double>(duration_ns);
  }
};

class EventEngine {
 public:
  /// Replay `events` against `session` with `clients` submitting threads.
  /// The session's pump must already be running (start_pump), or the
  /// caller must poll concurrently — the engine only submits and waits.
  ///
  /// `max_lag_us` is the backpressure bound (0 = off, pure open loop):
  /// once a client's submission falls more than this far behind the trace
  /// clock, each further event first retires the client's previous
  /// in-flight op before submitting — admission degrades to closed-loop
  /// at the server's completion rate instead of queueing unboundedly, and
  /// every such event counts in ReplayStats::throttled. The lag STILL
  /// reports honestly in max_lag_ns (throttling bounds queue growth, not
  /// the clock deficit), so the coordinated-omission check keeps working.
  template <typename Session>
  static ReplayStats replay(Session& session, std::span<const Event> events,
                            int clients = 1, std::uint64_t max_lag_us = 0) {
    if (clients < 1) clients = 1;
    const std::uint64_t lag_bound_ns = max_lag_us * 1000;
    obs::Histogram query_hist;  // record() is thread-safe (relaxed atomics)
    std::atomic<std::uint64_t> inserts{0};
    std::atomic<std::uint64_t> erases{0};
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> edges_won{0};
    std::atomic<std::uint64_t> max_lag{0};
    std::atomic<std::uint64_t> throttled{0};

    const std::uint64_t start_ns = serve::now_ns();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        constexpr std::size_t kRing = 256;
        std::array<serve::OpFuture, kRing> ring;
        std::array<std::uint64_t, kRing> submit_ns{};  // 0 = not a timed query
        std::array<bool, kRing> in_flight{};
        std::uint64_t local_won = 0;
        std::uint64_t local_lag = 0;
        std::uint64_t local_throttled = 0;

        // Wait out the op in `slot` and harvest its result (no-op if the
        // slot is empty — backpressure may retire a slot early).
        const auto drain_slot = [&](std::size_t slot) {
          if (!in_flight[slot]) return;
          serve::OpFuture& f = ring[slot];
          serve::BackoffState backoff(64);
          while (!f.ready()) backoff.pause();
          if (f.result().won) ++local_won;
          if (submit_ns[slot] != 0) {
            query_hist.record(serve::now_ns() - submit_ns[slot]);
            submit_ns[slot] = 0;
          }
          f.reset();
          in_flight[slot] = false;
        };

        std::uint64_t k = 0;  // this client's event counter
        for (std::size_t i = static_cast<std::size_t>(t); i < events.size();
             i += static_cast<std::size_t>(clients), ++k) {
          const Event& ev = events[i];
          // Pace against the trace clock: sleep while > 100us early, then
          // spin the remainder (sleep granularity would smear the burst).
          std::uint64_t lag_now = 0;
          for (;;) {
            const std::uint64_t now = serve::now_ns() - start_ns;
            if (now >= ev.at_ns) {
              lag_now = now - ev.at_ns;
              if (lag_now > local_lag) local_lag = lag_now;
              break;
            }
            const std::uint64_t ahead = ev.at_ns - now;
            if (ahead > 100'000) {
              std::this_thread::sleep_for(std::chrono::nanoseconds(ahead - 50'000));
            }
          }

          const std::size_t slot = static_cast<std::size_t>(k % kRing);
          drain_slot(slot);  // retire the slot's previous lap, if any
          if (lag_bound_ns != 0 && lag_now > lag_bound_ns && k > 0) {
            // Past the lag bound: retire the previous in-flight op before
            // admitting this one — closed-loop until the server catches up.
            drain_slot(static_cast<std::size_t>((k - 1) % kRing));
            ++local_throttled;
          }

          switch (ev.op.kind) {
            case serve::OpKind::kEdgeInsert:
              inserts.fetch_add(1, std::memory_order_relaxed);
              break;
            case serve::OpKind::kEdgeErase:
              erases.fetch_add(1, std::memory_order_relaxed);
              break;
            default:
              queries.fetch_add(1, std::memory_order_relaxed);
              break;
          }
          submit_ns[slot] = serve::is_read_op(ev.op.kind) ? serve::now_ns() : 0;
          session.submit(ev.op, ring[slot]);
          in_flight[slot] = true;
        }
        // Retire the still-armed slots (drain_slot skips empty ones).
        for (std::size_t s = 0; s < kRing; ++s) drain_slot(s);
        edges_won.fetch_add(local_won, std::memory_order_relaxed);
        throttled.fetch_add(local_throttled, std::memory_order_relaxed);
        std::uint64_t seen = max_lag.load(std::memory_order_relaxed);
        while (local_lag > seen &&
               !max_lag.compare_exchange_weak(seen, local_lag, std::memory_order_relaxed)) {
        }
      });
    }
    for (std::thread& th : threads) th.join();

    ReplayStats stats;
    stats.events = events.size();
    stats.inserts = inserts.load();
    stats.erases = erases.load();
    stats.queries = queries.load();
    stats.edges_won = edges_won.load();
    stats.duration_ns = serve::now_ns() - start_ns;
    stats.max_lag_ns = max_lag.load();
    stats.throttled = throttled.load();
    stats.query_p50_ns = query_hist.quantile_upper_bound(0.50);
    stats.query_p99_ns = query_hist.quantile_upper_bound(0.99);
    return stats;
  }
};

}  // namespace crcw::stream
