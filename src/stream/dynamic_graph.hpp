// DynamicGraph — the mutable edge store of the streaming subsystem: an
// undirected multigraph-free edge set over ONE CW-arbitrated
// ConcurrentHashMap, keyed by ds::pack_edge's canonical (min,max) packing.
//
// Everything hard is inherited from the table. Insert/erase are the map's
// round-arbitrated upsert/erase, so N concurrent inserts and erases of the
// same edge in one round collapse to exactly one committed CAS-LT winner
// (one CAS per (edge, round)) and every loser observes the committed
// outcome wait-free. Erases commit tombstones whose buckets the
// cooperative reclaim sweep drops, so the footprint under insert/erase
// churn stays bounded by the live edge count, not the op count — the
// ext_churn claim, now for edges. Values are plain payloads (edge weights)
// published by the step barrier: read them from serial code or after the
// barrier that closed the writing round, except for keys the reading
// thread itself owns within the round (the stream scheduler's per-stripe
// serialization leans on this: a stripe may re-read keys only it writes,
// because probe chains are atomic words and nobody else touches those
// buckets' values).
//
// The reclaim trigger is telemetry-driven when the table carries a site:
// maybe_reclaim(threads) feeds the table's own probe-path observations
// (probe p99, H2 false-positive rate) back into the signal overload, so a
// churned edge table rebuilds as soon as walks degrade (hash_common.hpp,
// ReclaimSignal).
#pragma once

#include <cstdint>
#include <utility>

#include "core/round_tag.hpp"
#include "ds/concurrent_hash_map.hpp"
#include "ds/hash_common.hpp"

namespace crcw::stream {

class DynamicGraph {
 public:
  using Table = ds::ConcurrentHashMap<std::uint64_t, std::uint64_t>;

  /// `vertices` bounds the vertex-id universe [0, vertices);
  /// `expected_edges` sizes the initial table.
  DynamicGraph(std::uint32_t vertices, std::uint64_t expected_edges,
               ds::HashConfig cfg = {})
      : vertices_(vertices),
        table_(expected_edges < 1 ? 1 : expected_edges, std::move(cfg)) {}

  [[nodiscard]] std::uint32_t vertices() const noexcept { return vertices_; }

  /// A storable edge: both endpoints in-universe and no self-loop (the
  /// packed self-loop at 0xffffffff would be the table's reserved
  /// sentinel; rejecting ALL self-loops keeps it unreachable and the
  /// connectivity structure loop-free).
  [[nodiscard]] static constexpr bool valid_edge(std::uint32_t u, std::uint32_t v,
                                                 std::uint32_t vertices) noexcept {
    return u != v && u < vertices && v < vertices;
  }
  [[nodiscard]] constexpr bool valid_edge(std::uint32_t u, std::uint32_t v) const noexcept {
    return valid_edge(u, v, vertices_);
  }

  // -- round-arbitrated writes (inside a round; rounds strictly increase) ----

  /// Insert {u, v} with weight `value`; one winner per (edge, round)
  /// across inserts AND erases. The caller validates the edge.
  ds::MapUpsert insert(round_t round, std::uint32_t u, std::uint32_t v,
                       std::uint64_t value) {
    return table_.upsert(round, ds::pack_edge(u, v), value);
  }

  /// Erase {u, v} — commits a tombstone; same arbitration as insert.
  ds::MapUpsert erase(round_t round, std::uint32_t u, std::uint32_t v) {
    return table_.erase(round, ds::pack_edge(u, v));
  }

  // -- committed reads (serial / post-barrier / owned-key mid-round) ---------

  [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t v) const noexcept {
    return table_.contains(ds::pack_edge(u, v));
  }
  [[nodiscard]] const std::uint64_t* find(std::uint32_t u, std::uint32_t v) const noexcept {
    return table_.find(ds::pack_edge(u, v));
  }
  [[nodiscard]] const std::uint64_t* find_key(std::uint64_t packed) const noexcept {
    return table_.find(packed);
  }

  /// Live edges (committed inserts minus committed erases).
  [[nodiscard]] std::uint64_t edges() const noexcept { return table_.size(); }

  /// Serial/post-barrier sweep over live edges: fn(u, v, weight) with
  /// u < v (the canonical unpacking).
  template <typename Fn>
  void for_each_edge(Fn&& fn) const {
    table_.for_each([&fn](std::uint64_t key, const std::uint64_t& value) {
      const ds::EdgeKey e = ds::unpack_edge(key);
      fn(e.u, e.v, value);
    });
  }

  // -- step-boundary maintenance (serial, no round in flight) ----------------

  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    return table_.maybe_grow_for_backlog(backlog, threads);
  }

  /// Reclaim gated on the static tombstone watermark OR the table's own
  /// probe telemetry (the signal-driven trigger). Returns true iff a
  /// rebuild ran.
  bool maybe_reclaim(int threads = 0) {
    return table_.maybe_reclaim_parallel(threads, table_.telemetry_signal());
  }

  [[nodiscard]] Table& table() noexcept { return table_; }
  [[nodiscard]] const Table& table() const noexcept { return table_; }

 private:
  std::uint32_t vertices_;
  Table table_;
};

}  // namespace crcw::stream
