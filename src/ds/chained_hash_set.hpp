// ChainedHashSet — separate chaining whose node allocation rides the
// SlotAllocator's chunk grants: one shared fetch_add per util::slot_chunk()
// nodes instead of one per insert, the exact contention reduction
// core/slot_alloc.hpp built for the frontier kernels, applied to hash
// nodes (Bender et al., "Fast Concurrent Primitives Despite Contention":
// fewer threads touching one line beats micro-tuning the RMW).
//
// Insert is a Treiber push onto the bucket's head index with a
// self-tombstoning dedup pass:
//
//   1. scan the chain — if the key appears anywhere, it is present (see
//      the invariant below) and no node is spent;
//   2. grant a node from the caller's lane, fill it, CAS it in at head;
//   3. re-scan *from the new node's next pointer*: if the key appears
//      deeper, an older insert of the same key committed first — mark our
//      own node dead and report kFound. Only the deepest same-key node
//      stays live, so exactly one thread per key returns kInserted: the
//      arbitrary-CW one-winner contract, without marked pointers or
//      unlinking.
//
// Invariant (why scans may ignore the dead flag): a dead node was
// tombstoned because a same-key node sat deeper; by induction along the
// finite chain the deepest same-key node is always live. Hence *any*
// occurrence of a key — dead or not — proves membership. The flag exists
// only so for_each() visits each key once.
//
// Indices, not pointers, link the chain: nodes live in one arena sized at
// construction, are never freed or reused (tombstones stay), so there is
// no ABA window on the head CAS.
//
// Threading contract mirrors SlotAllocator's: at most one thread per lane
// at a time (OpenMP callers pass omp_get_thread_num(); raw threads pass
// their own dense ids); inserts/lookups run concurrently, for_each and
// counter readout are serial/post-barrier.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>
#include <utility>

#include "core/slot_alloc.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"

namespace crcw::ds {

template <typename Key = std::uint64_t>
  requires std::unsigned_integral<Key>
class ChainedHashSet {
 public:
  static constexpr std::uint64_t kNil = std::numeric_limits<std::uint64_t>::max();

  /// `capacity` bounds the *nodes spent*, which exceeds distinct keys by
  /// the tombstoned duplicates plus each lane's unconsumed chunk tail
  /// (SlotAllocator::slack()); the arena adds that slack on top.
  ChainedHashSet(std::uint64_t capacity, int lanes, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        heads_(bucket_count_for(static_cast<std::uint64_t>(
            static_cast<double>(capacity < 1 ? 1 : capacity) / cfg_.max_load))),
        mask_(heads_.size() - 1),
        alloc_(lanes),
        arena_(alloc_.capacity_for(capacity)) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return heads_.size(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_.total(); }
  [[nodiscard]] SlotAllocator& allocator() noexcept { return alloc_; }

  /// Inserts `key` using the caller's lane. Lock-free (the head CAS
  /// retries only when another insert committed). kFull means the node
  /// arena is exhausted — unlike the open tables there is no grow
  /// protocol; size the arena for the workload.
  SetInsert insert(int lane, Key key) {
    const std::uint64_t b = mix64(key) & mask_;
    std::atomic<std::uint64_t>& head = heads_[b].index;

    std::uint64_t top = head.load(std::memory_order_acquire);
    if (chain_has(top, key)) return SetInsert::kFound;

    const std::uint64_t slot = alloc_.grant(lane);
    if (slot >= arena_.size()) return SetInsert::kFull;
    Node& node = arena_[slot];
    node.key = key;

    for (;;) {
      node.next.store(top, std::memory_order_relaxed);
      telemetry_.cas();
      if (head.compare_exchange_weak(top, slot, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        break;
      }
      // `top` reloaded; re-link and retry. A failed CAS means another
      // insert committed — lock-free, not wait-free.
    }

    // Dedup: an older same-key node deeper in the chain wins.
    if (chain_has(node.next.load(std::memory_order_relaxed), key)) {
      node.dead.store(true, std::memory_order_release);
      return SetInsert::kFound;
    }
    telemetry_.win();
    size_.add(1);
    return SetInsert::kInserted;
  }

  /// Wait-free membership test (bounded by chain length); concurrent
  /// inserts may or may not be visible.
  [[nodiscard]] bool contains(Key key) const noexcept {
    const std::uint64_t b = mix64(key) & mask_;
    return chain_has(heads_[b].index.load(std::memory_order_acquire), key);
  }

  /// Serial/post-barrier iteration over live (deduplicated) keys.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Head& h : heads_) {
      for (std::uint64_t i = h.index.load(std::memory_order_acquire); i != kNil;
           i = arena_[i].next.load(std::memory_order_acquire)) {
        if (!arena_[i].dead.load(std::memory_order_acquire)) fn(arena_[i].key);
      }
    }
  }

  /// Mean/max chain length over non-empty buckets (diagnostics; serial).
  [[nodiscard]] std::pair<double, std::uint64_t> chain_stats() const {
    std::uint64_t nodes = 0, chains = 0, longest = 0;
    for (const Head& h : heads_) {
      std::uint64_t len = 0;
      for (std::uint64_t i = h.index.load(std::memory_order_acquire); i != kNil;
           i = arena_[i].next.load(std::memory_order_acquire)) {
        ++len;
      }
      if (len > 0) {
        ++chains;
        nodes += len;
        longest = std::max(longest, len);
      }
    }
    return {chains == 0 ? 0.0 : static_cast<double>(nodes) / static_cast<double>(chains),
            longest};
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }

  /// Round boundary hook: folds the allocator's shared-cursor refills into
  /// the site (counter `refills`) and flushes the round histograms.
  /// Serial/post-barrier.
  void flush_round() noexcept {
    if (telemetry_.enabled()) {
      const std::uint64_t refills = alloc_.refills();
      for (std::uint64_t i = folded_refills_; i < refills; ++i) telemetry_.chunk_claim();
      folded_refills_ = refills;
    }
    telemetry_.flush_round();
  }

 private:
  struct Node {
    Key key{};
    std::atomic<std::uint64_t> next{kNil};
    std::atomic<bool> dead{false};
  };

  struct Head {
    std::atomic<std::uint64_t> index{kNil};
  };

  /// Whether `key` occurs anywhere in the chain starting at `from`. Dead
  /// nodes count (see the file-comment invariant).
  [[nodiscard]] bool chain_has(std::uint64_t from, Key key) const noexcept {
    std::uint64_t walked = 0;
    for (std::uint64_t i = from; i != kNil;
         i = arena_[i].next.load(std::memory_order_acquire)) {
      ++walked;
      if (arena_[i].key == key) {
        telemetry_.probes(walked);
        return true;
      }
    }
    telemetry_.probes(walked);
    return false;
  }

  HashConfig cfg_;
  mutable TableTelemetry telemetry_;  ///< counters only; recorders are thread-safe
  util::AlignedBuffer<Head> heads_;
  std::uint64_t mask_;
  SlotAllocator alloc_;
  util::AlignedBuffer<Node> arena_;
  ShardedCounter size_;
  std::uint64_t folded_refills_ = 0;  ///< serial: flush_round only
};

}  // namespace crcw::ds
