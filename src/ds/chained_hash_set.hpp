// ChainedHashSet — separate chaining whose node allocation rides the
// SlotAllocator's chunk grants: one shared fetch_add per util::slot_chunk()
// nodes instead of one per insert, the exact contention reduction
// core/slot_alloc.hpp built for the frontier kernels, applied to hash
// nodes (Bender et al., "Fast Concurrent Primitives Despite Contention":
// fewer threads touching one line beats micro-tuning the RMW).
//
// Insert is a Treiber push onto the bucket's head index with a
// self-tombstoning dedup pass:
//
//   1. scan the chain — if the key appears LIVE anywhere, it is present
//      and no node is spent;
//   2. grant a node from the caller's lane, fill it, CAS it in at head;
//   3. re-scan *from the new node's next pointer*: if a live same-key
//      node sits deeper, an older insert of the same key committed first —
//      mark our own node dead and report kFound. Only the deepest live
//      same-key node stays live, so exactly one thread per key returns
//      kInserted: the arbitrary-CW one-winner contract, without marked
//      pointers or unlinking.
//
// Invariant: membership is "a live same-key node exists", and at most one
// live node per key survives any insert phase — a pushed node
// self-tombstones exactly when a deeper live twin exists, and by
// induction along the finite chain the deepest live twin never
// tombstones itself. Dead nodes are permanent within a phase (nothing
// revives them; a re-insert of an erased key pushes a fresh node), which
// is what makes the induction sound under erase.
//
// Erase marks the key's live node dead: one compare-exchange on the
// node's dead flag, first clearer wins. Phase discipline: erases run
// concurrently with erases/lookups of any key and inserts of OTHER keys;
// same-key insert/erase races need the usual phase (round) separation —
// the chained set has no round tags, the open tables own that case.
//
// Indices, not pointers, link the chain: nodes live in one arena sized at
// construction. Tombstoned nodes are not leaked: reclaim(), serial at a
// step boundary, unlinks every dead node and feeds the indices back to
// the allocator's recycled pool (SlotAllocator::stock_recycled), so
// long-lived churn reuses the arena. There is no ABA window on the head
// CAS because recycling happens only between phases — no in-flight
// insert can hold a recycled index.
//
// Threading contract mirrors SlotAllocator's: at most one thread per lane
// at a time (OpenMP callers pass omp_get_thread_num(); raw threads pass
// their own dense ids); inserts/erases/lookups run concurrently (see the
// phase discipline above), for_each, reclaim and counter readout are
// serial/post-barrier.
#pragma once

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/slot_alloc.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/backoff.hpp"

namespace crcw::ds {

/// Chain-shape diagnostics with the live/dead split: dead (tombstoned)
/// nodes still occupy chain links until a reclaim, so counting them as
/// occupancy would overstate the probe cost the benches report.
struct ChainStats {
  double mean_live = 0.0;          ///< mean live nodes per non-empty chain
  std::uint64_t longest_live = 0;  ///< max live nodes on one chain
  std::uint64_t live_nodes = 0;
  std::uint64_t dead_nodes = 0;    ///< reclaimable tombstones still linked
};

template <typename Key = std::uint64_t>
  requires std::unsigned_integral<Key>
class ChainedHashSet {
 public:
  static constexpr std::uint64_t kNil = std::numeric_limits<std::uint64_t>::max();

  /// `capacity` bounds the *nodes spent*, which exceeds distinct keys by
  /// the tombstoned duplicates plus each lane's unconsumed chunk tail
  /// (SlotAllocator::slack()); the arena adds that slack on top. Reclaim
  /// sweeps recycle tombstones, so under churn the bound applies per
  /// phase, not per lifetime.
  ChainedHashSet(std::uint64_t capacity, int lanes, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        heads_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        mask_(heads_.size() - 1),
        alloc_(lanes),
        arena_(alloc_.capacity_for(capacity)) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return heads_.size(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_.total(); }
  /// Tombstoned nodes awaiting reclaim (erases + self-tombstoned dups).
  /// Serial or post-barrier.
  [[nodiscard]] std::uint64_t tombstones() const noexcept { return dead_.total(); }
  [[nodiscard]] SlotAllocator& allocator() noexcept { return alloc_; }

  /// Inserts `key` using the caller's lane. Lock-free (the head CAS
  /// retries only when another insert committed). kFull means the node
  /// arena is exhausted — unlike the open tables there is no grow
  /// protocol; size the arena for the workload and reclaim() between
  /// phases.
  SetInsert insert(int lane, Key key) {
    const std::uint64_t b = mix64(key) & mask_;
    std::atomic<std::uint64_t>& head = heads_[b].index;

    std::uint64_t top = head.load(std::memory_order_acquire);
    if (chain_has_live(top, key)) return SetInsert::kFound;

    const std::uint64_t slot = alloc_.grant(lane);
    if (slot >= arena_.size()) return SetInsert::kFull;
    Node& node = arena_[slot];
    node.key = key;
    node.dead.store(false, std::memory_order_relaxed);

    // Adaptive mode stamps the loser's ceiling from the site's observed
    // failure rate (refreshed at flush_round); default mode keeps the
    // static bound.
    util::Backoff backoff =
        cfg_.adaptive_backoff ? adaptive_.make() : util::Backoff{};
    for (;;) {
      node.next.store(top, std::memory_order_relaxed);
      telemetry_.cas();
      if (head.compare_exchange_weak(top, slot, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        break;
      }
      // `top` reloaded; re-link and retry. A failed CAS means another
      // insert committed — lock-free, not wait-free — so this is a true
      // retry loop and gets bounded exponential backoff (util/backoff.hpp);
      // hot chains otherwise convoy every pusher on one head line.
      backoff.pause();
    }

    // Dedup: an older live same-key node deeper in the chain wins.
    if (chain_has_live(node.next.load(std::memory_order_relaxed), key)) {
      node.dead.store(true, std::memory_order_release);
      dead_.add(1);
      return SetInsert::kFound;
    }
    telemetry_.win();
    size_.add(1);
    return SetInsert::kInserted;
  }

  /// Erases `key`: tombstones its live node. First CAS on the dead flag
  /// wins; returns true iff this call transitioned the key live → dead
  /// (false if absent or already erased). The node stays linked — and
  /// counted by tombstones() — until reclaim() unlinks and recycles it.
  bool erase(Key key) {
    const std::uint64_t b = mix64(key) & mask_;
    std::uint64_t walked = 0;
    for (std::uint64_t i = heads_[b].index.load(std::memory_order_acquire); i != kNil;
         i = arena_[i].next.load(std::memory_order_acquire)) {
      ++walked;
      Node& node = arena_[i];
      if (node.key != key || node.dead.load(std::memory_order_acquire)) continue;
      telemetry_.cas();
      bool expected = false;
      if (node.dead.compare_exchange_strong(expected, true, std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        telemetry_.probes(walked);
        telemetry_.tombstone();
        dead_.add(1);
        size_.sub(1);
        return true;
      }
      // A racing eraser tombstoned this node first; keep walking in case
      // a deeper live twin exists (it cannot under the phase discipline,
      // but the walk is bounded and the defensive scan is free).
    }
    telemetry_.probes(walked);
    return false;
  }

  /// Wait-free membership test (bounded by chain length); true iff a live
  /// same-key node exists. Concurrent inserts/erases may or may not be
  /// visible.
  [[nodiscard]] bool contains(Key key) const noexcept {
    const std::uint64_t b = mix64(key) & mask_;
    return chain_has_live(heads_[b].index.load(std::memory_order_acquire), key);
  }

  /// Serial/post-barrier iteration over live (deduplicated) keys.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Head& h : heads_) {
      for (std::uint64_t i = h.index.load(std::memory_order_acquire); i != kNil;
           i = arena_[i].next.load(std::memory_order_acquire)) {
        if (!arena_[i].dead.load(std::memory_order_acquire)) fn(arena_[i].key);
      }
    }
  }

  /// Chain-shape diagnostics with live and dead counted separately
  /// (serial). mean/longest describe LIVE occupancy — what a lookup pays
  /// after the next reclaim; dead_nodes is the reclaimable backlog.
  [[nodiscard]] ChainStats chain_stats() const {
    ChainStats s;
    std::uint64_t chains = 0;
    for (const Head& h : heads_) {
      std::uint64_t live = 0;
      std::uint64_t dead = 0;
      for (std::uint64_t i = h.index.load(std::memory_order_acquire); i != kNil;
           i = arena_[i].next.load(std::memory_order_acquire)) {
        if (arena_[i].dead.load(std::memory_order_acquire)) {
          ++dead;
        } else {
          ++live;
        }
      }
      if (live + dead > 0) ++chains;
      s.live_nodes += live;
      s.dead_nodes += dead;
      s.longest_live = std::max(s.longest_live, live);
    }
    if (chains > 0) {
      s.mean_live = static_cast<double>(s.live_nodes) / static_cast<double>(chains);
    }
    return s;
  }

  // -- reclamation (serial, between phases) ---------------------------------

  /// Tombstone watermark against the arena — the resource churn actually
  /// exhausts here. Serial or post-barrier.
  [[nodiscard]] bool needs_reclaim() const noexcept {
    const std::uint64_t dead = tombstones();
    return dead > 0 && static_cast<double>(dead) >=
                           cfg_.reclaim_ratio * static_cast<double>(arena_.size());
  }

  /// Serial: unlinks every dead node and feeds its arena index back to the
  /// allocator's recycled pool, so the next phase's grants reuse them.
  /// Returns the number of nodes recycled. ABA-safe by construction: no
  /// parallel phase is in flight, so no thread holds an unlinked index.
  std::uint64_t reclaim() {
    std::vector<std::uint64_t> freed;
    for (Head& h : heads_) {
      // Dead prefix: advance the head itself.
      std::uint64_t i = h.index.load(std::memory_order_relaxed);
      while (i != kNil && arena_[i].dead.load(std::memory_order_relaxed)) {
        freed.push_back(i);
        i = arena_[i].next.load(std::memory_order_relaxed);
      }
      h.index.store(i, std::memory_order_relaxed);
      // Interior runs: splice each dead run out.
      while (i != kNil) {
        std::uint64_t next = arena_[i].next.load(std::memory_order_relaxed);
        while (next != kNil && arena_[next].dead.load(std::memory_order_relaxed)) {
          freed.push_back(next);
          next = arena_[next].next.load(std::memory_order_relaxed);
        }
        arena_[i].next.store(next, std::memory_order_relaxed);
        i = next;
      }
    }
    for (const std::uint64_t idx : freed) {
      arena_[idx].dead.store(false, std::memory_order_relaxed);
      arena_[idx].next.store(kNil, std::memory_order_relaxed);
    }
    const auto recycled = static_cast<std::uint64_t>(freed.size());
    telemetry_.reclaimed(recycled);
    dead_.reset();
    alloc_.stock_recycled(std::move(freed));
    return recycled;
  }

  /// Watermark-gated reclaim for step boundaries; returns the number of
  /// nodes recycled (0 if below the watermark).
  std::uint64_t maybe_reclaim() { return needs_reclaim() ? reclaim() : 0; }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }

  /// Round boundary hook: folds the allocator's shared-cursor refills into
  /// the site (counter `refills`) and flushes the round histograms.
  /// Serial/post-barrier.
  void flush_round() noexcept {
    if (telemetry_.enabled()) {
      const std::uint64_t refills = alloc_.refills();
      for (std::uint64_t i = folded_refills_; i < refills; ++i) telemetry_.chunk_claim();
      folded_refills_ = refills;
    }
    telemetry_.flush_round();
    refresh_backoff_ceiling();
  }

  /// Re-samples the adaptive head-CAS backoff ceiling from the site's
  /// cumulative failure rate (CASes that lost = atomics − wins; erase and
  /// tombstone CASes fold in as "contended traffic", which is the right
  /// bias — they fight over the same chains). No-op unless
  /// HashConfig::adaptive_backoff AND telemetry are on.
  void refresh_backoff_ceiling() noexcept {
    if (!cfg_.adaptive_backoff || !telemetry_.enabled()) return;
    const obs::ContentionTotals t = telemetry_.site()->totals();
    adaptive_.observe(t.atomics, t.atomics > t.wins ? t.atomics - t.wins : 0);
  }

  /// The live head-CAS backoff ceiling (quiet default unless adaptive
  /// mode has observed contention). Tests and the ext_hash storm A/B read
  /// this to pin the adaptation direction.
  [[nodiscard]] std::uint32_t backoff_ceiling() const noexcept {
    return adaptive_.ceiling();
  }

 private:
  struct Node {
    Key key{};
    std::atomic<std::uint64_t> next{kNil};
    std::atomic<bool> dead{false};
  };

  struct Head {
    std::atomic<std::uint64_t> index{kNil};
  };

  /// Whether a LIVE `key` node occurs in the chain starting at `from`.
  /// Dead nodes are walked through but never prove membership — a dead
  /// twin means the key was erased (or the node lost a dedup race to a
  /// node that itself proves membership or was erased later).
  [[nodiscard]] bool chain_has_live(std::uint64_t from, Key key) const noexcept {
    std::uint64_t walked = 0;
    for (std::uint64_t i = from; i != kNil;
         i = arena_[i].next.load(std::memory_order_acquire)) {
      ++walked;
      if (arena_[i].key == key && !arena_[i].dead.load(std::memory_order_acquire)) {
        telemetry_.probes(walked);
        return true;
      }
    }
    telemetry_.probes(walked);
    return false;
  }

  HashConfig cfg_;
  mutable TableTelemetry telemetry_;  ///< counters only; recorders are thread-safe
  util::AlignedBuffer<Head> heads_;
  std::uint64_t mask_;
  SlotAllocator alloc_;
  util::AlignedBuffer<Node> arena_;
  ShardedCounter size_;
  ShardedCounter dead_;
  util::AdaptiveBackoffCeiling adaptive_;  ///< head-CAS ceiling (adaptive mode)
  std::uint64_t folded_refills_ = 0;  ///< serial: flush_round only
};

}  // namespace crcw::ds
