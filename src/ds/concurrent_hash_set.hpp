// ConcurrentHashSet — open-addressing key membership with arbitrary-CW
// insert arbitration and a cooperative, lock-free, chunk-swept resize.
//
// The insert race *is* a concurrent write: every thread offering key k
// races one compare-exchange on k's home bucket, exactly one wins, and
// every loser learns wait-free whether the committed value was its own key
// (present) or a stranger's (probe on) — TaggedBucket's claim protocol,
// which is CAS-LT with the empty sentinel in the stale-round role. There
// are no locks anywhere: inserts are lock-free (bounded by the probe
// walk), lookups are wait-free reads.
//
// Erase is membership split from bucket ownership: a claimed bucket holds
// its key forever (probe chains walk through it), while a side
// AtomicBitset marks *tombstoned* buckets. The polarity is deliberate —
// a freshly claimed bucket is live with the bit at rest, so the
// insert-only fast path (the dedup/semijoin build phases measured by the
// benches) is exactly one CAS with zero bitset traffic; only erase (first
// bit-setter wins) and revive (first bit-clearer wins) pay an extra RMW,
// each an arbitrary concurrent write of a boolean. Tombstones are dropped
// by reclaim sweeps, which rebuild the array from the live buckets and
// shrink it back toward the live count.
//
// Growth is DHash-style cooperative migration, run *between* rounds at the
// PRAM step boundary instead of behind per-bucket locks: one thread calls
// grow_prepare(), every thread then sweeps chunks of the old bucket array
// claimed from a shared cursor (one RMW per `migrate_chunk` buckets — the
// SlotAllocator trick applied to migration), and after the team's barrier
// one thread calls grow_finish() to swap the arrays. Inserts and the
// migration sweep never overlap, so migration needs no flags on the
// buckets themselves; the protocol's safety hangs on the same barrier the
// round structure already provides.
//
//   serial:   if (set.needs_grow()) set.grow_prepare();
//   parallel: if (set.growing()) set.grow_help();   // every thread
//   barrier
//   serial:   if (set.growing()) set.grow_finish();
//
// or, from serial code with an OpenMP team: set.maybe_grow_parallel().
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/atomic_bitset.hpp"

namespace crcw::ds {

template <typename Key = std::uint64_t>
  requires std::unsigned_integral<Key>
class ConcurrentHashSet {
 public:
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  /// Sizes the bucket array so `capacity` keys stay under cfg.max_load.
  explicit ConcurrentHashSet(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        dead_(buckets_.size()),
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }

  /// Live keys only (claimed minus tombstoned). Serial or post-barrier.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return occupied_.total() - dead_.count();
  }
  /// Claimed buckets, live or dead — the probe-chain-length driver.
  [[nodiscard]] std::uint64_t occupied() const noexcept { return occupied_.total(); }
  /// Current tombstones (erased keys still holding their buckets).
  [[nodiscard]] std::uint64_t tombstones() const noexcept { return dead_.count(); }
  [[nodiscard]] const HashConfig& config() const noexcept { return cfg_; }

  /// Inserts `key`, reviving it if it was erased. Safe concurrently with
  /// other inserts, erases and lookups; NOT concurrently with the grow
  /// sweep (the round structure separates them). kInserted goes to the
  /// thread whose RMW made the key live: the claim winner on a fresh
  /// bucket, the tombstone-bit clearer on an erased one. Throws
  /// std::invalid_argument for the reserved sentinel key.
  SetInsert insert(Key key) {
    check_key(key);
    assert(!growing() && "insert during cooperative grow: missing barrier");
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      telemetry_.probes(1);
      Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (buckets_[b].key.compare_exchange_strong(current, key,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
          telemetry_.win();
          occupied_.add(1);
          return SetInsert::kInserted;  // fresh claim is born live
        }
        // Lost the claim; `current` holds the winner's key — observe it
        // wait-free, no reload, no retry on this bucket.
      }
      if (current == key) {
        if (!dead_.test(b)) return SetInsert::kFound;  // live: no RMW
        telemetry_.cas();
        if (dead_.test_and_reset(b)) {  // revive race: first clearer wins
          telemetry_.win();
          return SetInsert::kInserted;
        }
        return SetInsert::kFound;
      }
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  /// Erases `key`: marks its bucket tombstoned. First setter wins —
  /// returns true iff this call transitioned the key live → dead (false
  /// if the key was absent or already erased). The bucket stays claimed
  /// until a reclaim sweep drops it.
  bool erase(Key key) {
    check_key(key);
    assert(!growing() && "erase during cooperative grow: missing barrier");
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      telemetry_.probes(1);
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) return false;
      if (current == key) {
        if (dead_.test(b)) return false;  // already tombstoned: no RMW
        telemetry_.cas();
        if (dead_.test_and_set(b)) {
          telemetry_.tombstone();
          return true;
        }
        return false;  // a racing eraser set the bit first
      }
      b = (b + 1) & mask_;
    }
    return false;
  }

  /// Membership test for live keys. Wait-free; concurrent inserts/erases
  /// may or may not be visible (keys never move outside a grow sweep, so
  /// a live hit is always authoritative).
  [[nodiscard]] bool contains(Key key) const noexcept {
    if (key == kEmptyKey) return false;
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == key) return !dead_.test(b);
      if (current == kEmptyKey) return false;
      b = (b + 1) & mask_;
    }
    return false;
  }

  /// Serial/post-barrier iteration over the committed live keys.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t i = 0; i < buckets_.size(); ++i) {
      const Key k = buckets_[i].key.load(std::memory_order_acquire);
      if (k != kEmptyKey && !dead_.test(i)) fn(k);
    }
  }

  // -- cooperative migration: grow and tombstone reclaim --------------------
  // One protocol, two directions (see concurrent_hash_map.hpp): the sweep
  // skips dead buckets, so every migration is also a reclaim, and
  // reclaim_prepare points it at a target sized from the live count.

  /// True once claimed buckets exceed cfg.max_load — tombstones count,
  /// because they lengthen probe chains exactly like live keys. Serial or
  /// post-barrier.
  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(occupied()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  /// Tombstone-ratio watermark (HashConfig::reclaim_ratio); the gap below
  /// max_load is the grow/shrink hysteresis band.
  [[nodiscard]] bool needs_reclaim() const noexcept {
    const std::uint64_t dead = tombstones();
    return dead > 0 && static_cast<double>(dead) >=
                           cfg_.reclaim_ratio * static_cast<double>(buckets_.size());
  }

  /// Serial: allocates the next array (factor × buckets) and opens the
  /// migration window.
  void grow_prepare(std::uint64_t factor = 2) {
    if (factor < 2) factor = 2;
    migration_prepare(bucket_count_for(buckets_.size() * factor));
  }

  /// Serial: opens a migration sized for the live keys, so the sweep drops
  /// every tombstone and the array shrinks back toward size()/max_load.
  void reclaim_prepare() {
    migration_prepare(bucket_count_for(required_buckets(size(), cfg_.max_load)));
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Any thread, repeatedly until it returns: claims chunks of the old
  /// bucket array from the shared cursor and re-inserts every live bucket
  /// into the next array (tombstoned ones are dropped — nothing can
  /// revive them mid-sweep, since writes never overlap migrations).
  /// Lock-free: one fetch_add per chunk, one claim CAS per live bucket,
  /// and a stalled helper blocks nobody — the chunks it claimed are its
  /// own. Returns when the cursor is exhausted (which does NOT mean every
  /// chunk is migrated — the caller's barrier before grow_finish()
  /// establishes that).
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      std::uint64_t moved = 0;
      std::uint64_t dropped = 0;
      for (std::uint64_t i = begin; i < stop; ++i) {
        const Key k = buckets_[i].key.load(std::memory_order_acquire);
        if (k == kEmptyKey) continue;
        if (dead_.test(i)) {
          ++dropped;
          continue;
        }
        migrate_into(mig, k);
        ++moved;
      }
      if (moved > 0) mig.live_moved.fetch_add(moved, std::memory_order_relaxed);
      if (dropped > 0) mig.dropped.fetch_add(dropped, std::memory_order_relaxed);
      telemetry_.migrated(stop - begin);
    }
  }

  /// Serial, after every helper has passed the barrier: installs the next
  /// array (and its all-clear tombstone bits — migrated keys are live by
  /// construction).
  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    dead_ = std::move(migration_->dead);
    mask_ = migration_->mask;
    occupied_.reset();
    occupied_.add(migration_->live_moved.load(std::memory_order_relaxed));
    telemetry_.reclaimed(migration_->dropped.load(std::memory_order_relaxed));
    migration_.reset();
  }

  /// Serial convenience: the whole protocol over an OpenMP team.
  /// `threads <= 0` means the ambient OpenMP default.
  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    // The implicit barrier at parallel-region end is the protocol barrier.
    grow_finish();
  }

  /// Serial: grows iff needed; returns whether it grew.
  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Cooperative rebuild toward the live count: drops every tombstone and
  /// shrinks the array if churn left it oversized.
  void reclaim_parallel(int threads = 0) {
    reclaim_prepare();
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  /// Watermark-gated reclaim for step boundaries. Returns true iff a
  /// rebuild ran.
  bool maybe_reclaim_parallel(int threads = 0) {
    if (!needs_reclaim()) return false;
    reclaim_parallel(threads);
    return true;
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t occ = occupied();
    const std::uint64_t demand =
        backlog > std::numeric_limits<std::uint64_t>::max() - occ
            ? std::numeric_limits<std::uint64_t>::max()
            : occ + backlog;
    const std::uint64_t want = bucket_count_for(required_buckets(demand, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    // Both sides are powers of two, so the division is exact — the old
    // `size * factor < want` doubling loop could wrap to 0 for huge
    // backlogs and never terminate.
    grow_parallel(threads, want / buckets_.size());
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }

  /// Round boundary hook: folds the round's counter deltas into the site's
  /// per-round histograms. Serial/post-barrier.
  void flush_round() noexcept { telemetry_.flush_round(); }

 private:
  struct Bucket {
    std::atomic<Key> key{kEmptyKey};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    util::AtomicBitset dead;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> live_moved{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  static void check_key(Key key) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashSet: the all-ones key is reserved");
    }
  }

  void migration_prepare(std::uint64_t target_buckets) {
    assert(!growing() && "migration_prepare while a migration is already open");
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(target_buckets);
    mig->dead = util::AtomicBitset(target_buckets);
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  /// Migration insert: helpers never offer the same key twice (keys are
  /// unique in the old array), so the claim either wins or probes past a
  /// different key — kHeld cannot happen, and the target (sized for every
  /// live key at max_load ≤ 1) cannot fill.
  void migrate_into(Migration& mig, Key key) {
    std::uint64_t b = mix64(key) & mig.mask;
    for (;;) {
      telemetry_.probes(1);
      Key current = mig.buckets[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (mig.buckets[b].key.compare_exchange_strong(current, key,
                                                       std::memory_order_acq_rel,
                                                       std::memory_order_acquire)) {
          return;
        }
      }
      assert(current != key && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  util::AtomicBitset dead_;
  std::uint64_t mask_;
  ShardedCounter occupied_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
