// ConcurrentHashSet — open-addressing key membership with arbitrary-CW
// insert arbitration and a cooperative, lock-free, chunk-swept resize.
//
// The insert race *is* a concurrent write: every thread offering key k
// races one compare-exchange on k's home bucket, exactly one wins, and
// every loser learns wait-free whether the committed value was its own key
// (present) or a stranger's (probe on) — TaggedBucket's claim protocol,
// which is CAS-LT with the empty sentinel in the stale-round role. There
// are no locks anywhere: inserts are lock-free (bounded by the probe
// walk), lookups are wait-free reads.
//
// Erase is membership split from bucket ownership: a claimed bucket holds
// its key forever (probe chains walk through it), while a side
// AtomicBitset marks *tombstoned* buckets. The polarity is deliberate —
// a freshly claimed bucket is live with the bit at rest, so the
// insert-only fast path (the dedup/semijoin build phases measured by the
// benches) is exactly one CAS with zero bitset traffic; only erase (first
// bit-setter wins) and revive (first bit-clearer wins) pay an extra RMW,
// each an arbitrary concurrent write of a boolean. Tombstones are dropped
// by reclaim sweeps, which rebuild the array from the live buckets and
// shrink it back toward the live count.
//
// Probing is Swiss-table-style group scanning over a control-byte sidecar
// (one byte per bucket: kCtrlEmpty, kCtrlTombstone, or the key's H2
// fingerprint — see hash_common.hpp): a walk snapshots 16 bytes per step
// (util::Group) and verifies only the lanes whose byte could be the probed
// key, so buckets claimed by fingerprint-mismatched keys cost no bucket-
// line traffic at all. The sidecar is strictly a FILTER: bytes are
// published with release stores *after* the authoritative RMW commits
// (claim CAS, tombstone bit set, revive bit clear), every fingerprint hit
// is re-verified against the atomic key word, and empty/tombstone lanes
// are always candidates — so a stale byte can only cost an extra verify or
// an extra group step, never a wrong answer. HashConfig::group_probe turns
// the scan off for A/B runs; the sidecar is maintained either way.
//
// Growth is DHash-style cooperative migration, run *between* rounds at the
// PRAM step boundary instead of behind per-bucket locks: one thread calls
// grow_prepare(), every thread then sweeps chunks of the old bucket array
// claimed from a shared cursor (one RMW per `migrate_chunk` buckets — the
// SlotAllocator trick applied to migration), and after the team's barrier
// one thread calls grow_finish() to swap the arrays. Inserts and the
// migration sweep never overlap, so migration needs no flags on the
// buckets themselves; the protocol's safety hangs on the same barrier the
// round structure already provides.
//
//   serial:   if (set.needs_grow()) set.grow_prepare();
//   parallel: if (set.growing()) set.grow_help();   // every thread
//   barrier
//   serial:   if (set.growing()) set.grow_finish();
//
// or, from serial code with an OpenMP team: set.maybe_grow_parallel().
#pragma once

#include <omp.h>

#include <atomic>
#include <bit>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/round_tag.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/atomic_bitset.hpp"
#include "util/simd.hpp"

namespace crcw::ds {

template <typename Key = std::uint64_t>
  requires std::unsigned_integral<Key>
class ConcurrentHashSet {
 public:
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  /// Sizes the bucket array so `capacity` keys stay under cfg.max_load.
  explicit ConcurrentHashSet(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        dead_(buckets_.size()),
        ctrl_(buckets_.size()),  // value-initialised atomics = all kCtrlEmpty
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }

  /// Live keys only (claimed minus tombstoned). Serial or post-barrier.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return occupied_.total() - dead_.count();
  }
  /// Claimed buckets, live or dead — the probe-chain-length driver.
  [[nodiscard]] std::uint64_t occupied() const noexcept { return occupied_.total(); }
  /// Current tombstones (erased keys still holding their buckets).
  [[nodiscard]] std::uint64_t tombstones() const noexcept { return dead_.count(); }
  [[nodiscard]] const HashConfig& config() const noexcept { return cfg_; }

  /// Inserts `key`, reviving it if it was erased. Safe concurrently with
  /// other inserts, erases and lookups; NOT concurrently with the grow
  /// sweep (the round structure separates them). kInserted goes to the
  /// thread whose RMW made the key live: the claim winner on a fresh
  /// bucket, the tombstone-bit clearer on an erased one. Throws
  /// std::invalid_argument for the reserved sentinel key.
  SetInsert insert(Key key) {
    check_key(key);
    assert(!growing() && "insert during cooperative grow: missing barrier");
    ProbeStats stats;
    // Home-lane fast path, mirrored from the walks' probe 0. Home is lane
    // zero of both walks and a claim must land on the earliest free lane,
    // so attempting it before any group machinery changes no arbitration
    // outcome — the common insert at moderate fill claims an empty home
    // with one load and one CAS, never paying for a group snapshot. Only
    // a stranger at home (or a lost claim to one) takes the outlined walk,
    // which re-checks home once — a benign extra probe in the rare path.
    const std::uint64_t mixed = mix64(key);
    const std::uint64_t home = mixed & mask_;
    ++stats.probes;
    Key current = buckets_[home].key.load(std::memory_order_acquire);
    SetInsert r;
    if (current == kEmptyKey) {
      telemetry_.cas();
      if (buckets_[home].key.compare_exchange_strong(current, key,
                                                     std::memory_order_acq_rel,
                                                     std::memory_order_acquire)) {
        ctrl_[home].store(ctrl_h2(mixed), std::memory_order_release);
        telemetry_.win();
        occupied_.add(1);
        telemetry_.walk(stats);
        return SetInsert::kInserted;
      }
      // Lost the claim; `current` holds the winner's key.
    }
    if (current == key) {
      r = revive_or_found(home, ctrl_h2(mixed));
    } else {
      r = group_probing() ? insert_group(key, stats) : insert_scalar(key, stats);
    }
    telemetry_.walk(stats);
    return r;
  }

  /// Erases `key`: marks its bucket tombstoned. First setter wins —
  /// returns true iff this call transitioned the key live → dead (false
  /// if the key was absent or already erased). The bucket stays claimed
  /// until a reclaim sweep drops it.
  bool erase(Key key) {
    check_key(key);
    assert(!growing() && "erase during cooperative grow: missing barrier");
    ProbeStats stats;
    // Same home-lane fast path as insert(): a key match commits the
    // tombstone directly, an empty home is a sound miss (see contains()),
    // and only a stranger at home pays for the outlined walk.
    ++stats.probes;
    const std::uint64_t home = mix64(key) & mask_;
    const Key at_home = buckets_[home].key.load(std::memory_order_acquire);
    bool r;
    if (at_home == key) {
      r = commit_tombstone(home);
    } else if (at_home == kEmptyKey) {
      r = false;
    } else {
      r = group_probing() ? erase_group(key, stats) : erase_scalar(key, stats);
    }
    telemetry_.walk(stats);
    return r;
  }

  /// Membership test for live keys. Wait-free; concurrent inserts/erases
  /// may or may not be visible (keys never move outside a grow sweep, so
  /// a live hit is always authoritative).
  [[nodiscard]] bool contains(Key key) const noexcept {
    if (key == kEmptyKey) return false;
    // Home-bucket fast path against the authoritative word — exactly the
    // scalar walk's first step, shared by both probe modes so the common
    // case inlines small at every call site. A match is a hit; an empty
    // home is a sound miss (a displaced key implies its home was claimed
    // at insert time, and buckets never unclaim outside barrier-separated
    // migrations, so key-elsewhere ⇒ home non-empty). Only a stranger at
    // home pays for the outlined walk.
    const std::uint64_t mixed = mix64(key);
    const std::uint64_t home = mixed & mask_;
    const Key at_home = buckets_[home].key.load(std::memory_order_acquire);
    if (at_home == key) return !dead_.test(home);
    if (at_home == kEmptyKey) return false;
    return contains_slow(key, mixed, home);
  }

  /// Serial/post-barrier iteration over the committed live keys.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t i = 0; i < buckets_.size(); ++i) {
      const Key k = buckets_[i].key.load(std::memory_order_acquire);
      if (k != kEmptyKey && !dead_.test(i)) fn(k);
    }
  }

  /// Concurrent-safe membership scan, the set-shaped sibling of the map's
  /// cut-predicated for_each_at. Every read is atomic (key word + liveness
  /// bit), so it may run concurrently with inserts/erases/lookups — but the
  /// set carries no round word beside its keys, so the cut round cannot
  /// refine the view: each key is reported live-as-observed, and a caller
  /// needing a round-exact cut uses ConcurrentHashMap (whose LiveTag packs
  /// the round the way snapshots require). NOT safe concurrently with
  /// grow/reclaim, same as the map's scan — park migrations first.
  template <typename Fn>
  void for_each_at(round_t /*cut_round*/, Fn&& fn) const {
    for (std::uint64_t i = 0; i < buckets_.size(); ++i) {
      const Key k = buckets_[i].key.load(std::memory_order_acquire);
      if (k != kEmptyKey && !dead_.test(i)) fn(k);
    }
  }

  /// Collecting wrapper over for_each_at. Same concurrency contract.
  [[nodiscard]] std::vector<Key> scan_at(round_t cut_round) const {
    std::vector<Key> out;
    out.reserve(size());
    for_each_at(cut_round, [&out](Key k) { out.push_back(k); });
    return out;
  }

  // -- cooperative migration: grow and tombstone reclaim --------------------
  // One protocol, two directions (see concurrent_hash_map.hpp): the sweep
  // skips dead buckets, so every migration is also a reclaim, and
  // reclaim_prepare points it at a target sized from the live count.

  /// True once claimed buckets exceed cfg.max_load — tombstones count,
  /// because they lengthen probe chains exactly like live keys. Serial or
  /// post-barrier.
  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(occupied()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  /// Tombstone-ratio watermark (HashConfig::reclaim_ratio); the gap below
  /// max_load is the grow/shrink hysteresis band.
  [[nodiscard]] bool needs_reclaim() const noexcept {
    const std::uint64_t dead = tombstones();
    return dead > 0 && static_cast<double>(dead) >=
                           cfg_.reclaim_ratio * static_cast<double>(buckets_.size());
  }

  /// Serial: allocates the next array (factor × buckets) and opens the
  /// migration window.
  void grow_prepare(std::uint64_t factor = 2) {
    if (factor < 2) factor = 2;
    migration_prepare(bucket_count_for(buckets_.size() * factor));
  }

  /// Serial: opens a migration sized for the live keys, so the sweep drops
  /// every tombstone and the array shrinks back toward size()/max_load.
  void reclaim_prepare() {
    migration_prepare(bucket_count_for(required_buckets(size(), cfg_.max_load)));
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Any thread, repeatedly until it returns: claims chunks of the old
  /// bucket array from the shared cursor and re-inserts every live bucket
  /// into the next array (tombstoned ones are dropped — nothing can
  /// revive them mid-sweep, since writes never overlap migrations).
  /// Lock-free: one fetch_add per chunk, one claim CAS per live bucket,
  /// and a stalled helper blocks nobody — the chunks it claimed are its
  /// own. Returns when the cursor is exhausted (which does NOT mean every
  /// chunk is migrated — the caller's barrier before grow_finish()
  /// establishes that).
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      std::uint64_t moved = 0;
      std::uint64_t dropped = 0;
      std::uint64_t probes = 0;
      for (std::uint64_t i = begin; i < stop; ++i) {
        const Key k = buckets_[i].key.load(std::memory_order_acquire);
        if (k == kEmptyKey) continue;
        if (dead_.test(i)) {
          ++dropped;
          continue;
        }
        migrate_into(mig, k, probes);
        ++moved;
      }
      if (moved > 0) mig.live_moved.fetch_add(moved, std::memory_order_relaxed);
      if (dropped > 0) mig.dropped.fetch_add(dropped, std::memory_order_relaxed);
      if (probes > 0) telemetry_.probes(probes);  // one flush per chunk
      telemetry_.migrated(stop - begin);
    }
  }

  /// Serial, after every helper has passed the barrier: installs the next
  /// array (and its all-clear tombstone bits — migrated keys are live by
  /// construction).
  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    dead_ = std::move(migration_->dead);
    ctrl_ = std::move(migration_->ctrl);
    mask_ = migration_->mask;
    occupied_.reset();
    occupied_.add(migration_->live_moved.load(std::memory_order_relaxed));
    telemetry_.reclaimed(migration_->dropped.load(std::memory_order_relaxed));
    migration_.reset();
  }

  /// Serial convenience: the whole protocol over an OpenMP team.
  /// `threads <= 0` means the ambient OpenMP default.
  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    // The implicit barrier at parallel-region end is the protocol barrier.
    grow_finish();
  }

  /// Serial: grows iff needed; returns whether it grew.
  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Cooperative rebuild toward the live count: drops every tombstone and
  /// shrinks the array if churn left it oversized.
  void reclaim_parallel(int threads = 0) {
    reclaim_prepare();
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  /// Watermark-gated reclaim for step boundaries. Returns true iff a
  /// rebuild ran.
  bool maybe_reclaim_parallel(int threads = 0) {
    if (!needs_reclaim()) return false;
    reclaim_parallel(threads);
    return true;
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t occ = occupied();
    const std::uint64_t demand =
        backlog > std::numeric_limits<std::uint64_t>::max() - occ
            ? std::numeric_limits<std::uint64_t>::max()
            : occ + backlog;
    const std::uint64_t want = bucket_count_for(required_buckets(demand, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    // Both sides are powers of two, so the division is exact — the old
    // `size * factor < want` doubling loop could wrap to 0 for huge
    // backlogs and never terminate.
    grow_parallel(threads, want / buckets_.size());
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }

  /// Round boundary hook: folds the round's counter deltas into the site's
  /// per-round histograms. Serial/post-barrier.
  void flush_round() noexcept { telemetry_.flush_round(); }

  // -- test/debug introspection (serial or post-barrier only) ---------------

  /// Raw control byte for bucket `i` — lets tests assert the sidecar
  /// invariants (empty / tombstone / fingerprint) across erase, revive
  /// and reclaim without poking at internals.
  [[nodiscard]] std::uint8_t debug_ctrl(std::uint64_t i) const noexcept {
    return ctrl_[i].load(std::memory_order_acquire);
  }

  /// Index of the bucket claimed by `key` (live or tombstoned), or ~0 if
  /// unclaimed. Always a scalar walk, so it double-checks the group path.
  [[nodiscard]] std::uint64_t debug_bucket_of(Key key) const noexcept {
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == key) return b;
      if (current == kEmptyKey) return ~std::uint64_t{0};
      b = (b + 1) & mask_;
    }
    return ~std::uint64_t{0};
  }

 private:
  struct Bucket {
    std::atomic<Key> key{kEmptyKey};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    util::AtomicBitset dead;
    util::AlignedBuffer<std::atomic<std::uint8_t>> ctrl;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> live_moved{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  static void check_key(Key key) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashSet: the all-ones key is reserved");
    }
  }

  [[nodiscard]] bool group_probing() const noexcept {
    return cfg_.group_probe && buckets_.size() >= util::kGroupWidth;
  }

  /// Displaced-chain tail of contains(), outlined (noinline) so the inlined
  /// fast path stays a handful of instructions at every call site. `home`
  /// has already been verified to hold a different live-or-dead key.
  [[nodiscard, gnu::noinline]] bool contains_slow(Key key, std::uint64_t mixed,
                                                  std::uint64_t home) const noexcept {
    if (group_probing()) {
      const std::uint8_t fp = ctrl_h2(mixed);
      GroupWalk walk(home, buckets_.size());
      for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
        const util::Group grp = util::Group::load(&ctrl_[walk.base()]);
        // Read-only walk: fingerprint candidates first (a full byte means
        // a permanently claimed bucket, so a key match is authoritative
        // wherever it sits), then the sentinel lanes in order — only they
        // can terminate the chain, and each one is verified against the
        // bucket word so a stale empty hiding this key is still caught.
        std::uint32_t fpm = grp.match(fp) & lanes;
        while (fpm != 0) {
          const std::uint64_t b = walk.base() + std::countr_zero(fpm);
          fpm &= fpm - 1;
          if (buckets_[b].key.load(std::memory_order_acquire) == key) {
            return !dead_.test(b);
          }
        }
        std::uint32_t spec = grp.match_special() & lanes;
        while (spec != 0) {
          const std::uint64_t b = walk.base() + std::countr_zero(spec);
          spec &= spec - 1;
          const Key current = buckets_[b].key.load(std::memory_order_acquire);
          if (current == key) return !dead_.test(b);
          if (current == kEmptyKey) return false;
        }
      }
      return false;
    }
    std::uint64_t b = (home + 1) & mask_;
    for (std::uint64_t probe = 1; probe <= mask_; ++probe) {
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == key) return !dead_.test(b);
      if (current == kEmptyKey) return false;
      b = (b + 1) & mask_;
    }
    return false;
  }

  /// Scalar walk (sub-group tables and the group_probe=OFF A/B lever).
  /// Identical arbitration to the group walk; probe telemetry accumulates
  /// in `stats` instead of paying one sharded RMW per bucket.
  [[gnu::noinline]] SetInsert insert_scalar(Key key, ProbeStats& stats) {
    const std::uint64_t mixed = mix64(key);
    const std::uint8_t fp = ctrl_h2(mixed);
    std::uint64_t b = mixed & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      ++stats.probes;
      Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (buckets_[b].key.compare_exchange_strong(current, key,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
          ctrl_[b].store(fp, std::memory_order_release);
          telemetry_.win();
          occupied_.add(1);
          return SetInsert::kInserted;  // fresh claim is born live
        }
        // Lost the claim; `current` holds the winner's key — observe it
        // wait-free, no reload, no retry on this bucket.
      }
      if (current == key) return revive_or_found(b, fp);
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  /// Shared insert tail for a bucket already holding the key: live is a
  /// plain kFound with no RMW; tombstoned races the revive — the first
  /// bit clearer wins and republishes the fingerprint byte.
  SetInsert revive_or_found(std::uint64_t b, std::uint8_t fp) {
    if (!dead_.test(b)) return SetInsert::kFound;  // live: no RMW
    telemetry_.cas();
    if (dead_.test_and_reset(b)) {  // revive race: first clearer wins
      ctrl_[b].store(fp, std::memory_order_release);
      telemetry_.win();
      return SetInsert::kInserted;
    }
    return SetInsert::kFound;
  }

  /// Group walk: verify only the lanes whose control byte is the key's
  /// fingerprint, a tombstone, or empty. A fingerprint hit that fails
  /// verification (a different key behind the byte) just moves to the
  /// next candidate — filter-with-verify, the claim word stays the only
  /// truth. Claim attempts still land on every empty-flagged lane, so the
  /// one-winner-per-key CAS race is bit-for-bit the scalar one.
  [[gnu::noinline]] SetInsert insert_group(Key key, ProbeStats& stats) {
    const std::uint64_t mixed = mix64(key);
    const std::uint8_t fp = ctrl_h2(mixed);
    GroupWalk walk(mixed & mask_, buckets_.size());
    for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
      const util::Group grp = util::Group::load(&ctrl_[walk.base()]);
      ++stats.group_loads;
      const std::uint32_t h2m = grp.match(fp) & lanes;
      std::uint32_t cand = (h2m | grp.match_special()) & lanes;
      while (cand != 0) {
        const auto lane = static_cast<unsigned>(std::countr_zero(cand));
        cand &= cand - 1;
        const std::uint64_t b = walk.base() + lane;
        ++stats.probes;
        Key current = buckets_[b].key.load(std::memory_order_acquire);
        if (current == kEmptyKey) {
          telemetry_.cas();
          if (buckets_[b].key.compare_exchange_strong(current, key,
                                                      std::memory_order_acq_rel,
                                                      std::memory_order_acquire)) {
            ctrl_[b].store(fp, std::memory_order_release);
            telemetry_.win();
            occupied_.add(1);
            return SetInsert::kInserted;
          }
        }
        if (current == key) return revive_or_found(b, fp);
        if (((h2m >> lane) & 1u) != 0) ++stats.fps;
      }
    }
    return SetInsert::kFull;
  }

  [[gnu::noinline]] bool erase_scalar(Key key, ProbeStats& stats) {
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      ++stats.probes;
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) return false;
      if (current == key) return commit_tombstone(b);
      b = (b + 1) & mask_;
    }
    return false;
  }

  [[gnu::noinline]] bool erase_group(Key key, ProbeStats& stats) {
    const std::uint64_t mixed = mix64(key);
    const std::uint8_t fp = ctrl_h2(mixed);
    GroupWalk walk(mixed & mask_, buckets_.size());
    for (std::uint32_t lanes = walk.first(); !walk.done(); lanes = walk.next()) {
      const util::Group grp = util::Group::load(&ctrl_[walk.base()]);
      ++stats.group_loads;
      const std::uint32_t h2m = grp.match(fp) & lanes;
      std::uint32_t cand = (h2m | grp.match_special()) & lanes;
      while (cand != 0) {
        const auto lane = static_cast<unsigned>(std::countr_zero(cand));
        cand &= cand - 1;
        const std::uint64_t b = walk.base() + lane;
        ++stats.probes;
        const Key current = buckets_[b].key.load(std::memory_order_acquire);
        if (current == kEmptyKey) return false;
        if (current == key) return commit_tombstone(b);
        if (((h2m >> lane) & 1u) != 0) ++stats.fps;
      }
    }
    return false;
  }

  /// Shared erase tail: first bit-setter wins, and only the winner
  /// publishes the tombstone byte — losers and already-dead hits leave the
  /// sidecar alone (a late byte store racing a revive is benign: tombstone
  /// lanes stay probe candidates forever).
  bool commit_tombstone(std::uint64_t b) {
    if (dead_.test(b)) return false;  // already tombstoned: no RMW
    telemetry_.cas();
    if (dead_.test_and_set(b)) {
      ctrl_[b].store(kCtrlTombstone, std::memory_order_release);
      telemetry_.tombstone();
      return true;
    }
    return false;  // a racing eraser set the bit first
  }

  void migration_prepare(std::uint64_t target_buckets) {
    assert(!growing() && "migration_prepare while a migration is already open");
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(target_buckets);
    mig->dead = util::AtomicBitset(target_buckets);
    mig->ctrl = util::AlignedBuffer<std::atomic<std::uint8_t>>(target_buckets);
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  /// Migration insert: helpers never offer the same key twice (keys are
  /// unique in the old array), so the claim either wins or probes past a
  /// different key — kHeld cannot happen, and the target (sized for every
  /// live key at max_load ≤ 1) cannot fill. The sweep probes scalar (keys
  /// arrive pre-deduplicated and the target is sparse, so group filtering
  /// buys little) but still seeds the next array's control bytes, so the
  /// first post-swap walk finds a fully populated sidecar. Probe counts
  /// accumulate in `probes` and flush once per chunk from grow_help.
  void migrate_into(Migration& mig, Key key, std::uint64_t& probes) {
    const std::uint64_t mixed = mix64(key);
    std::uint64_t b = mixed & mig.mask;
    for (;;) {
      ++probes;
      Key current = mig.buckets[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (mig.buckets[b].key.compare_exchange_strong(current, key,
                                                       std::memory_order_acq_rel,
                                                       std::memory_order_acquire)) {
          // Relaxed is enough: grow_finish's barrier publishes the whole
          // next array before any probe can see these bytes.
          mig.ctrl[b].store(ctrl_h2(mixed), std::memory_order_relaxed);
          return;
        }
      }
      assert(current != key && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  util::AtomicBitset dead_;
  // Control-byte sidecar, one byte per bucket (filter only — see the header
  // comment). Declared after dead_ to match the ctor init order.
  util::AlignedBuffer<std::atomic<std::uint8_t>> ctrl_;
  std::uint64_t mask_;
  ShardedCounter occupied_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
