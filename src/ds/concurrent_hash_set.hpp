// ConcurrentHashSet — open-addressing key membership with arbitrary-CW
// insert arbitration and a cooperative, lock-free, chunk-swept resize.
//
// The insert race *is* a concurrent write: every thread offering key k
// races one compare-exchange on k's home bucket, exactly one wins, and
// every loser learns wait-free whether the committed value was its own key
// (present) or a stranger's (probe on) — TaggedBucket's claim protocol,
// which is CAS-LT with the empty sentinel in the stale-round role. There
// are no locks anywhere: inserts are lock-free (bounded by the probe
// walk), lookups are wait-free reads.
//
// Growth is DHash-style cooperative migration, run *between* rounds at the
// PRAM step boundary instead of behind per-bucket locks: one thread calls
// grow_prepare(), every thread then sweeps chunks of the old bucket array
// claimed from a shared cursor (one RMW per `migrate_chunk` buckets — the
// SlotAllocator trick applied to migration), and after the team's barrier
// one thread calls grow_finish() to swap the arrays. Inserts and the
// migration sweep never overlap, so migration needs no flags on the
// buckets themselves; the protocol's safety hangs on the same barrier the
// round structure already provides.
//
//   serial:   if (set.needs_grow()) set.grow_prepare();
//   parallel: if (set.growing()) set.grow_help();   // every thread
//   barrier
//   serial:   if (set.growing()) set.grow_finish();
//
// or, from serial code with an OpenMP team: set.maybe_grow_parallel().
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>

#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"

namespace crcw::ds {

template <typename Key = std::uint64_t>
  requires std::unsigned_integral<Key>
class ConcurrentHashSet {
 public:
  static constexpr Key kEmptyKey = std::numeric_limits<Key>::max();

  /// Sizes the bucket array so `capacity` keys stay under cfg.max_load.
  explicit ConcurrentHashSet(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_.total(); }
  [[nodiscard]] const HashConfig& config() const noexcept { return cfg_; }

  /// Inserts `key`. Safe concurrently with other inserts and lookups; NOT
  /// concurrently with the grow sweep (the round structure separates them).
  /// Throws std::invalid_argument for the reserved sentinel key.
  SetInsert insert(Key key) {
    check_key(key);
    assert(!growing() && "insert during cooperative grow: missing barrier");
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      telemetry_.probes(1);
      Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (buckets_[b].key.compare_exchange_strong(current, key,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
          telemetry_.win();
          size_.add(1);
          return SetInsert::kInserted;
        }
        // Lost the claim; `current` holds the winner's key — observe it
        // wait-free, no reload, no retry on this bucket.
      }
      if (current == key) return SetInsert::kFound;
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  /// Membership test. Wait-free; concurrent inserts may or may not be
  /// visible (keys never move or vanish outside a grow sweep, so a hit is
  /// always authoritative).
  [[nodiscard]] bool contains(Key key) const noexcept {
    if (key == kEmptyKey) return false;
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].key.load(std::memory_order_acquire);
      if (current == key) return true;
      if (current == kEmptyKey) return false;
      b = (b + 1) & mask_;
    }
    return false;
  }

  /// Serial/post-barrier iteration over the committed keys.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      const Key k = bucket.key.load(std::memory_order_acquire);
      if (k != kEmptyKey) fn(k);
    }
  }

  // -- cooperative grow (between rounds; see file comment) ------------------

  /// True once occupancy exceeds cfg.max_load. Serial or post-barrier.
  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(size()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  /// Serial: allocates the next array (factor × buckets) and opens the
  /// migration window.
  void grow_prepare(std::uint64_t factor = 2) {
    assert(!growing() && "grow_prepare while a grow is already open");
    if (factor < 2) factor = 2;
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(bucket_count_for(buckets_.size() * factor));
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Any thread, repeatedly until it returns: claims chunks of the old
  /// bucket array from the shared cursor and re-inserts every occupied
  /// bucket into the next array. Lock-free: one fetch_add per chunk, one
  /// claim CAS per occupied bucket, and a stalled helper blocks nobody —
  /// the chunks it claimed are its own. Returns when the cursor is
  /// exhausted (which does NOT mean every chunk is migrated — the caller's
  /// barrier before grow_finish() establishes that).
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      for (std::uint64_t i = begin; i < stop; ++i) {
        const Key k = buckets_[i].key.load(std::memory_order_acquire);
        if (k != kEmptyKey) migrate_into(mig, k);
      }
      telemetry_.migrated(stop - begin);
    }
  }

  /// Serial, after every helper has passed the barrier: installs the next
  /// array.
  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    mask_ = migration_->mask;
    migration_.reset();
  }

  /// Serial convenience: the whole protocol over an OpenMP team.
  /// `threads <= 0` means the ambient OpenMP default.
  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    // The implicit barrier at parallel-region end is the protocol barrier.
    grow_finish();
  }

  /// Serial: grows iff needed; returns whether it grew.
  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t want =
        bucket_count_for(required_buckets(size() + backlog, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    std::uint64_t factor = 2;
    while (buckets_.size() * factor < want) factor *= 2;
    grow_parallel(threads, factor);
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }

  /// Round boundary hook: folds the round's counter deltas into the site's
  /// per-round histograms. Serial/post-barrier.
  void flush_round() noexcept { telemetry_.flush_round(); }

 private:
  struct Bucket {
    std::atomic<Key> key{kEmptyKey};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
  };

  static void check_key(Key key) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashSet: the all-ones key is reserved");
    }
  }

  [[nodiscard]] static std::uint64_t required_buckets(std::uint64_t capacity,
                                                      double max_load) {
    if (max_load <= 0.0 || max_load > 1.0) {
      throw std::invalid_argument("ConcurrentHashSet: max_load must be in (0, 1]");
    }
    return static_cast<std::uint64_t>(static_cast<double>(capacity < 1 ? 1 : capacity) /
                                      max_load);
  }

  /// Migration insert: helpers never offer the same key twice (keys are
  /// unique in the old array), so the claim either wins or probes past a
  /// different key — kHeld cannot happen, and the next array (≥ 2×) cannot
  /// fill.
  void migrate_into(Migration& mig, Key key) {
    std::uint64_t b = mix64(key) & mig.mask;
    for (;;) {
      telemetry_.probes(1);
      Key current = mig.buckets[b].key.load(std::memory_order_acquire);
      if (current == kEmptyKey) {
        telemetry_.cas();
        if (mig.buckets[b].key.compare_exchange_strong(current, key,
                                                       std::memory_order_acq_rel,
                                                       std::memory_order_acquire)) {
          return;
        }
      }
      assert(current != key && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  std::uint64_t mask_;
  ShardedCounter size_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
