// ConcurrentHashMap — open addressing over TaggedBucket: the key claim
// arbitrates which key owns a bucket (arbitrary-CW insert race, as in
// ConcurrentHashSet) and the bucket's LiveTag arbitrates which *write* —
// upsert or erase — commits per round (paper-faithful CAS-LT, as in
// ConWriteCell). The two arbitrations compose: for N threads upserting
// and erasing the same key in round r, exactly one claims the bucket (if
// it was empty) and exactly one — not necessarily the same thread — wins
// the round-r write; everyone else returns kLost wait-free and reads the
// committed outcome after the step barrier.
//
// Values are plain (non-atomic) payloads published by the step barrier,
// the exact ConWriteCell contract: find() is valid from serial code or
// after the barrier that closed the writing round, not mid-round.
//
// Lifecycle: an erase commits a *tombstone* — the key keeps its bucket
// (probe chains must keep walking through it) but the LiveTag's liveness
// bit goes dead, so find()/size() no longer see it while a later round's
// upsert can revive it in place. Tombstones are reclaimed by the same
// cooperative chunk-swept migration that grows the table, run toward a
// target sized from the live count: dead buckets are simply not migrated.
// Dropping them is sound because migrations happen between rounds and
// rounds are strictly increasing, so a dropped bucket's committed round
// can never be raced again. needs_reclaim() watches the tombstone-ratio
// watermark (HashConfig::reclaim_ratio) for the step-boundary trigger.
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/tagged_bucket.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/sanitizer.hpp"

namespace crcw::ds {

/// Outcome of a round-arbitrated upsert or erase.
enum class MapUpsert {
  kWon,   ///< this thread's write is the round's committed one
  kLost,  ///< another thread won this (key, round); read it post-barrier
  kFull,  ///< probe walk exhausted: grow, then retry
};

template <typename Key, typename Value>
  requires std::unsigned_integral<Key> && std::is_nothrow_default_constructible_v<Value>
class ConcurrentHashMap {
 public:
  static constexpr Key kEmptyKey = TaggedBucket<Key>::kEmptyKey;

  explicit ConcurrentHashMap(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }

  /// Live keys only: claimed buckets minus tombstones. Exact from serial
  /// code or post-barrier.
  [[nodiscard]] std::uint64_t size() const noexcept {
    return occupied_.total() - dead_.total();
  }
  /// Claimed buckets, live or dead — what probe-chain length (and thus
  /// needs_grow) actually depends on.
  [[nodiscard]] std::uint64_t occupied() const noexcept { return occupied_.total(); }
  /// Current tombstones (erased keys still holding their buckets).
  [[nodiscard]] std::uint64_t tombstones() const noexcept { return dead_.total(); }

  /// First-writer-wins insert (no round): the claim winner — or, for a
  /// tombstoned key, the winner of the idempotent revive — stores `v`;
  /// everyone else observes the key as present. This is the build-phase
  /// primitive (semijoin's arbitrary pick among duplicate build keys).
  /// Returns kInserted for the winner, kFound otherwise; value is
  /// barrier-published.
  SetInsert insert_first(Key key, const Value& v) {
    Bucket* bucket = nullptr;
    const SetInsert r = claim_bucket(key, bucket);
    if (r == SetInsert::kInserted) {
      // Fresh claims are born live (LiveTag's polarity): the build-phase
      // fast path is one CAS plus the barrier-published store, no tag RMW.
      const util::TsanIgnoreWritesScope published_by_barrier;
      bucket->value = v;
      return r;
    }
    if (r == SetInsert::kFound && !bucket->tagged.tag().live()) {
      telemetry_.cas();
      if (bucket->tagged.tag().mark_live()) {  // revive: first flipper wins
        dead_.sub(1);
        const util::TsanIgnoreWritesScope published_by_barrier;
        bucket->value = v;
        return SetInsert::kInserted;
      }
    }
    return r;
  }

  /// Round-arbitrated upsert: claims the bucket if empty, then races the
  /// bucket's LiveTag with CAS-LT for round `round`. One winner per
  /// (key, round) — among upserts AND erases — stores `v`; rounds must be
  /// strictly increasing per the LiveTag contract (use one counter per
  /// map, advanced between barriers).
  MapUpsert upsert(round_t round, Key key, const Value& v) {
    Bucket* bucket = nullptr;
    if (claim_bucket(key, bucket) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/true, was_live)) return MapUpsert::kLost;
    if (!was_live) dead_.sub(1);  // tombstone revive
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = v;
    return MapUpsert::kWon;
  }

  /// Winner-computes upsert: the factory runs only in the winning thread.
  template <typename Factory>
    requires std::is_invocable_r_v<Value, Factory>
  MapUpsert upsert_with(round_t round, Key key, Factory&& make) {
    Bucket* bucket = nullptr;
    if (claim_bucket(key, bucket) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/true, was_live)) return MapUpsert::kLost;
    if (!was_live) dead_.sub(1);
    Value made = std::forward<Factory>(make)();
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = std::move(made);
    return MapUpsert::kWon;
  }

  /// Round-arbitrated erase: the same CAS-LT race as upsert, committing a
  /// tombstone instead of a value. One winner per (key, round) across both
  /// op kinds — a same-round erase/upsert pair on one key resolves to
  /// whichever CAS landed, exactly the paper's arbitrary-CW pick. Erasing
  /// an absent key claims (and immediately tombstones) a bucket so the
  /// arbitration stays symmetric — a same-round upsert loser must observe
  /// the erase's commit on the key's tag; the wasted bucket is recycled by
  /// the next reclaim sweep.
  MapUpsert erase(round_t round, Key key) {
    Bucket* bucket = nullptr;
    if (claim_bucket(key, bucket) == SetInsert::kFull) return MapUpsert::kFull;
    bool was_live = false;
    if (!acquire_round(*bucket, round, /*live=*/false, was_live)) return MapUpsert::kLost;
    if (was_live) dead_.add(1);
    telemetry_.tombstone();
    return MapUpsert::kWon;
  }

  /// Pointer to the committed value for `key`, or nullptr (absent or
  /// erased). Read from serial code or after the barrier that closed the
  /// writing round.
  [[nodiscard]] const Value* find(Key key) const noexcept {
    const Bucket* bucket = find_bucket(key);
    if (bucket == nullptr || !bucket->tagged.tag().live()) return nullptr;
    return &bucket->value;
  }

  [[nodiscard]] bool contains(Key key) const noexcept { return find(key) != nullptr; }

  /// Serial/post-barrier iteration over committed live (key, value) pairs.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      const Key k = bucket.tagged.key();
      if (k != kEmptyKey && bucket.tagged.tag().live()) fn(k, bucket.value);
    }
  }

  // -- cooperative migration: grow and tombstone reclaim --------------------
  // One protocol, two directions. grow_prepare sizes the target up from
  // the current array; reclaim_prepare sizes it from the live count so a
  // churned table shrinks back. Either way the sweep (grow_help) skips
  // dead buckets, so every migration is also a reclaim.

  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(occupied()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  /// Tombstone-ratio watermark (HashConfig::reclaim_ratio), checked at
  /// step boundaries like needs_grow. The band between the two thresholds
  /// is the hysteresis that keeps churny workloads from alternating
  /// grow/shrink every step.
  [[nodiscard]] bool needs_reclaim() const noexcept {
    const std::uint64_t dead = tombstones();
    return dead > 0 && static_cast<double>(dead) >=
                           cfg_.reclaim_ratio * static_cast<double>(buckets_.size());
  }

  void grow_prepare(std::uint64_t factor = 2) {
    if (factor < 2) factor = 2;
    migration_prepare(bucket_count_for(buckets_.size() * factor));
  }

  /// Open a migration sized for the live keys: tombstones are dropped by
  /// the sweep and the array shrinks back toward size()/max_load. The
  /// target keeps max_load headroom, so the rebuilt table is never
  /// immediately grow-worthy.
  void reclaim_prepare() {
    migration_prepare(bucket_count_for(required_buckets(size(), cfg_.max_load)));
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Chunk-swept cooperative migration; see concurrent_hash_set.hpp. Each
  /// live bucket's key, value, and packed (round, live) tag move together,
  /// so post-migration CAS-LT writes keep refusing already-committed
  /// rounds. Dead buckets are dropped — their committed rounds are behind
  /// every future round, so nothing can race them after the swap.
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      std::uint64_t moved = 0;
      std::uint64_t dropped = 0;
      for (std::uint64_t i = begin; i < stop; ++i) {
        Bucket& old = buckets_[i];
        const Key k = old.tagged.key();
        if (k == kEmptyKey) continue;
        if (!old.tagged.tag().live()) {
          ++dropped;
          continue;
        }
        migrate_into(mig, k, old);
        ++moved;
      }
      if (moved > 0) mig.live_moved.fetch_add(moved, std::memory_order_relaxed);
      if (dropped > 0) mig.dropped.fetch_add(dropped, std::memory_order_relaxed);
      telemetry_.migrated(stop - begin);
    }
  }

  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    mask_ = migration_->mask;
    // The rebuilt array holds exactly the migrated live keys: reset the
    // sharded counters to that truth (serial here, like the swap itself).
    occupied_.reset();
    occupied_.add(migration_->live_moved.load(std::memory_order_relaxed));
    dead_.reset();
    telemetry_.reclaimed(migration_->dropped.load(std::memory_order_relaxed));
    migration_.reset();
  }

  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Cooperative rebuild toward the live count: drops every tombstone and
  /// shrinks the array if churn left it oversized.
  void reclaim_parallel(int threads = 0) {
    reclaim_prepare();
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  /// Watermark-gated reclaim for step boundaries. Returns true iff a
  /// rebuild ran.
  bool maybe_reclaim_parallel(int threads = 0) {
    if (!needs_reclaim()) return false;
    reclaim_parallel(threads);
    return true;
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  /// Sizes from occupied(), not size(): tombstones hold buckets (and
  /// lengthen probes) until a reclaim drops them.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t occ = occupied();
    const std::uint64_t demand =
        backlog > std::numeric_limits<std::uint64_t>::max() - occ
            ? std::numeric_limits<std::uint64_t>::max()
            : occ + backlog;
    const std::uint64_t want = bucket_count_for(required_buckets(demand, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    // Both sides are powers of two, so the division is exact — the old
    // `size * factor < want` doubling loop could wrap to 0 for huge
    // backlogs and never terminate.
    grow_parallel(threads, want / buckets_.size());
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }
  void flush_round() noexcept { telemetry_.flush_round(); }

 private:
  struct Bucket {
    TaggedBucket<Key> tagged;
    Value value{};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
    std::atomic<std::uint64_t> live_moved{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  void migration_prepare(std::uint64_t target_buckets) {
    assert(!growing() && "migration_prepare while a migration is already open");
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(target_buckets);
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  /// CAS-LT on the bucket's LiveTag with the telemetry mirroring
  /// InstrumentedTag<CasLtPolicy>: the pre-load skip issues no RMW, so
  /// `atomics` counts only real compare-exchanges.
  bool acquire_round(Bucket& bucket, round_t round, bool live, bool& was_live) {
    LiveTag& tag = bucket.tagged.tag();
    if (tag.last_round() >= round) return false;  // skip: no atomic issued
    telemetry_.cas();
    return tag.try_acquire(round, live, was_live);
  }

  /// Probe walk + claim; on kInserted/kFound, `bucket` points at the key's
  /// bucket (live or tombstoned — liveness is the caller's concern).
  /// Throws for the reserved sentinel key. A fresh claim is born live (its
  /// LiveTag starts that way), so only occupied_ moves here; dead_ moves
  /// exactly when a LiveTag RMW flips the bit, with the winner deriving
  /// the transition from its own CAS's observed word — no second pass, no
  /// double counting.
  SetInsert claim_bucket(Key key, Bucket*& bucket) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashMap: the all-ones key is reserved");
    }
    assert(!growing() && "write during cooperative migration: missing barrier");
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      telemetry_.probes(1);
      switch (buckets_[b].tagged.claim(key)) {
        case BucketClaim::kWon:
          telemetry_.cas();
          telemetry_.win();
          occupied_.add(1);
          bucket = &buckets_[b];
          return SetInsert::kInserted;
        case BucketClaim::kHeld:
          bucket = &buckets_[b];
          return SetInsert::kFound;
        case BucketClaim::kOther:
          break;
      }
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  [[nodiscard]] const Bucket* find_bucket(Key key) const noexcept {
    if (key == kEmptyKey) return nullptr;
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].tagged.key();
      if (current == key) return &buckets_[b];
      if (current == kEmptyKey) return nullptr;
      b = (b + 1) & mask_;
    }
    return nullptr;
  }

  /// Migration insert: the claim always wins eventually (keys unique in
  /// the old array, and the target is sized for every live key); the value
  /// and the packed (round, live) word travel together. Old buckets are
  /// quiescent during the sweep (barrier before grow_help), so plain reads
  /// of value/tag are safe.
  void migrate_into(Migration& mig, Key key, const Bucket& old) {
    std::uint64_t b = mix64(key) & mig.mask;
    for (;;) {
      telemetry_.probes(1);
      const BucketClaim claim = mig.buckets[b].tagged.claim(key);
      if (claim == BucketClaim::kWon) {
        telemetry_.cas();
        mig.buckets[b].value = old.value;
        mig.buckets[b].tagged.tag().restore(old.tagged.tag().packed());
        return;
      }
      assert(claim == BucketClaim::kOther && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  std::uint64_t mask_;
  ShardedCounter occupied_;
  ShardedCounter dead_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
