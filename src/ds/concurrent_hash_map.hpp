// ConcurrentHashMap — open addressing over TaggedBucket: the key claim
// arbitrates which key owns a bucket (arbitrary-CW insert race, as in
// ConcurrentHashSet) and the bucket's RoundTag arbitrates which *value*
// commits per round (paper-faithful CAS-LT, as in ConWriteCell). The two
// arbitrations compose: for N threads upserting the same key in round r,
// exactly one claims the bucket (if it was empty) and exactly one — not
// necessarily the same thread — wins the round-r value write; everyone
// else returns kLost wait-free and reads the committed value after the
// step barrier.
//
// Values are plain (non-atomic) payloads published by the step barrier,
// the exact ConWriteCell contract: find() is valid from serial code or
// after the barrier that closed the writing round, not mid-round.
//
// Growth is the same cooperative chunk-swept protocol as the set (see
// concurrent_hash_set.hpp); migration additionally carries each bucket's
// value and its tag's last committed round, so round monotonicity survives
// the swap.
#pragma once

#include <omp.h>

#include <atomic>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "core/tagged_bucket.hpp"
#include "ds/hash_common.hpp"
#include "util/aligned_buffer.hpp"
#include "util/sanitizer.hpp"

namespace crcw::ds {

/// Outcome of a round-arbitrated upsert.
enum class MapUpsert {
  kWon,   ///< this thread's value is the round's committed write
  kLost,  ///< another thread won this (key, round); read it post-barrier
  kFull,  ///< probe walk exhausted: grow, then retry
};

template <typename Key, typename Value>
  requires std::unsigned_integral<Key> && std::is_nothrow_default_constructible_v<Value>
class ConcurrentHashMap {
 public:
  static constexpr Key kEmptyKey = TaggedBucket<Key>::kEmptyKey;

  explicit ConcurrentHashMap(std::uint64_t capacity, HashConfig cfg = {})
      : cfg_(std::move(cfg)),
        telemetry_(cfg_),
        buckets_(bucket_count_for(required_buckets(capacity, cfg_.max_load))),
        mask_(buckets_.size() - 1) {}

  [[nodiscard]] std::uint64_t bucket_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_.total(); }

  /// First-writer-wins insert (no round): the claim winner stores `v`,
  /// everyone else observes the key as present. This is the build-phase
  /// primitive (semijoin's arbitrary pick among duplicate build keys).
  /// Returns kInserted for the winner, kFound otherwise; value is
  /// barrier-published.
  SetInsert insert_first(Key key, const Value& v) {
    Bucket* bucket = nullptr;
    const SetInsert r = claim_bucket(key, bucket);
    if (r == SetInsert::kInserted) {
      const util::TsanIgnoreWritesScope published_by_barrier;
      bucket->value = v;
    }
    return r;
  }

  /// Round-arbitrated upsert: claims the bucket if empty, then races the
  /// bucket's RoundTag with CAS-LT for round `round`. One winner per
  /// (key, round) stores `v`; rounds must be strictly increasing per the
  /// RoundTag contract (use one counter per map, advanced between
  /// barriers).
  MapUpsert upsert(round_t round, Key key, const Value& v) {
    Bucket* bucket = nullptr;
    if (claim_bucket(key, bucket) == SetInsert::kFull) return MapUpsert::kFull;
    if (!acquire_round(*bucket, round)) return MapUpsert::kLost;
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = v;
    return MapUpsert::kWon;
  }

  /// Winner-computes upsert: the factory runs only in the winning thread.
  template <typename Factory>
    requires std::is_invocable_r_v<Value, Factory>
  MapUpsert upsert_with(round_t round, Key key, Factory&& make) {
    Bucket* bucket = nullptr;
    if (claim_bucket(key, bucket) == SetInsert::kFull) return MapUpsert::kFull;
    if (!acquire_round(*bucket, round)) return MapUpsert::kLost;
    Value made = std::forward<Factory>(make)();
    const util::TsanIgnoreWritesScope published_by_barrier;
    bucket->value = std::move(made);
    return MapUpsert::kWon;
  }

  /// Pointer to the committed value for `key`, or nullptr. Read from
  /// serial code or after the barrier that closed the writing round.
  [[nodiscard]] const Value* find(Key key) const noexcept {
    const Bucket* bucket = find_bucket(key);
    return bucket == nullptr ? nullptr : &bucket->value;
  }

  [[nodiscard]] bool contains(Key key) const noexcept {
    return find_bucket(key) != nullptr;
  }

  /// Serial/post-barrier iteration over committed (key, value) pairs.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bucket& bucket : buckets_) {
      const Key k = bucket.tagged.key();
      if (k != kEmptyKey) fn(k, bucket.value);
    }
  }

  // -- cooperative grow (same protocol as ConcurrentHashSet) ----------------

  [[nodiscard]] bool needs_grow() const noexcept {
    return static_cast<double>(size()) >
           cfg_.max_load * static_cast<double>(buckets_.size());
  }

  void grow_prepare(std::uint64_t factor = 2) {
    assert(!growing() && "grow_prepare while a grow is already open");
    if (factor < 2) factor = 2;
    auto mig = std::make_unique<Migration>();
    mig->buckets = util::AlignedBuffer<Bucket>(bucket_count_for(buckets_.size() * factor));
    mig->mask = mig->buckets.size() - 1;
    migration_ = std::move(mig);
  }

  [[nodiscard]] bool growing() const noexcept { return migration_ != nullptr; }

  /// Chunk-swept cooperative migration; see concurrent_hash_set.hpp. Each
  /// occupied bucket's key, value, and last committed round move together,
  /// so post-grow CAS-LT writes keep refusing already-committed rounds.
  void grow_help() {
    Migration& mig = *migration_;
    const std::uint64_t end = buckets_.size();
    for (;;) {
      const std::uint64_t begin = mig.cursor.fetch_add(cfg_.migrate_chunk,
                                                       std::memory_order_relaxed);
      if (begin >= end) return;
      telemetry_.chunk_claim();
      const std::uint64_t stop = std::min(begin + cfg_.migrate_chunk, end);
      for (std::uint64_t i = begin; i < stop; ++i) {
        Bucket& old = buckets_[i];
        const Key k = old.tagged.key();
        if (k != kEmptyKey) migrate_into(mig, k, old);
      }
      telemetry_.migrated(stop - begin);
    }
  }

  void grow_finish() {
    assert(growing() && "grow_finish without grow_prepare");
    assert(migration_->cursor.load(std::memory_order_relaxed) >= buckets_.size() &&
           "grow_finish before the migration sweep completed");
    buckets_ = std::move(migration_->buckets);
    mask_ = migration_->mask;
    migration_.reset();
  }

  void grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    grow_prepare(factor);
#pragma omp parallel num_threads(threads > 0 ? threads : omp_get_max_threads())
    grow_help();
    grow_finish();
  }

  bool maybe_grow_parallel(int threads = 0, std::uint64_t factor = 2) {
    if (!needs_grow()) return false;
    grow_parallel(threads, factor);
    return true;
  }

  /// Backlog-sized grow (ROADMAP "resize-storm tail"): one grow sized for
  /// `backlog` further inserts on top of the current occupancy, instead of
  /// a cascade of ×2 grows each re-migrating every key. Returns true iff a
  /// grow ran. Serial/step-boundary only, like every grow entry point.
  bool maybe_grow_for_backlog(std::uint64_t backlog, int threads = 0) {
    const std::uint64_t want =
        bucket_count_for(required_buckets(size() + backlog, cfg_.max_load));
    if (want <= buckets_.size()) return false;
    std::uint64_t factor = 2;
    while (buckets_.size() * factor < want) factor *= 2;
    grow_parallel(threads, factor);
    return true;
  }

  // -- telemetry ------------------------------------------------------------

  [[nodiscard]] TableTelemetry& telemetry() noexcept { return telemetry_; }
  void flush_round() noexcept { telemetry_.flush_round(); }

 private:
  struct Bucket {
    TaggedBucket<Key> tagged;
    Value value{};
  };

  struct Migration {
    util::AlignedBuffer<Bucket> buckets;
    std::uint64_t mask = 0;
    alignas(util::kCacheLineSize) std::atomic<std::uint64_t> cursor{0};
  };

  [[nodiscard]] static std::uint64_t required_buckets(std::uint64_t capacity,
                                                      double max_load) {
    if (max_load <= 0.0 || max_load > 1.0) {
      throw std::invalid_argument("ConcurrentHashMap: max_load must be in (0, 1]");
    }
    return static_cast<std::uint64_t>(static_cast<double>(capacity < 1 ? 1 : capacity) /
                                      max_load);
  }

  /// CAS-LT on the bucket's RoundTag with the telemetry mirroring
  /// InstrumentedTag<CasLtPolicy>: the pre-load skip issues no RMW, so
  /// `atomics` counts only real compare-exchanges.
  bool acquire_round(Bucket& bucket, round_t round) {
    RoundTag& tag = bucket.tagged.tag();
    if (tag.last_round() >= round) return false;  // skip: no atomic issued
    telemetry_.cas();
    return tag.try_acquire(round);
  }

  /// Probe walk + claim; on kInserted/kFound, `bucket` points at the key's
  /// bucket. Throws for the reserved sentinel key.
  SetInsert claim_bucket(Key key, Bucket*& bucket) {
    if (key == kEmptyKey) {
      throw std::invalid_argument("ConcurrentHashMap: the all-ones key is reserved");
    }
    assert(!growing() && "write during cooperative grow: missing barrier");
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      telemetry_.probes(1);
      switch (buckets_[b].tagged.claim(key)) {
        case BucketClaim::kWon:
          telemetry_.cas();
          telemetry_.win();
          size_.add(1);
          bucket = &buckets_[b];
          return SetInsert::kInserted;
        case BucketClaim::kHeld:
          bucket = &buckets_[b];
          return SetInsert::kFound;
        case BucketClaim::kOther:
          break;
      }
      b = (b + 1) & mask_;
    }
    return SetInsert::kFull;
  }

  [[nodiscard]] const Bucket* find_bucket(Key key) const noexcept {
    if (key == kEmptyKey) return nullptr;
    std::uint64_t b = mix64(key) & mask_;
    for (std::uint64_t probe = 0; probe <= mask_; ++probe) {
      const Key current = buckets_[b].tagged.key();
      if (current == key) return &buckets_[b];
      if (current == kEmptyKey) return nullptr;
      b = (b + 1) & mask_;
    }
    return nullptr;
  }

  /// Migration insert: the claim always wins eventually (keys unique in
  /// the old array); the value and committed round travel with it. Old
  /// buckets are quiescent during the sweep (barrier before grow_help), so
  /// plain reads of value/tag are safe.
  void migrate_into(Migration& mig, Key key, const Bucket& old) {
    std::uint64_t b = mix64(key) & mig.mask;
    for (;;) {
      telemetry_.probes(1);
      const BucketClaim claim = mig.buckets[b].tagged.claim(key);
      if (claim == BucketClaim::kWon) {
        telemetry_.cas();
        mig.buckets[b].value = old.value;
        mig.buckets[b].tagged.tag().reset(old.tagged.tag().last_round());
        return;
      }
      assert(claim == BucketClaim::kOther && "duplicate key in migration sweep");
      b = (b + 1) & mig.mask;
    }
  }

  HashConfig cfg_;
  TableTelemetry telemetry_;
  util::AlignedBuffer<Bucket> buckets_;
  std::uint64_t mask_;
  ShardedCounter size_;
  std::unique_ptr<Migration> migration_;
};

}  // namespace crcw::ds
